//! Microbenchmarks for the arrangement substrate: batch building, spine insertion with
//! the three merge-effort settings, cursor navigation, and the seek pattern used by the
//! join operator. These complement the end-to-end harness binaries.
//!
//! Runs as a plain `harness = false` benchmark (no external benchmarking framework):
//! `cargo bench -p kpg_bench`.

use std::time::Instant;

use kpg_timestamp::Antichain;
use kpg_trace::cursor::Cursor;
use kpg_trace::ord_batch::{OrdValBatch, OrdValBuilder};
use kpg_trace::{BatchReader, Builder, MergeEffort, Spine};

type TestBatch = OrdValBatch<u64, u64, u64, isize>;

fn build_batch(keys: u64, time: u64) -> TestBatch {
    let mut builder = OrdValBuilder::with_capacity(keys as usize);
    for key in 0..keys {
        builder.push(key, key * 2, time, 1);
    }
    builder.done(
        Antichain::from_elem(time),
        Antichain::from_elem(time + 1),
        Antichain::from_elem(0),
    )
}

/// Times `iters` runs of `body` (after one warmup) and prints mean latency per run.
fn bench<T>(name: &str, iters: usize, mut body: impl FnMut() -> T) {
    let sink = body();
    std::hint::black_box(&sink);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(body());
    }
    let total = start.elapsed();
    println!(
        "{name:<32} {iters:>5} iters  {:>12.3?} total  {:>12.3?}/iter",
        total,
        total / iters as u32
    );
}

fn bench_batch_builder() {
    bench("batch_build_10k", 10, || build_batch(10_000, 0));
}

fn bench_spine_insert() {
    // Built once outside the timed region (batch handles are cheap shared clones), so
    // the three merge-effort settings are compared on insertion cost alone.
    let batches = (0..100u64)
        .map(|t| build_batch(1_000, t))
        .collect::<Vec<_>>();
    for (label, effort) in [
        ("eager", MergeEffort::Eager),
        ("default", MergeEffort::Default),
        ("lazy", MergeEffort::Lazy),
    ] {
        bench(&format!("spine_insert_100x1k_{label}"), 10, || {
            let mut spine = Spine::new(effort);
            for batch in batches.iter().cloned() {
                spine.insert(batch);
            }
            spine.len()
        });
    }
}

fn bench_cursor_scan() {
    let mut spine = Spine::new(MergeEffort::Default);
    for t in 0..64u64 {
        spine.insert(build_batch(2_000, t));
    }
    bench("cursor_scan_spine", 10, || {
        let mut cursor = spine.cursor();
        let mut count = 0usize;
        while cursor.key_valid() {
            while cursor.val_valid() {
                cursor.map_times(|_, _| count += 1);
                cursor.step_val();
            }
            cursor.step_key();
        }
        count
    });
}

fn bench_cursor_seek() {
    let batch = build_batch(100_000, 0);
    bench("cursor_seek_1k_keys", 100, || {
        let mut cursor = batch.cursor();
        let mut found = 0usize;
        for key in (0..100_000u64).step_by(100) {
            cursor.seek_key(&key);
            if cursor.key_valid() {
                found += 1;
            }
        }
        found
    });
}

fn main() {
    bench_batch_builder();
    bench_spine_insert();
    bench_cursor_scan();
    bench_cursor_seek();
}
