//! Criterion microbenchmarks for the arrangement substrate: batch building, spine
//! insertion with the three merge-effort settings, cursor navigation, and the cursor
//! merge used by the join operator. These complement the end-to-end harness binaries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kpg_timestamp::Antichain;
use kpg_trace::cursor::Cursor;
use kpg_trace::ord_batch::{OrdValBatch, OrdValBuilder};
use kpg_trace::{BatchReader, Builder, MergeEffort, Spine};

type TestBatch = OrdValBatch<u64, u64, u64, isize>;

fn build_batch(keys: u64, time: u64) -> TestBatch {
    let mut builder = OrdValBuilder::with_capacity(keys as usize);
    for key in 0..keys {
        builder.push(key, key * 2, time, 1);
    }
    builder.done(
        Antichain::from_elem(time),
        Antichain::from_elem(time + 1),
        Antichain::from_elem(0),
    )
}

fn bench_batch_builder(c: &mut Criterion) {
    c.bench_function("batch_build_10k", |b| {
        b.iter(|| build_batch(10_000, 0));
    });
}

fn bench_spine_insert(c: &mut Criterion) {
    for (label, effort) in [
        ("eager", MergeEffort::Eager),
        ("default", MergeEffort::Default),
        ("lazy", MergeEffort::Lazy),
    ] {
        c.bench_function(&format!("spine_insert_100x1k_{label}"), |b| {
            b.iter_batched(
                || (0..100u64).map(|t| build_batch(1_000, t)).collect::<Vec<_>>(),
                |batches| {
                    let mut spine = Spine::new(effort);
                    for batch in batches {
                        spine.insert(batch);
                    }
                    spine.len()
                },
                BatchSize::SmallInput,
            );
        });
    }
}

fn bench_cursor_scan(c: &mut Criterion) {
    let mut spine = Spine::new(MergeEffort::Default);
    for t in 0..64u64 {
        spine.insert(build_batch(2_000, t));
    }
    c.bench_function("cursor_scan_spine", |b| {
        b.iter(|| {
            let mut cursor = spine.cursor();
            let mut count = 0usize;
            while cursor.key_valid() {
                while cursor.val_valid() {
                    cursor.map_times(|_, _| count += 1);
                    cursor.step_val();
                }
                cursor.step_key();
            }
            count
        });
    });
}

fn bench_cursor_seek(c: &mut Criterion) {
    let batch = build_batch(100_000, 0);
    c.bench_function("cursor_seek_1k_keys", |b| {
        b.iter(|| {
            let mut cursor = batch.cursor();
            let mut found = 0usize;
            for key in (0..100_000u64).step_by(100) {
                cursor.seek_key(&key);
                if cursor.key_valid() {
                    found += 1;
                }
            }
            found
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch_builder, bench_spine_insert, bench_cursor_scan, bench_cursor_seek
);
criterion_main!(benches);
