//! The chaos sweep: deterministic disk-fault injection against a live durable
//! server, measuring what robustness costs. For every swept fault point — each
//! successive occurrence of the WAL's write and fsync paths, switched permanently
//! broken — a fresh loopback server is churned while the fault holds, and the run
//! checks the full degradation contract: no panics, every command answered (`Ok`
//! or the `degraded-read-only` rejection), queries served throughout, the probe
//! heals once the fault clears, and a restart recovers exactly the acknowledged
//! prefix. Heal latency (fault cleared → read-write again) is recorded per heal.
//!
//! ```console
//! $ cargo run --release -p kpg_bench --features faults --bin chaos -- \
//!       --seed 42 --points 4 --steps 6
//! ```
//!
//! Emits one `BENCH {"name":"chaos_sweep",...}` line: fault points configured and
//! actually exercised, panic and invariant-violation counts (both must be 0),
//! degraded transitions and heals observed, and heal-latency p50/p99.

#[cfg(feature = "faults")]
mod sweep {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::{Path, PathBuf};
    use std::time::{Duration, Instant};

    use kpg_bench::{arg_usize, bench_record, num, LatencyRecorder};
    use kpg_plan::{Plan, Row, Value};
    use kpg_server::{serve, Client, DurabilityConfig, Server, ServerConfig};
    use kpg_store::io::faults::FaultPlan;
    use kpg_store::io::OpKind;

    /// What one fault point's run observed.
    #[derive(Default)]
    struct Outcome {
        /// The injected fault actually fired (its occurrence was reached).
        exercised: bool,
        /// Contract breaches: an unexpected error, a lost acked row, an invented
        /// row, a query refused while degraded, or a heal that never came.
        violations: u64,
        degraded_transitions: u64,
        heals: u64,
        /// Fault cleared → `!degraded`, when the run degraded at all.
        heal: Option<Duration>,
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kpg-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_server(dir: &Path) -> Server {
        let mut durability = DurabilityConfig::new(dir);
        durability.probe_interval = Duration::from_millis(2);
        serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                durability: Some(durability),
                ..ServerConfig::default()
            },
        )
        .expect("bind a durable loopback server")
    }

    fn client(server: &Server) -> Client {
        Client::connect_timeout(server.local_addr(), Duration::from_secs(10))
            .expect("connect")
            .with_request_timeout(Some(Duration::from_secs(10)))
            .expect("set request timeout")
    }

    /// The settled step values of `query`, or `None` when the query call itself
    /// fails (the caller decides whether that is a violation).
    fn step_rows(client: &mut Client, query: &str) -> Option<Vec<u64>> {
        let rows = client.query(query).ok()?;
        Some(
            rows.iter()
                .filter_map(|(row, _)| match row.fields() {
                    [Value::UInt(step)] => Some(*step),
                    _ => None,
                })
                .collect(),
        )
    }

    /// One fault point: churn a fresh durable server while `kind@occurrence..=eio`
    /// holds, clear the fault, time the heal, restart, and check the acked prefix.
    fn run_point(kind: OpKind, occurrence: u64, steps: u64, seed: u64) -> Outcome {
        let spec = format!("{kind}@{occurrence}..=eio");
        let dir = temp_dir(&format!("{kind}-{occurrence}"));
        let mut outcome = Outcome::default();
        let base = seed.wrapping_mul(1_000_003);

        let mut acked = Vec::new();
        let mut max_acked_advance = 0u64;
        {
            let server = durable_server(&dir);
            let mut c = client(&server);
            c.create_input("steps", None).expect("create input");
            c.install("tally", Plan::source("steps").distinct(), &[])
                .expect("install tally");

            let guard = FaultPlan::parse(&spec).unwrap().scoped(&dir).install();
            for step in 1..=steps {
                let value = base + step;
                match c.update("steps", Row::from(vec![Value::UInt(value)]), 1) {
                    Ok(()) => acked.push(value),
                    Err(error) if error.plan_code() == Some("degraded-read-only") => {}
                    Err(error) => {
                        eprintln!("{spec}: update {step} failed oddly: {error}");
                        outcome.violations += 1;
                    }
                }
                match c.advance(step) {
                    Ok(()) => max_acked_advance = step,
                    Err(error) if error.plan_code() == Some("degraded-read-only") => {}
                    Err(error) => {
                        eprintln!("{spec}: advance {step} failed oddly: {error}");
                        outcome.violations += 1;
                    }
                }
            }
            // Reads must survive whatever the disk is doing.
            if step_rows(&mut c, "tally").is_none() {
                eprintln!("{spec}: query refused during the fault");
                outcome.violations += 1;
            }
            outcome.exercised = guard.op_count(kind) >= occurrence;
            let was_degraded = server.health().degraded;
            drop(guard);

            if was_degraded {
                let cleared = Instant::now();
                let deadline = cleared + Duration::from_secs(10);
                while server.health().degraded && Instant::now() < deadline {
                    kpg_sync::thread::sleep(Duration::from_millis(1));
                }
                if server.health().degraded {
                    eprintln!("{spec}: never healed: {:?}", server.health());
                    outcome.violations += 1;
                } else {
                    outcome.heal = Some(cleared.elapsed());
                }
            }
            let health = server.health();
            outcome.degraded_transitions = health.degraded_transitions;
            outcome.heals = health.heals;
            drop(c);
            drop(server); // clean shutdown: flushes whatever is still staged
        }

        // Restart: recovered rows ⊇ updates sealed by an acked advance, ⊆ acked.
        let server = durable_server(&dir);
        let mut c = client(&server);
        c.install("check", Plan::source("steps").distinct(), &[])
            .expect("install over recovered input");
        c.advance(1_000_000).expect("advance after recovery");
        match step_rows(&mut c, "check") {
            None => {
                eprintln!("{spec}: recovered query refused");
                outcome.violations += 1;
            }
            Some(rows) => {
                for value in acked.iter().filter(|&&v| v - base <= max_acked_advance) {
                    if !rows.contains(value) {
                        eprintln!("{spec}: acked update {} lost", value - base);
                        outcome.violations += 1;
                    }
                }
                for value in &rows {
                    if !acked.contains(value) {
                        eprintln!("{spec}: recovered row {value} was never acknowledged");
                        outcome.violations += 1;
                    }
                }
            }
        }
        drop(c);
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
        outcome
    }

    pub fn main() {
        let seed = arg_usize("--seed", 42) as u64;
        let points = arg_usize("--points", 4) as u64;
        let steps = arg_usize("--steps", 6) as u64;

        let kinds = [OpKind::Write, OpKind::Fsync];
        let fault_points = kinds.len() as u64 * points;
        let mut exercised = 0u64;
        let mut panics = 0u64;
        let mut violations = 0u64;
        let mut degraded_transitions = 0u64;
        let mut heals = 0u64;
        let mut heal_latency = LatencyRecorder::new();

        for kind in kinds {
            for occurrence in 1..=points {
                match catch_unwind(AssertUnwindSafe(|| {
                    run_point(kind, occurrence, steps, seed)
                })) {
                    Err(_) => panics += 1,
                    Ok(outcome) => {
                        exercised += u64::from(outcome.exercised);
                        violations += outcome.violations;
                        degraded_transitions += outcome.degraded_transitions;
                        heals += outcome.heals;
                        if let Some(heal) = outcome.heal {
                            heal_latency.record(heal);
                        }
                    }
                }
                println!(
                    "{kind}@{occurrence}..: {exercised} exercised, {degraded_transitions} \
                     degraded, {heals} healed, {violations} violations, {panics} panics"
                );
            }
        }

        bench_record(
            "chaos_sweep",
            &[
                ("seed", num(seed)),
                ("steps", num(steps)),
                ("fault_points", num(fault_points)),
                ("exercised", num(exercised)),
                ("panics", num(panics)),
                ("violations", num(violations)),
                ("degraded_transitions", num(degraded_transitions)),
                ("heals", num(heals)),
                ("heal_p50_ns", num(heal_latency.quantile(0.5).as_nanos())),
                ("heal_p99_ns", num(heal_latency.quantile(0.99).as_nanos())),
            ],
        );
        if panics > 0 || violations > 0 {
            std::process::exit(1);
        }
    }
}

#[cfg(feature = "faults")]
fn main() {
    sweep::main();
}

#[cfg(not(feature = "faults"))]
fn main() {
    eprintln!(
        "chaos needs the fault injector compiled in; rerun with:\n    \
         cargo run --release -p kpg_bench --features faults --bin chaos"
    );
    std::process::exit(2);
}
