//! Query-churn harness (paper §6.2): the interactive workload that installs and retires
//! queries against a shared arrangement in a loop — install → pose arguments → probe →
//! uninstall — at a configurable scale.
//!
//! The point of the measurement is *boundedness*: with dataflow-slot reclamation,
//! install latency, steady-state per-step time, and the slot / reader-table high-water
//! marks must be functions of the number of *concurrently live* queries (`--batch`),
//! not of the total ever installed (`--queries`). The report compares per-step cost in
//! the first and second halves of the run and prints the high-water marks alongside the
//! final live counts.
//!
//! Run with `cargo run --release -p kpg_bench --bin churn -- [--queries 1000]
//! [--batch 4] [--workers 1] [--nodes 500] [--edges 4000]`. Emits a one-line
//! `BENCH {...}` JSON record for scripts, plus human-readable summaries.

use std::time::Instant;

use kpg_bench::{arg_usize, BenchReport, LatencyRecorder};
use kpg_core::prelude::*;
use kpg_dataflow::Time;
use kpg_graph::generate;
use kpg_graph::interactive::{InteractiveSession, QueryIo};
use kpg_timestamp::rng::SmallRng;

/// Everything one worker measures during the churn loop.
struct ChurnStats {
    install: LatencyRecorder,
    settle: LatencyRecorder,
    uninstall: LatencyRecorder,
    steps_first_half: LatencyRecorder,
    steps_second_half: LatencyRecorder,
    steady: LatencyRecorder,
    slot_high_water: usize,
    shared_entries_high_water: usize,
    reader_slots_high_water: usize,
    live_final: usize,
    slots_final: usize,
    reader_count_final: usize,
    graph_size_final: usize,
}

fn run(queries: usize, batch: usize, workers: usize, nodes: u32, edges: usize) -> ChurnStats {
    let results = execute(Config::new(workers), move |worker| {
        let peers = worker.peers();
        let index = worker.index();

        // The shared arrangement: ingested once, published by name, imported by every
        // query the loop installs.
        let catalog = Catalog::new();
        let mut session = InteractiveSession::install(worker, &catalog, "edges");
        for (i, edge) in generate::uniform(nodes, edges, 42).into_iter().enumerate() {
            if i % peers == index {
                session.edges.insert(edge);
            }
        }
        let mut epoch = 1u64;
        session.edges.advance_to(epoch);
        let graph_probe = session.graph_probe.clone();
        worker.step_while(|| graph_probe.less_than(&Time::from_epoch(epoch)));

        // All workers draw the same pseudo-random argument stream so their control flow
        // stays in lockstep; sharding decides who actually inserts each update.
        let mut rng = SmallRng::seed_from_u64(7);
        let mut stats = ChurnStats {
            install: LatencyRecorder::new(),
            settle: LatencyRecorder::new(),
            uninstall: LatencyRecorder::new(),
            steps_first_half: LatencyRecorder::new(),
            steps_second_half: LatencyRecorder::new(),
            steady: LatencyRecorder::new(),
            slot_high_water: 0,
            shared_entries_high_water: 0,
            reader_slots_high_water: 0,
            live_final: 0,
            slots_final: 0,
            reader_count_final: 0,
            graph_size_final: 0,
        };

        let mut installed_total = 0usize;
        let mut round = 0usize;
        while installed_total < queries {
            let burst = batch.min(queries - installed_total);

            // Install a burst of query classes against the published arrangement,
            // alternating between point look-ups and 2-hop queries.
            let mut handles: Vec<QueryHandle<QueryIo<u32, (u32, u32)>>> = Vec::with_capacity(burst);
            for b in 0..burst {
                let id = installed_total + b;
                let name = format!("q-{id}");
                let handle = stats.install.time(|| {
                    if id.is_multiple_of(2) {
                        session.install_lookup(worker, &name).expect("fresh name")
                    } else {
                        session.install_two_hop(worker, &name).expect("fresh name")
                    }
                });
                handles.push(handle);
            }

            // Pose one argument per query and mutate the graph, the paper's open-loop
            // half-queries / half-updates mix; everything lands in the next epoch.
            for (j, handle) in handles.iter_mut().enumerate() {
                let argument = rng.gen_range(0..nodes);
                if j % peers == index {
                    handle.result.input.insert(argument);
                }
            }
            let addition = (rng.gen_range(0..nodes), rng.gen_range(0..nodes));
            if round % peers == index {
                session.edges.insert(addition);
            }
            epoch += 1;
            session.edges.advance_to(epoch);
            for handle in handles.iter_mut() {
                handle.result.input.advance_to(epoch);
            }

            // Step until every query's answers are current, timing each step: per-step
            // cost in the second half of the run must match the first half if retired
            // slots really leave the scheduler.
            let probes: Vec<ProbeHandle> = handles
                .iter()
                .map(|handle| handle.result.probe.clone())
                .collect();
            let target = Time::from_epoch(epoch);
            let steps = if installed_total * 2 < queries {
                &mut stats.steps_first_half
            } else {
                &mut stats.steps_second_half
            };
            let settle_start = Instant::now();
            while probes.iter().any(|probe| probe.less_than(&target)) {
                let step_start = Instant::now();
                worker.step();
                steps.record(step_start.elapsed());
            }
            stats.settle.record(settle_start.elapsed());

            stats.slot_high_water = stats.slot_high_water.max(worker.dataflow_count());
            stats.shared_entries_high_water = stats
                .shared_entries_high_water
                .max(worker.shared_dataflow_entries());
            stats.reader_slots_high_water = stats
                .reader_slots_high_water
                .max(session.graph_reader_slots());

            // Retire the whole burst; slots and readers must be reclaimed.
            for handle in handles {
                let name = handle.name().to_string();
                stats
                    .uninstall
                    .time(|| assert!(session.uninstall(worker, &name)));
            }
            installed_total += burst;
            round += 1;
        }

        // Steady state after the churn: an idle step sweeps live dataflows only, so its
        // cost is independent of how many queries ever existed.
        for _ in 0..100 {
            let step_start = Instant::now();
            worker.step();
            stats.steady.record(step_start.elapsed());
        }

        stats.live_final = worker.live_dataflow_count();
        stats.slots_final = worker.dataflow_count();
        stats.reader_count_final = session.graph_reader_count();
        stats.graph_size_final = session.graph_size();
        stats
    });
    results.into_iter().next().expect("at least one worker")
}

fn main() {
    let queries = arg_usize("--queries", 1000);
    let batch = arg_usize("--batch", 4).max(1);
    let workers = arg_usize("--workers", 1);
    let nodes = arg_usize("--nodes", 500) as u32;
    let edges = arg_usize("--edges", 4000);

    println!(
        "# Query churn: {queries} queries in bursts of {batch}, {workers} workers, \
         {nodes} nodes / {edges} edges"
    );
    let stats = run(queries, batch, workers, nodes, edges);

    println!("\n## Install / settle / uninstall latency");
    stats.install.print_summary("install");
    stats.install.print_ccdf("install");
    stats.settle.print_summary("settle");
    stats.uninstall.print_summary("uninstall");

    println!("\n## Per-step scheduling cost, first vs second half of the churn");
    stats.steps_first_half.print_summary("steps-1st-half");
    stats.steps_second_half.print_summary("steps-2nd-half");
    stats.steady.print_summary("steady-idle");

    println!("\n## State high-water marks vs final (bounded ⇒ churn reclaims)");
    println!(
        "slots\thigh {}\tfinal {}\tlive {}",
        stats.slot_high_water, stats.slots_final, stats.live_final
    );
    println!(
        "readers\tslot high {}\tcount final {}",
        stats.reader_slots_high_water, stats.reader_count_final
    );

    BenchReport::new("churn")
        .field("queries", queries)
        .field("batch", batch)
        .field("workers", workers)
        .field("nodes", nodes)
        .field("edges", edges)
        .field("install_median_ns", stats.install.median().as_nanos())
        .field("install_p99_ns", stats.install.quantile(0.99).as_nanos())
        .field("settle_median_ns", stats.settle.median().as_nanos())
        .field("uninstall_median_ns", stats.uninstall.median().as_nanos())
        .field(
            "step_median_ns_first_half",
            stats.steps_first_half.median().as_nanos(),
        )
        .field(
            "step_median_ns_second_half",
            stats.steps_second_half.median().as_nanos(),
        )
        .field("steady_step_median_ns", stats.steady.median().as_nanos())
        .field("slot_high_water", stats.slot_high_water)
        .field("slots_final", stats.slots_final)
        .field("live_final", stats.live_final)
        .field("shared_entries_high_water", stats.shared_entries_high_water)
        .field("reader_slots_high_water", stats.reader_slots_high_water)
        .field("reader_count_final", stats.reader_count_final)
        .field("graph_size_final", stats.graph_size_final)
        .emit();
}
