//! Query-churn harness (paper §6.2): the interactive workload that installs and retires
//! queries against a shared arrangement in a loop — install → pose arguments → probe →
//! uninstall — at a configurable scale.
//!
//! The point of the measurement is *boundedness*: with dataflow-slot reclamation,
//! install latency, steady-state per-step time, and the slot / reader-table high-water
//! marks must be functions of the number of *concurrently live* queries (`--batch`),
//! not of the total ever installed (`--queries`). The report compares per-step cost in
//! the first and second halves of the run and prints the high-water marks alongside the
//! final live counts.
//!
//! With `--plan`, the same loop is driven through the runtime-plan engine instead of
//! compiled closures: every install is a `Command::Install` carrying a [`Plan`] value,
//! rendered by the per-worker [`Manager`] against its memoized shared arrangement of
//! the edges. Comparing the `churn` and `churn_plan` BENCH records (same flags)
//! measures what plan compilation, the uniform row representation, and the command
//! protocol cost relative to the closure baseline.
//!
//! With `--durable` (implies `--plan`), worker 0 additionally writes every command to
//! a real `kpg_store` WAL with the server's group-commit discipline — staged per
//! epoch, committed and fsynced when the epoch advances — and the run is compared
//! against an identical in-memory run. Three extra BENCH records come out:
//! `churn_plan_durable` (the churn numbers plus the steady-state ratio vs memory),
//! `wal_append` (logged bytes/sec and fsync-batched commit latency), and
//! `recovery_replay` (commands/sec replaying the finished log into a fresh
//! [`Manager`]).
//!
//! Run with `cargo run --release -p kpg_bench --bin churn -- [--queries 1000]
//! [--batch 4] [--workers 1] [--nodes 500] [--edges 4000] [--plan] [--durable]`.
//! Emits one-line `BENCH {...}` JSON records for scripts, plus human-readable
//! summaries.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use kpg_bench::{arg_flag, arg_string, arg_usize, bench_record, num, text, LatencyRecorder};
use kpg_core::prelude::*;
use kpg_dataflow::Time;
use kpg_graph::generate;
use kpg_graph::interactive::{InteractiveSession, QueryIo};
use kpg_graph::plans::{edge_row, lookup_plan, node_row, two_hop_plan};
use kpg_plan::{ArrangeKey, Command, KeySpec, Manager, Plan};
use kpg_store::{Wal, WalBatch};
use kpg_timestamp::rng::SmallRng;
use kpg_wire::WireCodec;

/// What the WAL cost during a durable run: logged volume and the per-epoch
/// group-commit (write + fsync) latency.
struct WalReport {
    /// Framed bytes appended (payload + record header).
    bytes: u64,
    /// One sample per epoch seal: `commit(batch)` + `sync()`.
    commits: LatencyRecorder,
    /// Total wall time inside commit + sync, for the bytes/sec figure.
    commit_total: Duration,
}

/// Worker 0's command log during a durable churn run, driven with the server's
/// discipline: every command staged, the batch committed and fsynced when an
/// `AdvanceTime` seals the epoch.
struct DurableLog {
    wal: Wal,
    pending: WalBatch,
    next_seq: u64,
    report: WalReport,
}

impl DurableLog {
    fn open(dir: &PathBuf) -> DurableLog {
        let (wal, records) = Wal::open(dir, 8 << 20).expect("open the churn WAL");
        assert!(
            records.is_empty(),
            "the churn WAL directory must start empty"
        );
        DurableLog {
            wal,
            pending: WalBatch::new(),
            next_seq: 0,
            report: WalReport {
                bytes: 0,
                commits: LatencyRecorder::new(),
                commit_total: Duration::ZERO,
            },
        }
    }

    fn stage(&mut self, command: &Command) {
        let body = command.encode();
        // Framed size: 4-byte length + 4-byte CRC + 8-byte sequence + body.
        self.report.bytes += body.len() as u64 + 16;
        self.pending.put(self.next_seq, body);
        self.next_seq += 1;
        if matches!(command, Command::AdvanceTime { .. }) {
            self.seal();
        }
    }

    fn seal(&mut self) {
        let batch = std::mem::take(&mut self.pending);
        let start = Instant::now();
        self.wal.commit(&batch).expect("commit the epoch batch");
        self.wal.sync().expect("fsync the WAL");
        let elapsed = start.elapsed();
        self.report.commits.record(elapsed);
        self.report.commit_total += elapsed;
    }

    fn finish(mut self) -> WalReport {
        if !self.pending.is_empty() {
            self.seal();
        }
        self.report
    }
}

/// Everything one worker measures during the churn loop.
struct ChurnStats {
    install: LatencyRecorder,
    settle: LatencyRecorder,
    uninstall: LatencyRecorder,
    steps_first_half: LatencyRecorder,
    steps_second_half: LatencyRecorder,
    steady: LatencyRecorder,
    slot_high_water: usize,
    shared_entries_high_water: usize,
    reader_slots_high_water: usize,
    live_final: usize,
    slots_final: usize,
    reader_count_final: usize,
    graph_size_final: usize,
    /// Worker 0's WAL cost, present only in a `--durable` plan run.
    wal: Option<WalReport>,
}

impl ChurnStats {
    fn new() -> Self {
        ChurnStats {
            install: LatencyRecorder::new(),
            settle: LatencyRecorder::new(),
            uninstall: LatencyRecorder::new(),
            steps_first_half: LatencyRecorder::new(),
            steps_second_half: LatencyRecorder::new(),
            steady: LatencyRecorder::new(),
            slot_high_water: 0,
            shared_entries_high_water: 0,
            reader_slots_high_water: 0,
            live_final: 0,
            slots_final: 0,
            reader_count_final: 0,
            graph_size_final: 0,
            wal: None,
        }
    }
}

/// Which query classes a churn run installs (`--classes mixed|lookup|two-hop`):
/// `mixed` alternates, the single-class settings attribute cost to one class.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Classes {
    Mixed,
    Lookup,
    TwoHop,
}

impl Classes {
    fn parse(value: &str) -> Classes {
        match value {
            "mixed" => Classes::Mixed,
            "lookup" => Classes::Lookup,
            "two-hop" => Classes::TwoHop,
            other => panic!("--classes must be mixed, lookup, or two-hop (got {other:?})"),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Classes::Mixed => "mixed",
            Classes::Lookup => "lookup",
            Classes::TwoHop => "two-hop",
        }
    }

    fn lookup_at(&self, id: usize) -> bool {
        match self {
            Classes::Mixed => id.is_multiple_of(2),
            Classes::Lookup => true,
            Classes::TwoHop => false,
        }
    }
}

fn run(
    queries: usize,
    batch: usize,
    workers: usize,
    nodes: u32,
    edges: usize,
    classes: Classes,
) -> ChurnStats {
    let results = execute(Config::new(workers), move |worker| {
        let peers = worker.peers();
        let index = worker.index();

        // The shared arrangement: ingested once, published by name, imported by every
        // query the loop installs.
        let catalog = Catalog::new();
        let mut session = InteractiveSession::install(worker, &catalog, "edges");
        for (i, edge) in generate::uniform(nodes, edges, 42).into_iter().enumerate() {
            if i % peers == index {
                session.edges.insert(edge);
            }
        }
        let mut epoch = 1u64;
        session.edges.advance_to(epoch);
        let graph_probe = session.graph_probe.clone();
        worker.step_while(|| graph_probe.less_than(&Time::from_epoch(epoch)));

        // All workers draw the same pseudo-random argument stream so their control flow
        // stays in lockstep; sharding decides who actually inserts each update.
        let mut rng = SmallRng::seed_from_u64(7);
        let mut stats = ChurnStats::new();

        let mut installed_total = 0usize;
        let mut round = 0usize;
        while installed_total < queries {
            let burst = batch.min(queries - installed_total);

            // Install a burst of query classes against the published arrangement,
            // alternating between point look-ups and 2-hop queries.
            let mut handles: Vec<QueryHandle<QueryIo<u32, (u32, u32)>>> = Vec::with_capacity(burst);
            for b in 0..burst {
                let id = installed_total + b;
                let name = format!("q-{id}");
                let handle = stats.install.time(|| {
                    if classes.lookup_at(id) {
                        session.install_lookup(worker, &name).expect("fresh name")
                    } else {
                        session.install_two_hop(worker, &name).expect("fresh name")
                    }
                });
                handles.push(handle);
            }

            // Pose one argument per query and mutate the graph, the paper's open-loop
            // half-queries / half-updates mix; everything lands in the next epoch.
            for (j, handle) in handles.iter_mut().enumerate() {
                let argument = rng.gen_range(0..nodes);
                if j % peers == index {
                    handle.result.input.insert(argument);
                }
            }
            let addition = (rng.gen_range(0..nodes), rng.gen_range(0..nodes));
            if round % peers == index {
                session.edges.insert(addition);
            }
            epoch += 1;
            session.edges.advance_to(epoch);
            for handle in handles.iter_mut() {
                handle.result.input.advance_to(epoch);
            }

            // Step until every query's answers are current, timing each step: per-step
            // cost in the second half of the run must match the first half if retired
            // slots really leave the scheduler.
            let probes: Vec<ProbeHandle> = handles
                .iter()
                .map(|handle| handle.result.probe.clone())
                .collect();
            let target = Time::from_epoch(epoch);
            let steps = if installed_total * 2 < queries {
                &mut stats.steps_first_half
            } else {
                &mut stats.steps_second_half
            };
            let settle_start = Instant::now();
            while probes.iter().any(|probe| probe.less_than(&target)) {
                let step_start = Instant::now();
                worker.step();
                steps.record(step_start.elapsed());
            }
            stats.settle.record(settle_start.elapsed());

            stats.slot_high_water = stats.slot_high_water.max(worker.dataflow_count());
            stats.shared_entries_high_water = stats
                .shared_entries_high_water
                .max(worker.shared_dataflow_entries());
            stats.reader_slots_high_water = stats
                .reader_slots_high_water
                .max(session.graph_reader_slots());

            // Retire the whole burst; slots and readers must be reclaimed.
            for handle in handles {
                let name = handle.name().to_string();
                stats
                    .uninstall
                    .time(|| assert!(session.uninstall(worker, &name)));
            }
            installed_total += burst;
            round += 1;
        }

        // Steady state after the churn: an idle step sweeps live dataflows only, so its
        // cost is independent of how many queries ever existed.
        for _ in 0..100 {
            let step_start = Instant::now();
            worker.step();
            stats.steady.record(step_start.elapsed());
        }

        stats.live_final = worker.live_dataflow_count();
        stats.slots_final = worker.dataflow_count();
        stats.reader_count_final = session.graph_reader_count();
        stats.graph_size_final = session.graph_size();
        stats
    });
    results.into_iter().next().expect("at least one worker")
}

/// The same install → pose → probe → uninstall loop, driven through the runtime-plan
/// engine: every worker executes an identical command stream against its [`Manager`].
/// With `wal_dir`, worker 0 also logs every command with the server's group-commit
/// discipline, so the run measures churn with a real fsync on every epoch seal.
fn run_plan(
    queries: usize,
    batch: usize,
    workers: usize,
    nodes: u32,
    edges: usize,
    classes: Classes,
    wal_dir: Option<PathBuf>,
) -> ChurnStats {
    let results = execute(Config::new(workers), move |worker| {
        let mut manager = Manager::new();
        // One log per run, written by worker 0 — the analogue of the server's single
        // sequencer-owned WAL in front of every worker.
        let mut log = if worker.index() == 0 {
            wal_dir.as_ref().map(DurableLog::open)
        } else {
            None
        };
        let mut exec = |worker: &mut Worker, manager: &mut Manager, command: Command| {
            if let Some(log) = log.as_mut() {
                log.stage(&command);
            }
            manager.execute(worker, command).expect("churn command")
        };

        // The shared input: ingested once, keyed by source node so every installed
        // plan imports the base arrangement directly — the exact analogue of the
        // closure session publishing its by-source graph arrangement.
        exec(
            worker,
            &mut manager,
            Command::CreateInput {
                name: "edges".into(),
                key_arity: Some(1),
            },
        );
        for edge in generate::uniform(nodes, edges, 42) {
            exec(
                worker,
                &mut manager,
                Command::Update {
                    name: "edges".into(),
                    row: edge_row(edge),
                    diff: 1,
                },
            );
        }
        let mut epoch = 1u64;
        exec(worker, &mut manager, Command::AdvanceTime { epoch });
        manager.settle(worker);

        // The sharing introspection target: the memoized (edges, keyed-by-src) subtree.
        let shared_key = ArrangeKey {
            plan: Plan::source("edges"),
            keys: KeySpec::Columns(vec![0]),
        };

        let mut rng = SmallRng::seed_from_u64(7);
        let mut stats = ChurnStats::new();

        let mut installed_total = 0usize;
        while installed_total < queries {
            let burst = batch.min(queries - installed_total);

            // Install a burst of plans, alternating query classes; each carries its own
            // query-local argument input, exactly as the closure version does.
            let mut names = Vec::with_capacity(burst);
            for b in 0..burst {
                let id = installed_total + b;
                let name = format!("q-{id}");
                let args = format!("args-{id}");
                let plan = if classes.lookup_at(id) {
                    lookup_plan("edges", &args)
                } else {
                    two_hop_plan("edges", &args)
                };
                stats.install.time(|| {
                    exec(
                        worker,
                        &mut manager,
                        Command::Install {
                            name: name.clone(),
                            plan,
                            locals: vec![args.clone()],
                        },
                    )
                });
                names.push((name, args));
            }

            // Pose one argument per query and mutate the graph.
            for (_, args) in names.iter() {
                let argument = rng.gen_range(0..nodes);
                exec(
                    worker,
                    &mut manager,
                    Command::Update {
                        name: args.clone(),
                        row: node_row(argument),
                        diff: 1,
                    },
                );
            }
            let addition = (rng.gen_range(0..nodes), rng.gen_range(0..nodes));
            exec(
                worker,
                &mut manager,
                Command::Update {
                    name: "edges".into(),
                    row: edge_row(addition),
                    diff: 1,
                },
            );
            epoch += 1;
            exec(worker, &mut manager, Command::AdvanceTime { epoch });

            // Step until everything managed is current, timing each step.
            let target = Time::from_epoch(epoch);
            let steps = if installed_total * 2 < queries {
                &mut stats.steps_first_half
            } else {
                &mut stats.steps_second_half
            };
            let settle_start = Instant::now();
            while manager.behind(&target) {
                let step_start = Instant::now();
                worker.step();
                steps.record(step_start.elapsed());
            }
            stats.settle.record(settle_start.elapsed());

            stats.slot_high_water = stats.slot_high_water.max(worker.dataflow_count());
            stats.shared_entries_high_water = stats
                .shared_entries_high_water
                .max(worker.shared_dataflow_entries());
            if let Some(name) = manager.arrangement_name(&shared_key) {
                stats.reader_slots_high_water = stats
                    .reader_slots_high_water
                    .max(manager.catalog().reader_slots(&name).unwrap_or(0));
            }

            // Retire the whole burst through the protocol.
            for (name, _) in names {
                stats.uninstall.time(|| {
                    exec(worker, &mut manager, Command::Uninstall { name });
                });
            }
            installed_total += burst;
        }

        for _ in 0..100 {
            let step_start = Instant::now();
            worker.step();
            stats.steady.record(step_start.elapsed());
        }

        stats.live_final = worker.live_dataflow_count();
        stats.slots_final = worker.dataflow_count();
        stats.reader_count_final = manager
            .arrangement_reader_count(&shared_key)
            .unwrap_or_default();
        stats.graph_size_final = manager
            .arrangement_name(&shared_key)
            .and_then(|name| manager.catalog().arrangement_size(&name).ok())
            .unwrap_or_default();
        // Flush whatever the last (uninstall-only) batch staged, as a clean server
        // shutdown would, and surface the WAL cost.
        stats.wal = log.take().map(DurableLog::finish);
        stats
    });
    results.into_iter().next().expect("at least one worker")
}

/// Replays a finished churn WAL into a fresh single-worker [`Manager`], timing the
/// whole recovery: decode every record, execute every command, settle. Returns the
/// command count and the elapsed wall time.
fn replay_wal(dir: &PathBuf) -> (usize, Duration) {
    let (_wal, records) = Wal::open(dir, 8 << 20).expect("reopen the churn WAL");
    let commands: Vec<Command> = records
        .iter()
        .map(|record| Command::decode(&record.body).expect("decode a logged command"))
        .collect();
    let count = commands.len();
    let mut results = execute(Config::new(1), move |worker: &mut Worker| {
        let mut manager = Manager::new();
        let start = Instant::now();
        for command in commands.clone() {
            manager.execute(worker, command).expect("replay command");
        }
        manager.settle(worker);
        start.elapsed()
    });
    (count, results.remove(0))
}

/// The `--durable` protocol: run the plan churn in memory, run it again with worker 0
/// writing a real group-committed WAL, then replay the finished log into a fresh
/// `Manager`. Emits `churn_plan_durable` (with the steady-state ratio against the
/// in-memory run — the durability acceptance number), `wal_append`, and
/// `recovery_replay`.
fn run_durable(
    queries: usize,
    batch: usize,
    workers: usize,
    nodes: u32,
    edges: usize,
    classes: Classes,
) {
    static RUN: kpg_sync::atomic::AtomicU64 = kpg_sync::atomic::AtomicU64::new(0);
    let wal_dir = std::env::temp_dir().join(format!(
        "kpg-churn-wal-{}-{}",
        std::process::id(),
        RUN.fetch_add(1, kpg_sync::atomic::Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&wal_dir);

    let memory = run_plan(queries, batch, workers, nodes, edges, classes, None);
    let stats = run_plan(
        queries,
        batch,
        workers,
        nodes,
        edges,
        classes,
        Some(wal_dir.clone()),
    );
    let wal = stats.wal.as_ref().expect("the durable run kept a WAL");

    println!("\n## Durable churn vs in-memory (same flags, same seed)");
    stats.install.print_summary("install");
    stats.settle.print_summary("settle");
    stats.steps_second_half.print_summary("steps-2nd-half");
    stats.steady.print_summary("steady-idle");
    memory.steady.print_summary("steady-idle-memory");
    wal.commits.print_summary("wal-commit+fsync");

    let steady_vs_memory =
        stats.steady.median().as_nanos() as f64 / memory.steady.median().as_nanos().max(1) as f64;
    let step_vs_memory = stats.steps_second_half.median().as_nanos() as f64
        / memory.steps_second_half.median().as_nanos().max(1) as f64;
    println!(
        "steady step: durable {} ns vs memory {} ns ({steady_vs_memory:.2}x)",
        stats.steady.median().as_nanos(),
        memory.steady.median().as_nanos()
    );
    bench_record(
        "churn_plan_durable",
        &[
            ("queries", num(queries)),
            ("batch", num(batch)),
            ("workers", num(workers)),
            ("nodes", num(nodes)),
            ("edges", num(edges)),
            ("classes", text(classes.name())),
            ("install_median_ns", num(stats.install.median().as_nanos())),
            (
                "install_p99_ns",
                num(stats.install.quantile(0.99).as_nanos()),
            ),
            ("settle_median_ns", num(stats.settle.median().as_nanos())),
            (
                "step_median_ns_first_half",
                num(stats.steps_first_half.median().as_nanos()),
            ),
            (
                "step_median_ns_second_half",
                num(stats.steps_second_half.median().as_nanos()),
            ),
            (
                "steady_step_median_ns",
                num(stats.steady.median().as_nanos()),
            ),
            (
                "memory_steady_step_median_ns",
                num(memory.steady.median().as_nanos()),
            ),
            ("steady_vs_memory_x", num(format!("{steady_vs_memory:.3}"))),
            ("step_vs_memory_x", num(format!("{step_vs_memory:.3}"))),
            ("slot_high_water", num(stats.slot_high_water)),
            (
                "reader_slots_high_water",
                num(stats.reader_slots_high_water),
            ),
        ],
    );

    let commit_seconds = wal.commit_total.as_secs_f64();
    let bytes_per_sec = if commit_seconds > 0.0 {
        wal.bytes as f64 / commit_seconds
    } else {
        0.0
    };
    bench_record(
        "wal_append",
        &[
            ("bytes", num(wal.bytes)),
            ("commits", num(wal.commits.len())),
            ("bytes_per_sec", num(format!("{bytes_per_sec:.0}"))),
            ("commit_p50_ns", num(wal.commits.median().as_nanos())),
            ("commit_p99_ns", num(wal.commits.quantile(0.99).as_nanos())),
        ],
    );

    let (commands, elapsed) = replay_wal(&wal_dir);
    let commands_per_sec = commands as f64 / elapsed.as_secs_f64().max(1e-9);
    println!("recovery replay: {commands} commands in {elapsed:?} ({commands_per_sec:.0}/s)");
    bench_record(
        "recovery_replay",
        &[
            ("commands", num(commands)),
            ("elapsed_ns", num(elapsed.as_nanos())),
            ("commands_per_sec", num(format!("{commands_per_sec:.0}"))),
        ],
    );
    let _ = std::fs::remove_dir_all(&wal_dir);
}

fn main() {
    let queries = arg_usize("--queries", 1000);
    let batch = arg_usize("--batch", 4).max(1);
    let workers = arg_usize("--workers", 1);
    let nodes = arg_usize("--nodes", 500) as u32;
    let edges = arg_usize("--edges", 4000);
    let durable = arg_flag("--durable");
    // Durability is a property of the command protocol, so it implies plan mode.
    let plan_mode = arg_flag("--plan") || durable;
    let classes = Classes::parse(&arg_string("--classes", "mixed"));

    let mode = if durable {
        "durable plan"
    } else if plan_mode {
        "plan"
    } else {
        "closure"
    };
    println!(
        "# Query churn ({mode} mode, {} classes): {queries} queries in bursts of {batch}, \
         {workers} workers, {nodes} nodes / {edges} edges",
        classes.name()
    );

    if durable {
        run_durable(queries, batch, workers, nodes, edges, classes);
        return;
    }
    let stats = if plan_mode {
        run_plan(queries, batch, workers, nodes, edges, classes, None)
    } else {
        run(queries, batch, workers, nodes, edges, classes)
    };

    println!("\n## Install / settle / uninstall latency");
    stats.install.print_summary("install");
    stats.install.print_ccdf("install");
    stats.settle.print_summary("settle");
    stats.uninstall.print_summary("uninstall");

    println!("\n## Per-step scheduling cost, first vs second half of the churn");
    stats.steps_first_half.print_summary("steps-1st-half");
    stats.steps_second_half.print_summary("steps-2nd-half");
    stats.steady.print_summary("steady-idle");

    println!("\n## State high-water marks vs final (bounded ⇒ churn reclaims)");
    println!(
        "slots\thigh {}\tfinal {}\tlive {}",
        stats.slot_high_water, stats.slots_final, stats.live_final
    );
    println!(
        "readers\tslot high {}\tcount final {}",
        stats.reader_slots_high_water, stats.reader_count_final
    );

    let record = if plan_mode { "churn_plan" } else { "churn" };
    bench_record(
        record,
        &[
            ("queries", num(queries)),
            ("batch", num(batch)),
            ("workers", num(workers)),
            ("nodes", num(nodes)),
            ("edges", num(edges)),
            ("classes", text(classes.name())),
            ("install_median_ns", num(stats.install.median().as_nanos())),
            (
                "install_p99_ns",
                num(stats.install.quantile(0.99).as_nanos()),
            ),
            ("settle_median_ns", num(stats.settle.median().as_nanos())),
            (
                "uninstall_median_ns",
                num(stats.uninstall.median().as_nanos()),
            ),
            (
                "step_median_ns_first_half",
                num(stats.steps_first_half.median().as_nanos()),
            ),
            (
                "step_median_ns_second_half",
                num(stats.steps_second_half.median().as_nanos()),
            ),
            (
                "steady_step_median_ns",
                num(stats.steady.median().as_nanos()),
            ),
            ("slot_high_water", num(stats.slot_high_water)),
            ("slots_final", num(stats.slots_final)),
            ("live_final", num(stats.live_final)),
            (
                "shared_entries_high_water",
                num(stats.shared_entries_high_water),
            ),
            (
                "reader_slots_high_water",
                num(stats.reader_slots_high_water),
            ),
            ("reader_count_final", num(stats.reader_count_final)),
            ("graph_size_final", num(stats.graph_size_final)),
        ],
    );
}
