//! Datalog experiments: Table 11 (batch evaluation) and Table 2 (interactive top-down
//! queries) — E11 and E12.
//!
//! Run with `cargo run --release -p kpg-bench --bin datalog [--scale 1.0]`.

use kpg_bench::{arg_f64, arg_usize, timed, LatencyRecorder};
use kpg_core::prelude::*;
use kpg_dataflow::Time;
use kpg_datalog::programs::{same_generation, tc_from, tc_to, transitive_closure};
use kpg_datalog::Edge;
use kpg_timestamp::rng::SmallRng;

fn run_batch(
    name: &str,
    edges: Vec<Edge>,
    workers: usize,
    program: &'static (dyn Fn(&Collection<Edge>) -> Collection<Edge> + Sync),
) {
    let edge_count = edges.len();
    let (counts, elapsed) = timed(|| {
        execute(Config::new(workers), move |worker| {
            let edges = edges.clone();
            let (mut input, probe, cap) = worker.dataflow(|builder| {
                let (input, collection) = new_collection::<Edge, isize>(builder);
                let result = program(&collection);
                (input, result.probe(), result.capture())
            });
            for (index, edge) in edges.iter().enumerate() {
                if index % worker.peers() == worker.index() {
                    input.insert(*edge);
                }
            }
            input.advance_to(1);
            worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
            let derived = cap.borrow().iter().filter(|(_, _, d)| *d > 0).count();
            derived
        })
    });
    let derived: usize = counts.iter().sum();
    println!(
        "{name}\tworkers {workers}\tinput {edge_count}\tderived {derived}\t{:.3} s",
        elapsed.as_secs_f64()
    );
}

fn interactive_tc(edges: Vec<Edge>, nodes: u32, queries: usize, reverse: bool) -> LatencyRecorder {
    let results = execute(Config::new(1), move |worker| {
        let edges = edges.clone();
        let (mut edges_in, mut seeds_in, probe) = worker.dataflow(|builder| {
            let (edges_in, edge_coll) = new_collection::<Edge, isize>(builder);
            let (seeds_in, seeds) = new_collection::<u32, isize>(builder);
            let result = if reverse {
                tc_to(&edge_coll, &seeds)
            } else {
                tc_from(&edge_coll, &seeds)
            };
            (edges_in, seeds_in, result.probe())
        });
        for edge in edges {
            edges_in.insert(edge);
        }
        let mut epoch = 1u64;
        edges_in.advance_to(epoch);
        seeds_in.advance_to(epoch);
        worker.step_while(|| probe.less_than(&Time::from_epoch(epoch)));

        let mut recorder = LatencyRecorder::new();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..queries {
            let seed = rng.gen_range(0..nodes);
            seeds_in.insert(seed);
            epoch += 1;
            edges_in.advance_to(epoch);
            seeds_in.advance_to(epoch);
            let target = Time::from_epoch(epoch);
            recorder.time(|| worker.step_while(|| probe.less_than(&target)));
            seeds_in.remove(seed);
        }
        recorder
    });
    results.into_iter().next().expect("one worker")
}

fn main() {
    let scale = arg_f64("--scale", 1.0);
    let max_workers = arg_usize("--max-workers", 2);
    let queries = arg_usize("--queries", 50);

    let tree = kpg_datalog::generate::tree((9.0 + scale.log2()).max(6.0) as u32);
    let grid = kpg_datalog::generate::grid((24.0 * scale.sqrt()) as u32);
    let gnp = kpg_datalog::generate::gnp((600.0 * scale) as u32, (1_800.0 * scale) as usize, 4);

    println!("# Table 11 analogue: batch Datalog evaluation");
    let inputs: Vec<(&str, Vec<Edge>)> = vec![("tree", tree), ("grid", grid), ("gnp", gnp)];
    for (name, edges) in &inputs {
        let mut workers = 1;
        while workers <= max_workers {
            run_batch(
                &format!("tc({name})"),
                edges.clone(),
                workers,
                &transitive_closure,
            );
            workers *= 2;
        }
    }
    for (name, edges) in &inputs {
        run_batch(&format!("sg({name})"), edges.clone(), 1, &same_generation);
    }

    println!(
        "\n# Table 2 analogue: interactive top-down queries (median/max of {queries} queries)"
    );
    println!("query\tgraph\tmedian (ms)\tmax (ms)\tfull eval (s)");
    for (name, edges) in &inputs {
        let nodes = edges.iter().map(|(s, d)| s.max(d) + 1).max().unwrap_or(1);
        let (_, full) = timed(|| {
            let edges = edges.clone();
            execute(Config::new(1), move |worker| {
                let edges = edges.clone();
                let (mut input, probe) = worker.dataflow(|builder| {
                    let (input, collection) = new_collection::<Edge, isize>(builder);
                    (input, transitive_closure(&collection).probe())
                });
                for e in edges {
                    input.insert(e);
                }
                input.advance_to(1);
                worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
            })
        });
        let forward = interactive_tc(edges.clone(), nodes, queries, false);
        println!(
            "tc(x,?)\t{name}\t{:.3}\t{:.3}\t{:.3}",
            forward.median().as_secs_f64() * 1e3,
            forward.max().as_secs_f64() * 1e3,
            full.as_secs_f64()
        );
        let backward = interactive_tc(edges.clone(), nodes, queries, true);
        println!(
            "tc(?,x)\t{name}\t{:.3}\t{:.3}\t{:.3}",
            backward.median().as_secs_f64() * 1e3,
            backward.max().as_secs_f64() * 1e3,
            full.as_secs_f64()
        );
    }
}
