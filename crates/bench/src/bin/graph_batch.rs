//! Batch graph computations: Tables 7, 8 and 9 (E10).
//!
//! Three synthetic graphs stand in for LiveJournal, Orkut and Twitter (substitution S3):
//! a uniform graph, a denser uniform graph, and a skewed graph. For each we report the
//! time to build the forward index (arrangement), reachability, BFS distances, the
//! reverse index, and undirected connectivity, for 1..=max workers, alongside the
//! purpose-written single-threaded baselines (array- and hash-map-based BFS, union-find).
//!
//! Run with `cargo run --release -p kpg-bench --bin graph_batch [--scale 1.0]`.

use kpg_bench::{arg_f64, arg_usize, timed};
use kpg_core::prelude::*;
use kpg_dataflow::Time;
use kpg_graph::algorithms::{bfs_distances, connected_components, reachability};
use kpg_graph::{baseline, generate, Edge};

fn run_differential(edges: Vec<Edge>, workers: usize) -> (f64, f64, f64, f64) {
    // Returns (index seconds, reach seconds, bfs seconds, wcc seconds).
    let results = execute(Config::new(workers), move |worker| {
        let edges = edges.clone();
        let (mut edges_in, mut roots_in, index_probe, reach_probe, bfs_probe, wcc_probe) = worker
            .dataflow(|builder| {
                let (edges_in, edge_coll) = new_collection::<Edge, isize>(builder);
                let (roots_in, roots) = new_collection::<u32, isize>(builder);
                let index_probe = edge_coll.arrange_by_key().probe();
                let reach_probe = reachability(&edge_coll, &roots).probe();
                let bfs_probe = bfs_distances(&edge_coll, &roots).probe();
                let wcc_probe = connected_components(&edge_coll).probe();
                (
                    edges_in,
                    roots_in,
                    index_probe,
                    reach_probe,
                    bfs_probe,
                    wcc_probe,
                )
            });
        for (index, edge) in edges.iter().enumerate() {
            if index % worker.peers() == worker.index() {
                edges_in.insert(*edge);
            }
        }
        if worker.index() == 0 {
            roots_in.insert(edges.first().map(|(s, _)| *s).unwrap_or(0));
        }
        edges_in.advance_to(1);
        roots_in.advance_to(1);
        let target = Time::from_epoch(1);
        let (_, index_time) = timed(|| worker.step_while(|| index_probe.less_than(&target)));
        let (_, reach_time) = timed(|| worker.step_while(|| reach_probe.less_than(&target)));
        let (_, bfs_time) = timed(|| worker.step_while(|| bfs_probe.less_than(&target)));
        let (_, wcc_time) = timed(|| worker.step_while(|| wcc_probe.less_than(&target)));
        (
            index_time.as_secs_f64(),
            reach_time.as_secs_f64(),
            bfs_time.as_secs_f64(),
            wcc_time.as_secs_f64(),
        )
    });
    results[0]
}

fn main() {
    let scale = arg_f64("--scale", 1.0);
    let max_workers = arg_usize("--max-workers", 2);
    let graphs: Vec<(&str, Vec<Edge>)> = vec![
        (
            "livejournal-like (uniform)",
            generate::uniform((3_000.0 * scale) as u32, (42_000.0 * scale) as usize, 1),
        ),
        (
            "orkut-like (dense uniform)",
            generate::uniform((2_000.0 * scale) as u32, (78_000.0 * scale) as usize, 2),
        ),
        (
            "twitter-like (skewed)",
            generate::skewed((4_000.0 * scale) as u32, (130_000.0 * scale) as usize, 3),
        ),
    ];

    for (name, edges) in graphs {
        let nodes = edges.iter().map(|(s, d)| s.max(d) + 1).max().unwrap_or(1);
        println!(
            "\n# Table 7/8/9 analogue: {name} — {} nodes, {} edges",
            nodes,
            edges.len()
        );
        println!("system\tworkers\tindex (s)\treach (s)\tbfs (s)\twcc (s)");

        // Single-threaded baselines.
        let root = edges.first().map(|(s, _)| *s).unwrap_or(0);
        let (_, reach_array) = timed(|| baseline::bfs_array(nodes, &edges, root));
        let (_, bfs_array) = timed(|| baseline::bfs_distances_array(nodes, &edges, root));
        let (_, wcc_uf) = timed(|| baseline::union_find_components(&edges));
        println!(
            "single-thread (arrays)\t1\t-\t{:.3}\t{:.3}\t{:.3}",
            reach_array.as_secs_f64(),
            bfs_array.as_secs_f64(),
            wcc_uf.as_secs_f64()
        );
        let (_, reach_hash) = timed(|| baseline::bfs_hashmap(&edges, root));
        println!(
            "single-thread (hash map)\t1\t-\t{:.3}\t{:.3}\t-",
            reach_hash.as_secs_f64(),
            reach_hash.as_secs_f64()
        );

        // Differential, scaling workers.
        let mut workers = 1;
        while workers <= max_workers {
            let (index, reach, bfs, wcc) = run_differential(edges.clone(), workers);
            println!("shared-arrangements\t{workers}\t{index:.3}\t{reach:.3}\t{bfs:.3}\t{wcc:.3}");
            workers *= 2;
        }
    }
}
