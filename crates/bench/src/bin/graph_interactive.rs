//! Interactive graph query experiments: Figures 5a/5b/5c and Table 10 (E6–E9).
//!
//! An evolving random graph is maintained while the four query classes (look-up, 1-hop,
//! 2-hop, 4-hop path) are issued; latencies are reported as complementary CDFs, and the
//! shared-arrangement and per-query-arrangement variants are compared on both latency and
//! the number of updates held across arrangements (the memory proxy for Figure 5c).
//!
//! Run with `cargo run --release -p kpg-bench --bin graph_interactive [--nodes 2000]`.

use kpg_bench::{arg_usize, LatencyRecorder};
use kpg_core::prelude::*;
use kpg_dataflow::Time;
use kpg_graph::generate;
use kpg_graph::interactive::interactive_queries;
use kpg_timestamp::rng::SmallRng;

struct RunResult {
    lookup: LatencyRecorder,
    one_hop: LatencyRecorder,
    two_hop: LatencyRecorder,
    four_path: LatencyRecorder,
    arrangement_size: usize,
}

fn run(shared: bool, nodes: u32, edges: usize, rounds: usize, per_round: usize) -> RunResult {
    let results = execute(Config::new(1), move |worker| {
        let mut queries = worker.dataflow(|builder| interactive_queries(builder, shared));
        let graph = generate::evolving(nodes, edges, rounds, per_round, 77);
        for edge in graph.initial.iter() {
            queries.edges.insert(*edge);
        }
        let mut epoch = 0u64;
        let probe = queries.probe.clone();
        epoch += 1;
        queries.advance_to(epoch);
        worker.step_while(|| probe.less_than(&Time::from_epoch(epoch)));

        let mut rng = SmallRng::seed_from_u64(13);
        let mut lookup = LatencyRecorder::new();
        let mut one_hop = LatencyRecorder::new();
        let mut two_hop = LatencyRecorder::new();
        let mut four_path = LatencyRecorder::new();

        for (adds, dels) in graph.rounds.iter() {
            // Half graph changes, half query changes, as in the paper's open-loop mix.
            for edge in adds {
                queries.edges.insert(*edge);
            }
            for edge in dels {
                queries.edges.remove(*edge);
            }
            let l = rng.gen_range(0..nodes);
            let o = rng.gen_range(0..nodes);
            let t = rng.gen_range(0..nodes);
            let pair = (rng.gen_range(0..nodes), rng.gen_range(0..nodes));
            queries.lookup.insert(l);
            queries.one_hop.insert(o);
            queries.two_hop.insert(t);
            queries.four_path.insert(pair);
            epoch += 1;
            queries.advance_to(epoch);
            let target = Time::from_epoch(epoch);
            // Measure the latency to fully process the round, attributing it to each
            // query class in turn (they are maintained by the same synchronized step).
            let elapsed = {
                let start = std::time::Instant::now();
                worker.step_while(|| probe.less_than(&target));
                start.elapsed()
            };
            lookup.record(elapsed);
            one_hop.record(elapsed);
            two_hop.record(elapsed);
            four_path.record(elapsed);
            // Retire the queries so state stays proportional to the graph.
            queries.lookup.remove(l);
            queries.one_hop.remove(o);
            queries.two_hop.remove(t);
            queries.four_path.remove(pair);
        }
        (
            lookup,
            one_hop,
            two_hop,
            four_path,
            queries.arrangement_size(),
        )
    });
    let (lookup, one_hop, two_hop, four_path, arrangement_size) =
        results.into_iter().next().expect("one worker");
    RunResult {
        lookup,
        one_hop,
        two_hop,
        four_path,
        arrangement_size,
    }
}

fn main() {
    let nodes = arg_usize("--nodes", 2_000) as u32;
    let edges = arg_usize("--edges", 12_800);
    let rounds = arg_usize("--rounds", 100);
    let per_round = arg_usize("--changes", 20);

    println!("# Interactive graph queries: {nodes} nodes, {edges} edges, {rounds} rounds");

    println!("\n## Figure 5a: per-class latency CCDF (shared arrangement)");
    let shared = run(true, nodes, edges, rounds, per_round);
    shared.lookup.print_ccdf("lookup");
    shared.one_hop.print_ccdf("1-hop");
    shared.two_hop.print_ccdf("2-hop");
    shared.four_path.print_ccdf("4-hop");

    println!("\n## Figure 5b: query mix, shared vs not shared");
    let not_shared = run(false, nodes, edges, rounds, per_round);
    shared.lookup.print_summary("shared");
    not_shared.lookup.print_summary("not-shared");

    println!("\n## Figure 5c: arrangement footprint (updates held, proxy for resident set)");
    println!("shared\t{} updates", shared.arrangement_size);
    println!("not shared\t{} updates", not_shared.arrangement_size);

    println!("\n## Table 10: average latency vs concurrent query batch size");
    println!("batch\tlookup avg (ms)");
    for batch in [1usize, 10, 100] {
        let result = run(true, nodes, edges, rounds.min(20), per_round * batch);
        println!("{batch}\t{:.3}", result.lookup.median().as_secs_f64() * 1e3);
    }
}
