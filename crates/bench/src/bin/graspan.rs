//! Program-analysis experiments: Tables 3 and 4 (E13, E14).
//!
//! Three synthetic program graphs stand in for httpd, psql and linux (substitution S4).
//! For the dataflow (null-propagation) analysis we report the full analysis time and the
//! median/max latency of retracting null sources from the completed analysis (Table 3's
//! interactive rows); for the points-to analysis we report the unoptimised, optimised,
//! and optimised-without-sharing variants (Table 4).
//!
//! Run with `cargo run --release -p kpg-bench --bin graspan [--scale 1.0]`.

use kpg_bench::{arg_f64, arg_usize, timed, LatencyRecorder};
use kpg_core::prelude::*;
use kpg_dataflow::Time;
use kpg_datalog::generate::program_graph;
use kpg_datalog::graspan::{nullness, points_to};
use kpg_datalog::Edge;

fn dataflow_analysis(variables: u32, seed: u64, retractions: usize) -> (f64, LatencyRecorder) {
    let results = execute(Config::new(1), move |worker| {
        let graph = program_graph(variables, seed);
        let (mut assign_in, mut null_in, probe) = worker.dataflow(|builder| {
            let (assign_in, assignments) = new_collection::<Edge, isize>(builder);
            let (null_in, sources) = new_collection::<u32, isize>(builder);
            let result = nullness(&assignments, &sources);
            (assign_in, null_in, result.probe())
        });
        for edge in graph.assignments.iter() {
            assign_in.insert(*edge);
        }
        for source in graph.null_sources.iter() {
            null_in.insert(*source);
        }
        let mut epoch = 1u64;
        assign_in.advance_to(epoch);
        null_in.advance_to(epoch);
        let (_, full) = timed(|| worker.step_while(|| probe.less_than(&Time::from_epoch(epoch))));

        // Retract null sources one at a time, measuring each correction latency.
        let mut recorder = LatencyRecorder::new();
        for source in graph.null_sources.iter().take(retractions) {
            null_in.remove(*source);
            epoch += 1;
            assign_in.advance_to(epoch);
            null_in.advance_to(epoch);
            let target = Time::from_epoch(epoch);
            recorder.time(|| worker.step_while(|| probe.less_than(&target)));
        }
        (full.as_secs_f64(), recorder)
    });
    results.into_iter().next().expect("one worker")
}

fn points_to_analysis(variables: u32, seed: u64, materialise_alias: bool) -> f64 {
    let (_, elapsed) = timed(|| {
        execute(Config::new(1), move |worker| {
            let graph = program_graph(variables, seed);
            let (mut a_in, mut o_in, mut d_in, probe) = worker.dataflow(|builder| {
                let (a_in, assignments) = new_collection::<Edge, isize>(builder);
                let (o_in, allocations) = new_collection::<Edge, isize>(builder);
                let (d_in, dereferences) = new_collection::<Edge, isize>(builder);
                let result =
                    points_to(&assignments, &allocations, &dereferences, materialise_alias);
                (a_in, o_in, d_in, result.probe())
            });
            for e in graph.assignments.iter() {
                a_in.insert(*e);
            }
            for e in graph.allocations.iter() {
                o_in.insert(*e);
            }
            for e in graph.dereferences.iter() {
                d_in.insert(*e);
            }
            a_in.advance_to(1);
            o_in.advance_to(1);
            d_in.advance_to(1);
            worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
        })
    });
    elapsed.as_secs_f64()
}

fn main() {
    let scale = arg_f64("--scale", 1.0);
    let retractions = arg_usize("--retractions", 50);
    let inputs = [
        ("httpd-like", (800.0 * scale) as u32, 11u64),
        ("psql-like", (2_000.0 * scale) as u32, 12),
        ("linux-like", (4_000.0 * scale) as u32, 13),
    ];

    println!("# Table 3 analogue: dataflow (null propagation) analysis");
    println!("graph\tfull analysis (s)\tretraction median (ms)\tretraction max (ms)");
    for (name, variables, seed) in inputs {
        let (full, recorder) = dataflow_analysis(variables, seed, retractions);
        println!(
            "{name}\t{full:.3}\t{:.3}\t{:.3}",
            recorder.median().as_secs_f64() * 1e3,
            recorder.max().as_secs_f64() * 1e3
        );
    }

    println!("\n# Table 4 analogue: points-to analysis");
    println!("graph\tunoptimised (s)\toptimised (s)");
    for (name, variables, seed) in inputs {
        let unopt = points_to_analysis(variables, seed, true);
        let opt = points_to_analysis(variables, seed, false);
        println!("{name}\t{unopt:.3}\t{opt:.3}");
    }
}
