//! `lint_sync`: the facade-bypass linter.
//!
//! Scans every `.rs` file in the workspace for direct `std::sync` / `std::thread`
//! usage. All concurrency primitives must go through `kpg_sync` — that is what makes
//! the deterministic model checker (`kpg_sync::model`) and the lock-order/blocking
//! analyses see every operation. A `std::sync::Mutex` smuggled in anywhere is
//! invisible to both, so CI runs this scanner and fails on any hit outside the
//! allowlist.
//!
//! The allowlist is `crates/bench/lint_sync_allow.txt`: one path prefix per line
//! (relative to the workspace root, `/`-separated), `#` comments. `crates/sync/` is
//! allowlisted there — the facade is the one place std primitives belong.
//!
//! A second pass audits `unsafe`: the workspace is `#![forbid(unsafe_code)]`
//! everywhere except the sites enumerated in `crates/bench/lint_unsafe_allow.txt`
//! (the readiness-syscall module, the server binary's signal handler, the
//! kill-based recovery test). The attribute already stops unsafe inside each
//! forbidding crate; this pass stops a *new crate or module* from quietly opting
//! out — growing the audited inventory requires editing the allowlist in the same
//! diff, which is the review hook.
//!
//! Usage: `cargo run -p kpg_bench --bin lint_sync` from anywhere in the workspace.
//! Exits 0 on a clean tree, 1 with a `file:line` listing otherwise.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Substrings that indicate a facade bypass. Matched against comment- and
/// string-stripped source, so prose mentioning `std::sync` is fine.
const FORBIDDEN: &[&str] = &["std::sync", "std::thread"];

const ALLOWLIST: &str = "crates/bench/lint_sync_allow.txt";
const UNSAFE_ALLOWLIST: &str = "crates/bench/lint_unsafe_allow.txt";

fn main() -> ExitCode {
    let root = workspace_root();
    let allow = load_allowlist(&root, ALLOWLIST, &["crates/sync/"]);
    let unsafe_allow = load_allowlist(&root, UNSAFE_ALLOWLIST, &[]);
    let mut files = Vec::new();
    collect_rs_files(&root, &root, &mut files);
    files.sort();

    let mut violations = Vec::new();
    let mut unsafe_violations = Vec::new();
    for relative in &files {
        let source = match fs::read_to_string(root.join(relative)) {
            Ok(source) => source,
            Err(error) => {
                eprintln!("lint_sync: cannot read {relative}: {error}");
                return ExitCode::FAILURE;
            }
        };
        if !allow.iter().any(|prefix| relative.starts_with(prefix)) {
            scan(relative, &source, &mut violations);
        }
        if !unsafe_allow
            .iter()
            .any(|prefix| relative.starts_with(prefix))
        {
            scan_unsafe(relative, &source, &mut unsafe_violations);
        }
    }

    if violations.is_empty() && unsafe_violations.is_empty() {
        println!("lint_sync: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for violation in violations.iter().chain(&unsafe_violations) {
            eprintln!("{violation}");
        }
        if !violations.is_empty() {
            eprintln!(
                "lint_sync: {} direct std::sync/std::thread use(s); route them through \
                 kpg_sync (or, exceptionally, add a prefix to {ALLOWLIST})",
                violations.len()
            );
        }
        if !unsafe_violations.is_empty() {
            eprintln!(
                "lint_sync: {} `unsafe` use(s) outside the audited inventory; keep the \
                 code safe, or extend the audit in {UNSAFE_ALLOWLIST} with a SAFETY \
                 argument in the same change",
                unsafe_violations.len()
            );
        }
        ExitCode::FAILURE
    }
}

/// Finds the workspace root: the nearest ancestor of the current directory holding a
/// `Cargo.toml` with a `[workspace]` table (falls back to `CARGO_MANIFEST_DIR`'s
/// grandparent, which is the root when run via `cargo run -p kpg_bench`).
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("current directory unreadable");
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("bench crate has a workspace grandparent")
        .to_path_buf()
}

fn load_allowlist(root: &Path, file: &str, fallback: &[&str]) -> Vec<String> {
    let Ok(text) = fs::read_to_string(root.join(file)) else {
        return fallback.iter().map(|prefix| prefix.to_string()).collect();
    };
    text.lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(str::to_string)
        .collect()
}

fn collect_rs_files(root: &Path, dir: &Path, files: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Build output and VCS metadata are not source.
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, files);
        } else if name.ends_with(".rs") {
            let relative = path
                .strip_prefix(root)
                .expect("walked paths stay under the root")
                .components()
                .map(|component| component.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(relative);
        }
    }
}

/// Appends a `file:line: text` entry for every forbidden token in `source`, ignoring
/// comments and string literals.
fn scan(relative: &str, source: &str, violations: &mut Vec<String>) {
    let stripped = strip_comments_and_strings(source);
    for (index, (line, original)) in stripped.lines().zip(source.lines()).enumerate() {
        if FORBIDDEN.iter().any(|token| line.contains(token)) {
            violations.push(format!("{relative}:{}: {}", index + 1, original.trim()));
        }
    }
}

/// Appends a `file:line: text` entry for every word-boundary `unsafe` token in
/// `source`, ignoring comments and string literals. `unsafe_code` — the token every
/// crate's `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]` attribute contains —
/// is not a use of unsafe and is skipped.
fn scan_unsafe(relative: &str, source: &str, violations: &mut Vec<String>) {
    let stripped = strip_comments_and_strings(source);
    for (index, (line, original)) in stripped.lines().zip(source.lines()).enumerate() {
        let mut rest = line;
        let mut hit = false;
        while let Some(at) = rest.find("unsafe") {
            let before_ok = at == 0
                || !rest[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let after = &rest[at + "unsafe".len()..];
            let after_ok = !after
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if before_ok && after_ok {
                hit = true;
                break;
            }
            rest = &rest[at + "unsafe".len()..];
        }
        if hit {
            violations.push(format!("{relative}:{}: {}", index + 1, original.trim()));
        }
    }
}

/// Replaces the contents of comments and string literals with spaces, preserving line
/// structure. A small state machine — enough for real Rust source; raw strings with
/// `#` fences are treated as plain strings, which errs toward over-reporting (fine
/// for a linter whose escape hatch is the allowlist).
fn strip_comments_and_strings(source: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        Char,
    }
    let mut state = State::Code;
    let mut out = String::with_capacity(source.len());
    let mut chars = source.chars().peekable();
    while let Some(current) = chars.next() {
        let next = chars.peek().copied();
        match state {
            State::Code => match (current, next) {
                ('/', Some('/')) => {
                    state = State::LineComment;
                    out.push(' ');
                }
                ('/', Some('*')) => {
                    state = State::BlockComment(1);
                    out.push(' ');
                }
                ('"', _) => {
                    state = State::Str;
                    out.push(' ');
                }
                // A lifetime (`'a`) is not a char literal; only treat `'` as one when
                // it closes within two characters (`'x'`, `'\n'`).
                ('\'', Some(peeked)) if peeked != '\\' && chars.clone().nth(1) == Some('\'') => {
                    state = State::Char;
                    out.push(' ');
                }
                ('\'', Some('\\')) => {
                    state = State::Char;
                    out.push(' ');
                }
                _ => out.push(current),
            },
            State::LineComment => {
                if current == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::BlockComment(depth) => {
                match (current, next) {
                    ('*', Some('/')) => {
                        chars.next();
                        out.push_str("  ");
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        continue;
                    }
                    ('/', Some('*')) => {
                        chars.next();
                        out.push_str("  ");
                        state = State::BlockComment(depth + 1);
                        continue;
                    }
                    _ => {}
                }
                out.push(if current == '\n' { '\n' } else { ' ' });
            }
            State::Str => match current {
                '\\' => {
                    chars.next();
                    out.push_str("  ");
                }
                '"' => {
                    state = State::Code;
                    out.push(' ');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            State::Char => match current {
                '\\' => {
                    chars.next();
                    out.push_str("  ");
                }
                '\'' => {
                    state = State::Code;
                    out.push(' ');
                }
                _ => out.push(' '),
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::{scan, strip_comments_and_strings};

    #[test]
    fn flags_injected_std_sync_mutex() {
        let source = "use std::sync::Mutex;\nfn main() { let _ = Mutex::new(0); }\n";
        let mut violations = Vec::new();
        scan("injected.rs", source, &mut violations);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].starts_with("injected.rs:1:"));
    }

    #[test]
    fn flags_std_thread_spawn() {
        let source = "fn main() { std::thread::spawn(|| {}); }\n";
        let mut violations = Vec::new();
        scan("spawned.rs", source, &mut violations);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn ignores_comments_strings_and_the_facade() {
        let source = concat!(
            "// std::sync::Mutex in a comment\n",
            "/* std::thread::spawn in a block\n   spanning lines */\n",
            "/// Doc prose about std::sync.\n",
            "fn main() { let _ = \"std::sync::Mutex\"; }\n",
            "use kpg_sync::Mutex;\n",
        );
        let mut violations = Vec::new();
        scan("clean.rs", source, &mut violations);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn stripping_preserves_line_numbers() {
        let source = "a /* x\n y */ b\n\"s\ntr\" c\n";
        let stripped = strip_comments_and_strings(source);
        assert_eq!(stripped.lines().count(), source.lines().count());
    }

    #[test]
    fn flags_unsafe_blocks_but_not_the_forbid_attribute() {
        let source = concat!(
            "#![forbid(unsafe_code)]\n",
            "// unsafe in prose is fine\n",
            "fn main() { let _ = \"unsafe\"; }\n",
            "fn smuggled() { unsafe { core::hint::unreachable_unchecked() } }\n",
            "unsafe extern \"C\" fn hook() {}\n",
        );
        let mut violations = Vec::new();
        super::scan_unsafe("audited.rs", source, &mut violations);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].starts_with("audited.rs:4:"));
        assert!(violations[1].starts_with("audited.rs:5:"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let source = "fn f<'a>(x: &'a str) -> &'a str { x } // std::sync here is prose\n";
        let mut violations = Vec::new();
        scan("lifetimes.rs", source, &mut violations);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
