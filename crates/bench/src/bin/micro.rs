//! Arrangement microbenchmarks: Figure 6a–6f (E15–E20).
//!
//! A continually changing collection of 64-bit identifiers is arranged and (for the
//! throughput breakdown) counted, while the harness varies the offered load, the number
//! of workers, and the merge amortization coefficient, and measures the latency to
//! install-and-complete new dataflows that join against the pre-arranged collection.
//!
//! Run with `cargo run --release -p kpg_bench --bin micro [--keys 100000]
//! [--rounds 50] [--max-workers 2] [--updates 200000]`.
//!
//! Besides the human-readable figure tables, every experiment emits one machine-readable
//! `BENCH {...}` JSON line (`micro_latency`, `micro_throughput`, `micro_join_install`),
//! so CI and future PRs can track the perf trajectory of the hot path.

use kpg_bench::{arg_usize, bench_record, num, text, timed, LatencyRecorder};
use kpg_core::prelude::*;
use kpg_dataflow::Time;
use kpg_timestamp::rng::SmallRng;

/// Drives an arrangement of `keys` 64-bit identifiers with `updates_per_round` changes
/// per round for `rounds` rounds, recording per-round completion latency.
fn drive_arrangement(
    workers: usize,
    keys: u64,
    updates_per_round: usize,
    rounds: usize,
    effort: MergeEffort,
) -> LatencyRecorder {
    let results = execute(Config::new(workers), move |worker| {
        let (mut input, probe) = worker.dataflow(|builder| {
            let (input, collection) = new_collection::<u64, isize>(builder);
            let arranged = collection
                .map(|x| (x, x))
                .arrange_by_key_named("MicroArrange", effort);
            (input, arranged.probe())
        });
        let mut rng = SmallRng::seed_from_u64(worker.index() as u64);
        let mut recorder = LatencyRecorder::new();
        let mut epoch = 0u64;
        for _ in 0..rounds {
            for _ in 0..updates_per_round / worker.peers().max(1) {
                let key = rng.gen_range(0..keys);
                input.insert(key);
                input.remove(rng.gen_range(0..keys));
                let _ = key;
            }
            epoch += 1;
            input.advance_to(epoch);
            let target = Time::from_epoch(epoch);
            recorder.time(|| worker.step_while(|| probe.less_than(&target)));
        }
        recorder
    });
    results.into_iter().next().expect("at least one worker")
}

/// Measures peak update throughput of batch formation + trace maintenance + count.
fn throughput(workers: usize, keys: u64, total_updates: usize) -> f64 {
    let (_, elapsed) = timed(|| {
        execute(Config::new(workers), move |worker| {
            let (mut input, probe) = worker.dataflow(|builder| {
                let (input, collection) = new_collection::<u64, isize>(builder);
                let counted = collection.count();
                (input, counted.probe())
            });
            let mut rng = SmallRng::seed_from_u64(worker.index() as u64);
            let share = total_updates / worker.peers().max(1);
            let batch = 10_000.min(share.max(1));
            let mut sent = 0;
            let mut epoch = 0u64;
            while sent < share {
                for _ in 0..batch.min(share - sent) {
                    input.insert(rng.gen_range(0..keys));
                }
                sent += batch;
                epoch += 1;
                input.advance_to(epoch);
                worker.step_while(|| probe.less_than(&Time::from_epoch(epoch)));
            }
        })
    });
    total_updates as f64 / elapsed.as_secs_f64()
}

/// Measures the time to install a new dataflow joining a small collection against a
/// pre-arranged collection of `keys` keys (Figure 6f).
fn join_proportionality(keys: u64, probe_sizes: &[usize]) -> Vec<(usize, f64)> {
    let sizes = probe_sizes.to_vec();
    let results = execute(Config::new(1), move |worker| {
        // Dataflow 1: the large, maintained arrangement.
        let (mut input, probe, trace) = worker.dataflow(|builder| {
            let (input, collection) = new_collection::<u64, isize>(builder);
            let arranged = collection.map(|x| (x, x)).arrange_by_key();
            (input, arranged.probe(), arranged.trace)
        });
        for key in 0..keys {
            input.insert(key);
        }
        input.advance_to(1);
        worker.step_while(|| probe.less_than(&Time::from_epoch(1)));

        // For each probe size, install a fresh dataflow importing the arrangement.
        let mut measurements = Vec::new();
        for &size in sizes.iter() {
            let trace = trace.clone();
            let (_, elapsed) = timed(|| {
                let (mut query_in, query_probe) = worker.dataflow(|builder| {
                    let imported = trace.import(builder);
                    let (query_in, queries) = new_collection::<u64, isize>(builder);
                    let joined = queries
                        .map(|q| (q, ()))
                        .arrange_by_key()
                        .join_core(&imported, |k, (), v| (*k, *v));
                    (query_in, joined.probe())
                });
                for q in 0..size as u64 {
                    query_in.insert(q * 37 % keys);
                }
                query_in.advance_to(1);
                query_in.close();
                worker.step_while(|| query_probe.less_than(&Time::from_epoch(1)));
            });
            measurements.push((size, elapsed.as_secs_f64() * 1e3));
        }
        measurements
    });
    results.into_iter().next().expect("one worker")
}

/// Emits the `micro_latency` BENCH line for one step-latency experiment.
fn emit_latency(label: &str, workers: usize, load: usize, recorder: &LatencyRecorder) {
    bench_record(
        "micro_latency",
        &[
            ("experiment", text(label)),
            ("workers", num(workers)),
            ("load", num(load)),
            ("p50_ns", num(recorder.median().as_nanos())),
            ("p99_ns", num(recorder.quantile(0.99).as_nanos())),
            ("max_ns", num(recorder.max().as_nanos())),
        ],
    );
}

fn main() {
    let keys = arg_usize("--keys", 50_000) as u64;
    let rounds = arg_usize("--rounds", 50);
    let max_workers = arg_usize("--max-workers", 2);
    let updates = arg_usize("--updates", 200_000);

    println!("# Figure 6a: latency CCDF vs offered load (1 worker)");
    for load in [250usize, 1_000, 4_000] {
        let recorder = drive_arrangement(1, keys, load, rounds, MergeEffort::Default);
        recorder.print_ccdf(&format!("load-{load}"));
        emit_latency("load", 1, load, &recorder);
    }

    println!("\n# Figure 6b: latency CCDF vs workers (fixed load)");
    let mut workers = 1;
    while workers <= max_workers {
        let recorder = drive_arrangement(workers, keys, 4_000, rounds, MergeEffort::Default);
        recorder.print_ccdf(&format!("workers-{workers}"));
        emit_latency("workers", workers, 4_000, &recorder);
        workers *= 2;
    }

    println!("\n# Figure 6c: latency CCDF vs workers (load proportional to workers)");
    let mut workers = 1;
    while workers <= max_workers {
        let recorder = drive_arrangement(
            workers,
            keys * workers as u64,
            4_000 * workers,
            rounds,
            MergeEffort::Default,
        );
        recorder.print_ccdf(&format!("weak-{workers}"));
        emit_latency("weak", workers, 4_000 * workers, &recorder);
        workers *= 2;
    }

    println!("\n# Figure 6d: throughput of arrangement + count (records/s)");
    let mut workers = 1;
    while workers <= max_workers {
        let rate = throughput(workers, keys, updates);
        println!("workers-{workers}\t{rate:.0} records/s");
        bench_record(
            "micro_throughput",
            &[
                ("workers", num(workers)),
                ("keys", num(keys)),
                ("updates", num(updates)),
                ("records_per_s", num(format!("{rate:.0}"))),
            ],
        );
        workers *= 2;
    }

    println!("\n# Figure 6e: merge amortization (eager / default / lazy)");
    for (label, effort) in [
        ("eager", MergeEffort::Eager),
        ("default", MergeEffort::Default),
        ("lazy", MergeEffort::Lazy),
    ] {
        let recorder = drive_arrangement(1, keys, 4_000, rounds, effort);
        recorder.print_ccdf(label);
        emit_latency(label, 1, 4_000, &recorder);
    }

    println!("\n# Figure 6f: install + complete a join against a pre-arranged collection");
    println!("probe size\tlatency (ms)");
    for (size, ms) in join_proportionality(keys, &[1, 256, 4_096, 16_384]) {
        println!("{size}\t{ms:.3}");
        bench_record(
            "micro_join_install",
            &[
                ("keys", num(keys)),
                ("size", num(size)),
                ("latency_us", num(format!("{:.0}", ms * 1e3))),
            ],
        );
    }
}
