//! Measures the cost of the byte boundary: per-command latency through the network
//! server (wire codec + framing + sequencer + all-worker execution + response
//! aggregation, full round trip over loopback TCP) against the same command stream
//! executed directly on an in-process `Manager`.
//!
//! ```console
//! $ cargo run --release -p kpg_bench --bin server_roundtrip -- \
//!       --updates 2000 --queries 20 --workers 2 [--durable] \
//!       [--clients 64] [--out BENCH_server_fanout.json]
//! ```
//!
//! With `--durable` the server writes its command log to a WAL in a temp directory
//! (group-committed, fsynced per epoch), so the wire numbers include the durability
//! tax an acknowledged command actually pays.
//!
//! Emits one `BENCH {"name":"server_roundtrip",...}` line: direct vs wire update
//! medians, wire p99, query medians, the wire/direct overhead ratio — the number
//! that tells us when the socket loop (not the dataflow) becomes the bottleneck —
//! and a `durable` 0/1 marker.
//!
//! With `--clients N` it additionally sweeps concurrent-client counts (powers of
//! two up to `N`) against one reactor, emitting a `BENCH
//! {"name":"server_fanout",...}` line per point: single-update RTT p50/p99 across
//! every client plus aggregate throughput — the curve that shows whether the
//! event-driven fabric holds per-command latency flat as fan-in grows. `--out
//! FILE` additionally persists the swept records as a JSON array (the repo-root
//! `BENCH_server_fanout.json` convention, so the perf trajectory survives in git).

use std::time::Instant;

use kpg_bench::{
    arg_flag, arg_string, arg_usize, bench_record, bench_report, num, LatencyRecorder,
};
use kpg_dataflow::{execute, Config, Worker};
use kpg_plan::{Command, Manager, Plan, ReduceKind, Row};
use kpg_server::{serve, Client, DurabilityConfig, ServerConfig};

fn edge(src: u64, dst: u64) -> Row {
    Row::from(vec![src.into(), dst.into()])
}

fn commands_setup() -> Vec<Command> {
    vec![
        Command::CreateInput {
            name: "edges".into(),
            key_arity: Some(1),
        },
        Command::Install {
            name: "degrees".into(),
            plan: Plan::source("edges").reduce(1, ReduceKind::Count),
            locals: vec![],
        },
    ]
}

fn update_command(index: u64) -> Command {
    Command::Update {
        name: "edges".into(),
        row: edge(index % 500, (index * 7) % 500),
        diff: 1,
    }
}

struct Measured {
    update_p50_ns: u128,
    update_p99_ns: u128,
    query_p50_ns: u128,
}

/// Runs the workload through a loopback server, timing each command's full round
/// trip. With `durable`, the server logs to a WAL in a fresh temp directory, so the
/// measured latencies include staging every command and fsyncing every epoch.
fn measure_wire(workers: usize, updates: usize, queries: usize, durable: bool) -> Measured {
    let wal_dir = durable.then(|| {
        let dir = std::env::temp_dir().join(format!("kpg-roundtrip-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    });
    let mut server = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            durability: wal_dir.as_ref().map(DurabilityConfig::new),
            ..ServerConfig::default()
        },
    )
    .expect("bind the bench server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for command in commands_setup() {
        client.send(&command).expect("setup send");
        client.receive().expect("setup ack");
    }
    let mut update_latency = LatencyRecorder::new();
    let mut query_latency = LatencyRecorder::new();
    for round in 0..queries.max(1) {
        for index in 0..(updates / queries.max(1)) as u64 {
            let command = update_command(round as u64 * 1_000_003 + index);
            let start = Instant::now();
            client.send(&command).expect("send update");
            client.receive().expect("update ack");
            update_latency.record(start.elapsed());
        }
        client.advance(round as u64 + 1).expect("advance");
        let start = Instant::now();
        let rows = client.query("degrees").expect("query");
        query_latency.record(start.elapsed());
        assert!(!rows.is_empty());
    }
    server.shutdown();
    if let Some(dir) = wal_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    Measured {
        update_p50_ns: update_latency.quantile(0.5).as_nanos(),
        update_p99_ns: update_latency.quantile(0.99).as_nanos(),
        query_p50_ns: query_latency.quantile(0.5).as_nanos(),
    }
}

/// One point of the fan-out curve: `clients` concurrent connections against one
/// server, each pipelining nothing (strict send/receive), splitting `updates`
/// round trips between them. Returns the merged RTT distribution and the
/// aggregate wall-clock throughput.
fn measure_fanout_point(
    server_addr: std::net::SocketAddr,
    clients: usize,
    updates: usize,
) -> (LatencyRecorder, f64, usize) {
    let per_client = (updates / clients).max(1);
    let start_line = kpg_sync::Arc::new(kpg_sync::Barrier::new(clients + 1));
    let handles: Vec<_> = (0..clients)
        .map(|who| {
            let start_line = kpg_sync::Arc::clone(&start_line);
            kpg_sync::thread::spawn(move || {
                let mut client = Client::connect(server_addr).expect("connect fanout client");
                start_line.wait();
                let mut samples = Vec::with_capacity(per_client);
                for index in 0..per_client as u64 {
                    let command = update_command(who as u64 * 1_000_003 + index);
                    let start = Instant::now();
                    client.send(&command).expect("send fanout update");
                    client.receive().expect("fanout ack");
                    samples.push(start.elapsed());
                }
                samples
            })
        })
        .collect();
    start_line.wait();
    let wall = Instant::now();
    let mut merged = LatencyRecorder::new();
    for handle in handles {
        for sample in handle.join().expect("fanout client") {
            merged.record(sample);
        }
    }
    let elapsed = wall.elapsed().as_secs_f64();
    let total = per_client * clients;
    (merged, total as f64 / elapsed.max(1e-9), total)
}

/// Sweeps client counts (powers of two up to `max_clients`, always including the
/// endpoint) against a single server, emitting one `server_fanout` record per
/// point and returning the rendered records for persistence.
fn measure_fanout(
    workers: usize,
    max_clients: usize,
    updates: usize,
    durable: bool,
) -> Vec<String> {
    let wal_dir = durable.then(|| {
        let dir = std::env::temp_dir().join(format!("kpg-fanout-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    });
    let mut server = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            durability: wal_dir.as_ref().map(DurabilityConfig::new),
            ..ServerConfig::default()
        },
    )
    .expect("bind the fanout server");
    let addr = server.local_addr();
    let mut control = Client::connect(addr).expect("connect control client");
    for command in commands_setup() {
        control.send(&command).expect("setup send");
        control.receive().expect("setup ack");
    }

    let mut points = vec![1usize];
    while *points.last().unwrap() * 2 <= max_clients {
        points.push(points.last().unwrap() * 2);
    }
    if *points.last().unwrap() != max_clients {
        points.push(max_clients);
    }

    let mut records = Vec::with_capacity(points.len());
    for clients in points {
        let (rtt, throughput, total) = measure_fanout_point(addr, clients, updates);
        let p50 = rtt.quantile(0.5).as_nanos();
        let p99 = rtt.quantile(0.99).as_nanos();
        println!(
            "fanout {clients:>5} clients: rtt p50 {p50} ns, p99 {p99} ns, {throughput:.0} updates/s"
        );
        let report = bench_report(
            "server_fanout",
            &[
                ("workers", num(workers)),
                ("clients", num(clients)),
                ("updates", num(total)),
                ("rtt_p50_ns", num(p50)),
                ("rtt_p99_ns", num(p99)),
                ("throughput_per_s", num(format!("{throughput:.1}"))),
                ("durable", num(u8::from(durable))),
            ],
        );
        println!("BENCH {}", report.render());
        records.push(report.render());
    }
    drop(control);
    server.shutdown();
    if let Some(dir) = wal_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    records
}

/// Runs the identical workload directly on one in-process `Manager` per worker —
/// no codec, no socket, no sequencer. (Same command stream; `Command::Update` shards
/// itself, so the multi-worker run executes the same log everywhere.)
fn measure_direct(workers: usize, updates: usize, queries: usize) -> Measured {
    let mut results = execute(Config::new(workers), move |worker: &mut Worker| {
        let mut manager = Manager::new();
        for command in commands_setup() {
            manager.execute(worker, command).expect("setup");
        }
        let mut update_latency = LatencyRecorder::new();
        let mut query_latency = LatencyRecorder::new();
        for round in 0..queries.max(1) {
            for index in 0..(updates / queries.max(1)) as u64 {
                let command = update_command(round as u64 * 1_000_003 + index);
                let start = Instant::now();
                manager.execute(worker, command).expect("update");
                update_latency.record(start.elapsed());
            }
            manager
                .execute(
                    worker,
                    Command::AdvanceTime {
                        epoch: round as u64 + 1,
                    },
                )
                .expect("advance");
            let start = Instant::now();
            manager.settle(worker);
            let rows = manager
                .execute(
                    worker,
                    Command::Query {
                        name: "degrees".into(),
                    },
                )
                .expect("query");
            query_latency.record(start.elapsed());
            drop(rows);
        }
        Measured {
            update_p50_ns: update_latency.quantile(0.5).as_nanos(),
            update_p99_ns: update_latency.quantile(0.99).as_nanos(),
            query_p50_ns: query_latency.quantile(0.5).as_nanos(),
        }
    });
    results.remove(0)
}

fn main() {
    let workers = arg_usize("--workers", 1);
    let updates = arg_usize("--updates", 2_000);
    let queries = arg_usize("--queries", 20);
    let durable = arg_flag("--durable");
    let clients = arg_usize("--clients", 0);
    let out = arg_string("--out", "");

    // Round the workload to whole rounds so the emitted record states exactly what
    // was measured (and a tiny --updates still updates at least once per round).
    let rounds = queries.max(1);
    let per_round = (updates / rounds).max(1);
    let updates = per_round * rounds;

    let wire = measure_wire(workers, updates, queries, durable);
    let direct = measure_direct(workers, updates, queries);
    let overhead = wire.update_p50_ns as f64 / (direct.update_p50_ns.max(1)) as f64;

    println!(
        "update p50: direct {} ns, wire {} ns ({overhead:.1}x); wire p99 {} ns; query p50: direct {} ns, wire {} ns",
        direct.update_p50_ns,
        wire.update_p50_ns,
        wire.update_p99_ns,
        direct.query_p50_ns,
        wire.query_p50_ns,
    );
    bench_record(
        "server_roundtrip",
        &[
            ("workers", num(workers)),
            ("updates", num(updates)),
            ("queries", num(queries)),
            ("direct_update_p50_ns", num(direct.update_p50_ns)),
            ("wire_update_p50_ns", num(wire.update_p50_ns)),
            ("wire_update_p99_ns", num(wire.update_p99_ns)),
            ("direct_query_p50_ns", num(direct.query_p50_ns)),
            ("wire_query_p50_ns", num(wire.query_p50_ns)),
            ("overhead_x", num(format!("{overhead:.3}"))),
            ("durable", num(u8::from(durable))),
        ],
    );

    if clients > 0 {
        let records = measure_fanout(workers, clients, updates, durable);
        if !out.is_empty() {
            let body = records.join(",\n  ");
            std::fs::write(&out, format!("[\n  {body}\n]\n")).expect("persist fanout records");
            println!("wrote {} fanout records to {out}", records.len());
        }
    }
}
