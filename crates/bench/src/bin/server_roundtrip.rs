//! Measures the cost of the byte boundary: per-command latency through the network
//! server (wire codec + framing + sequencer + all-worker execution + response
//! aggregation, full round trip over loopback TCP) against the same command stream
//! executed directly on an in-process `Manager`.
//!
//! ```console
//! $ cargo run --release -p kpg_bench --bin server_roundtrip -- \
//!       --updates 2000 --queries 20 --workers 2 [--durable]
//! ```
//!
//! With `--durable` the server writes its command log to a WAL in a temp directory
//! (group-committed, fsynced per epoch), so the wire numbers include the durability
//! tax an acknowledged command actually pays.
//!
//! Emits one `BENCH {"name":"server_roundtrip",...}` line: direct vs wire update
//! medians, wire p99, query medians, the wire/direct overhead ratio — the number
//! that tells us when the socket loop (not the dataflow) becomes the bottleneck —
//! and a `durable` 0/1 marker.

use std::time::Instant;

use kpg_bench::{arg_flag, arg_usize, bench_record, num, LatencyRecorder};
use kpg_dataflow::{execute, Config, Worker};
use kpg_plan::{Command, Manager, Plan, ReduceKind, Row};
use kpg_server::{serve, Client, DurabilityConfig, ServerConfig};

fn edge(src: u64, dst: u64) -> Row {
    Row::from(vec![src.into(), dst.into()])
}

fn commands_setup() -> Vec<Command> {
    vec![
        Command::CreateInput {
            name: "edges".into(),
            key_arity: Some(1),
        },
        Command::Install {
            name: "degrees".into(),
            plan: Plan::source("edges").reduce(1, ReduceKind::Count),
            locals: vec![],
        },
    ]
}

fn update_command(index: u64) -> Command {
    Command::Update {
        name: "edges".into(),
        row: edge(index % 500, (index * 7) % 500),
        diff: 1,
    }
}

struct Measured {
    update_p50_ns: u128,
    update_p99_ns: u128,
    query_p50_ns: u128,
}

/// Runs the workload through a loopback server, timing each command's full round
/// trip. With `durable`, the server logs to a WAL in a fresh temp directory, so the
/// measured latencies include staging every command and fsyncing every epoch.
fn measure_wire(workers: usize, updates: usize, queries: usize, durable: bool) -> Measured {
    let wal_dir = durable.then(|| {
        let dir = std::env::temp_dir().join(format!("kpg-roundtrip-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    });
    let mut server = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            durability: wal_dir.as_ref().map(DurabilityConfig::new),
            ..ServerConfig::default()
        },
    )
    .expect("bind the bench server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for command in commands_setup() {
        client.send(&command).expect("setup send");
        client.receive().expect("setup ack");
    }
    let mut update_latency = LatencyRecorder::new();
    let mut query_latency = LatencyRecorder::new();
    for round in 0..queries.max(1) {
        for index in 0..(updates / queries.max(1)) as u64 {
            let command = update_command(round as u64 * 1_000_003 + index);
            let start = Instant::now();
            client.send(&command).expect("send update");
            client.receive().expect("update ack");
            update_latency.record(start.elapsed());
        }
        client.advance(round as u64 + 1).expect("advance");
        let start = Instant::now();
        let rows = client.query("degrees").expect("query");
        query_latency.record(start.elapsed());
        assert!(!rows.is_empty());
    }
    server.shutdown();
    if let Some(dir) = wal_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    Measured {
        update_p50_ns: update_latency.quantile(0.5).as_nanos(),
        update_p99_ns: update_latency.quantile(0.99).as_nanos(),
        query_p50_ns: query_latency.quantile(0.5).as_nanos(),
    }
}

/// Runs the identical workload directly on one in-process `Manager` per worker —
/// no codec, no socket, no sequencer. (Same command stream; `Command::Update` shards
/// itself, so the multi-worker run executes the same log everywhere.)
fn measure_direct(workers: usize, updates: usize, queries: usize) -> Measured {
    let mut results = execute(Config::new(workers), move |worker: &mut Worker| {
        let mut manager = Manager::new();
        for command in commands_setup() {
            manager.execute(worker, command).expect("setup");
        }
        let mut update_latency = LatencyRecorder::new();
        let mut query_latency = LatencyRecorder::new();
        for round in 0..queries.max(1) {
            for index in 0..(updates / queries.max(1)) as u64 {
                let command = update_command(round as u64 * 1_000_003 + index);
                let start = Instant::now();
                manager.execute(worker, command).expect("update");
                update_latency.record(start.elapsed());
            }
            manager
                .execute(
                    worker,
                    Command::AdvanceTime {
                        epoch: round as u64 + 1,
                    },
                )
                .expect("advance");
            let start = Instant::now();
            manager.settle(worker);
            let rows = manager
                .execute(
                    worker,
                    Command::Query {
                        name: "degrees".into(),
                    },
                )
                .expect("query");
            query_latency.record(start.elapsed());
            drop(rows);
        }
        Measured {
            update_p50_ns: update_latency.quantile(0.5).as_nanos(),
            update_p99_ns: update_latency.quantile(0.99).as_nanos(),
            query_p50_ns: query_latency.quantile(0.5).as_nanos(),
        }
    });
    results.remove(0)
}

fn main() {
    let workers = arg_usize("--workers", 1);
    let updates = arg_usize("--updates", 2_000);
    let queries = arg_usize("--queries", 20);
    let durable = arg_flag("--durable");

    // Round the workload to whole rounds so the emitted record states exactly what
    // was measured (and a tiny --updates still updates at least once per round).
    let rounds = queries.max(1);
    let per_round = (updates / rounds).max(1);
    let updates = per_round * rounds;

    let wire = measure_wire(workers, updates, queries, durable);
    let direct = measure_direct(workers, updates, queries);
    let overhead = wire.update_p50_ns as f64 / (direct.update_p50_ns.max(1)) as f64;

    println!(
        "update p50: direct {} ns, wire {} ns ({overhead:.1}x); wire p99 {} ns; query p50: direct {} ns, wire {} ns",
        direct.update_p50_ns,
        wire.update_p50_ns,
        wire.update_p99_ns,
        direct.query_p50_ns,
        wire.query_p50_ns,
    );
    bench_record(
        "server_roundtrip",
        &[
            ("workers", num(workers)),
            ("updates", num(updates)),
            ("queries", num(queries)),
            ("direct_update_p50_ns", num(direct.update_p50_ns)),
            ("wire_update_p50_ns", num(wire.update_p50_ns)),
            ("wire_update_p99_ns", num(wire.update_p99_ns)),
            ("direct_query_p50_ns", num(direct.query_p50_ns)),
            ("wire_query_p50_ns", num(wire.query_p50_ns)),
            ("overhead_x", num(format!("{overhead:.3}"))),
            ("durable", num(u8::from(durable))),
        ],
    );
}
