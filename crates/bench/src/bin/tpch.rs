//! TPC-H-style experiments: Figure 4a/4b/4c and Tables 5 and 6 (E1–E5 in DESIGN.md).
//!
//! For every implemented query this harness reports:
//! * absolute streaming throughput for (workers=1, batch=1), (1, big) and (max, big) — Fig 4a;
//! * relative throughput as the physical batch size grows — Fig 4b;
//! * relative throughput as workers grow at a fixed batch size — Fig 4c;
//! * streaming update rates with logical batches — Table 5;
//! * single-core elapsed time for one-shot batch evaluation — Table 6.
//!
//! Run with `cargo run --release -p kpg-bench --bin tpch [--scale 0.5] [--max-workers 2]`.

use std::time::Instant;

use kpg_bench::{arg_f64, arg_usize};
use kpg_core::prelude::*;
use kpg_dataflow::Time;
use kpg_relational::data::{generate, Database};
use kpg_relational::queries::{build_query, relations, IMPLEMENTED};

/// Streams the lineitems of `db` through `query`, `batch` rows at a time, and returns the
/// achieved throughput in rows per second.
fn stream_query(query: u32, db: &Database, workers: usize, batch: usize) -> f64 {
    let db = db.clone_for_workers();
    let rows = db.lineitems.len();
    let start = Instant::now();
    execute(Config::new(workers), move |worker| {
        let (mut inputs, probe) = worker.dataflow(|builder| {
            let (inputs, rels) = relations(builder);
            let result = build_query(query, &rels);
            (inputs, result.probe())
        });
        // Reference data is loaded once, on worker 0.
        if worker.index() == 0 {
            for o in db.orders.iter() {
                inputs.orders.insert(o.clone());
            }
            for c in db.customers.iter() {
                inputs.customer.insert(c.clone());
            }
            for s in db.suppliers.iter() {
                inputs.supplier.insert(s.clone());
            }
            for p in db.parts.iter() {
                inputs.part.insert(p.clone());
            }
        }
        // Lineitems are streamed in physical batches, sharded across workers.
        let mut epoch = 0u64;
        for (index, chunk) in db.lineitems.chunks(batch.max(1)).enumerate() {
            for (offset, l) in chunk.iter().enumerate() {
                if (index * batch + offset) % worker.peers() == worker.index() {
                    inputs.lineitem.insert(l.clone());
                }
            }
            epoch += 1;
            inputs.advance_to(epoch);
            worker.step_while(|| probe.less_than(&Time::from_epoch(epoch)));
        }
    });
    rows as f64 / start.elapsed().as_secs_f64()
}

trait CloneForWorkers {
    fn clone_for_workers(&self) -> Database;
}
impl CloneForWorkers for Database {
    fn clone_for_workers(&self) -> Database {
        Database {
            lineitems: self.lineitems.clone(),
            orders: self.orders.clone(),
            customers: self.customers.clone(),
            suppliers: self.suppliers.clone(),
            parts: self.parts.clone(),
        }
    }
}

fn main() {
    let scale = arg_f64("--scale", 0.25);
    let max_workers = arg_usize("--max-workers", 2);
    let db = generate(scale, 1);
    let rows = db.lineitems.len();
    println!("# TPC-H-style workload: scale {scale}, {rows} lineitems, queries {IMPLEMENTED:?}");

    println!("\n## Figure 4a: absolute throughput (rows/s)");
    println!("query\tw=1,b=1\tw=1,b=big\tw={max_workers},b=big");
    let big = (rows / 8).max(1);
    for &query in IMPLEMENTED {
        let single = stream_query(query, &db, 1, 1);
        let batched = stream_query(query, &db, 1, big);
        let scaled = stream_query(query, &db, max_workers, big);
        println!("q{query}\t{single:.0}\t{batched:.0}\t{scaled:.0}");
    }

    println!("\n## Figure 4b: relative throughput vs physical batch size (worker = 1)");
    println!("query\tb=1\tb=10\tb=100\tb=1000");
    for &query in IMPLEMENTED {
        let base = stream_query(query, &db, 1, 1);
        let rel: Vec<String> = [1usize, 10, 100, 1000]
            .iter()
            .map(|&b| format!("{:.1}x", stream_query(query, &db, 1, b) / base))
            .collect();
        println!("q{query}\t{}", rel.join("\t"));
    }

    println!("\n## Figure 4c: relative throughput vs workers (batch = {big})");
    println!("query\tw=1\tw={max_workers}");
    for &query in IMPLEMENTED {
        let base = stream_query(query, &db, 1, big);
        let scaled = stream_query(query, &db, max_workers, big);
        println!("q{query}\t1.0x\t{:.1}x", scaled / base);
    }

    println!(
        "\n## Table 5: streaming rates with logical batches of {} rows",
        (rows / 10).max(1)
    );
    println!("query\tw=1 rows/s\tw={max_workers} rows/s");
    let logical = (rows / 10).max(1);
    for &query in IMPLEMENTED {
        let one = stream_query(query, &db, 1, logical);
        let many = stream_query(query, &db, max_workers, logical);
        println!("q{query}\t{one:.0}\t{many:.0}");
    }

    println!("\n## Table 6: single-core elapsed time, one-shot batch evaluation");
    println!("query\tdifferential (ms)\tre-evaluation baseline (ms)");
    for &query in IMPLEMENTED {
        let start = Instant::now();
        let _ = stream_query(query, &db, 1, rows);
        let differential = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let _ = kpg_relational::baseline::evaluate(query, &db);
        let baseline = start.elapsed().as_secs_f64() * 1e3;
        println!("q{query}\t{differential:.2}\t{baseline:.2}");
    }
}
