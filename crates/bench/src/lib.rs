//! Shared helpers for the benchmark harness binaries.
//!
//! Every binary in this crate regenerates one of the paper's tables or figures (see the
//! per-experiment index in DESIGN.md). The helpers here keep the binaries small: latency
//! recording with complementary-CDF reporting (the paper's preferred presentation for the
//! microbenchmarks), simple wall-clock timing, and command-line scale handling.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Records latencies and reports them as a complementary CDF, the format of Figures 5
/// and 6 ("fraction of times with latency greater than").
#[derive(Default)]
pub struct LatencyRecorder {
    samples: Vec<Duration>,
}

impl LatencyRecorder {
    /// A new, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, sample: Duration) {
        self.samples.push(sample);
    }

    /// Times `action` and records its duration, returning the action's result.
    pub fn time<T>(&mut self, action: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let result = action();
        self.record(start.elapsed());
        result
    }

    /// The number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True iff no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The median latency.
    pub fn median(&self) -> Duration {
        self.quantile(0.5)
    }

    /// The maximum latency.
    pub fn max(&self) -> Duration {
        self.samples.iter().copied().max().unwrap_or_default()
    }

    /// The latency at the given quantile (0.0 ..= 1.0).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.samples.is_empty() {
            return Duration::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let index = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[index]
    }

    /// Prints a complementary CDF as `label, nanoseconds, fraction-greater-than` rows at
    /// a fixed set of quantiles.
    pub fn print_ccdf(&self, label: &str) {
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            println!(
                "{label}\tccdf\tp{:05.1}\t{} ns",
                q * 100.0,
                self.quantile(q).as_nanos()
            );
        }
    }

    /// Prints a one-line summary with median and maximum.
    pub fn print_summary(&self, label: &str) {
        println!(
            "{label}\tmedian {:.3} ms\tmax {:.3} ms\tsamples {}",
            self.median().as_secs_f64() * 1e3,
            self.max().as_secs_f64() * 1e3,
            self.len()
        );
    }
}

/// Accumulates key/value pairs and prints them as the repo's one-line machine-readable
/// bench shape: `BENCH {"name":...,...}` — a single JSON object per line, grep-able by
/// CI and analysis scripts without a JSON dependency in-tree.
pub struct BenchReport {
    fields: Vec<(String, String)>,
}

impl BenchReport {
    /// Starts a report for the bench called `name`.
    pub fn new(name: &str) -> Self {
        BenchReport {
            fields: vec![("name".to_string(), json_string(name))],
        }
    }

    /// Adds a numeric field (rendered bare, so the value must be a number).
    pub fn field(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a string field (rendered quoted).
    pub fn text(mut self, key: &str, value: &str) -> Self {
        self.fields.push((key.to_string(), json_string(value)));
        self
    }

    /// Renders the JSON object (everything after the `BENCH ` prefix).
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(key, value)| format!("{}:{value}", json_string(key)))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// Prints the `BENCH {...}` line.
    pub fn emit(self) {
        println!("BENCH {}", self.render());
    }
}

/// One field value of a [`bench_record`] line: rendered bare for numbers, quoted for
/// text.
pub enum BenchField {
    /// A numeric field (rendered bare; the value must be valid JSON as-is).
    Num(String),
    /// A string field (rendered as a JSON string).
    Text(String),
}

/// A numeric [`BenchField`].
pub fn num(value: impl std::fmt::Display) -> BenchField {
    BenchField::Num(value.to_string())
}

/// A string [`BenchField`].
pub fn text(value: impl Into<String>) -> BenchField {
    BenchField::Text(value.into())
}

/// Builds a [`BenchReport`] from a flat field list. Field order is preserved.
pub fn bench_report(name: &str, fields: &[(&str, BenchField)]) -> BenchReport {
    let mut report = BenchReport::new(name);
    for (key, value) in fields {
        report = match value {
            BenchField::Num(value) => report.field(key, value),
            BenchField::Text(value) => report.text(key, value),
        };
    }
    report
}

/// Emits one `BENCH {...}` line in a single call: the shared shorthand for binaries
/// whose emission is a flat name-plus-fields record (which is all of them).
pub fn bench_record(name: &str, fields: &[(&str, BenchField)]) {
    bench_report(name, fields).emit();
}

/// Escapes a string as a JSON string literal (RFC 8259: quote, backslash, and control
/// characters; everything else passes through verbatim).
fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(action: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let result = action();
    (result, start.elapsed())
}

/// Reads a `--scale`-style floating point argument from the command line, with a default.
pub fn arg_f64(name: &str, default: f64) -> f64 {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == name {
            if let Some(value) = args.next() {
                return value.parse().unwrap_or(default);
            }
        }
    }
    default
}

/// Reads a `--workers`-style integer argument from the command line, with a default.
pub fn arg_usize(name: &str, default: usize) -> usize {
    arg_f64(name, default as f64) as usize
}

/// Reads a string argument (e.g. `--mode homogeneous`), with a default.
pub fn arg_string(name: &str, default: &str) -> String {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == name {
            if let Some(value) = args.next() {
                return value;
            }
        }
    }
    default.to_string()
}

/// True iff the bare flag `name` (e.g. `--plan`) appears on the command line.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|arg| arg == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_quantiles_are_ordered() {
        let mut recorder = LatencyRecorder::new();
        for ms in [5u64, 1, 3, 2, 4] {
            recorder.record(Duration::from_millis(ms));
        }
        assert_eq!(recorder.len(), 5);
        assert_eq!(recorder.median(), Duration::from_millis(3));
        assert_eq!(recorder.max(), Duration::from_millis(5));
        assert!(recorder.quantile(0.0) <= recorder.quantile(1.0));
    }

    #[test]
    fn timed_reports_elapsed() {
        let (value, elapsed) = timed(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn bench_report_shape_is_one_json_object() {
        let report = BenchReport::new("churn")
            .field("queries", 10)
            .text("mode", "mixed");
        assert_eq!(
            report.render(),
            "{\"name\":\"churn\",\"queries\":10,\"mode\":\"mixed\"}"
        );
    }

    #[test]
    fn bench_record_builds_the_same_shape() {
        let report = bench_report("churn", &[("queries", num(10)), ("mode", text("mixed"))]);
        assert_eq!(
            report.render(),
            "{\"name\":\"churn\",\"queries\":10,\"mode\":\"mixed\"}"
        );
    }

    #[test]
    fn bench_report_escapes_strings_as_json() {
        let report = BenchReport::new("churn").text("note", "a\"b\\c\nd\u{1}e");
        assert_eq!(
            report.render(),
            "{\"name\":\"churn\",\"note\":\"a\\\"b\\\\c\\nd\\u0001e\"}"
        );
    }
}
