//! The arrange operator, shared traces, and trace handles.
//!
//! Arrangement is the paper's central mechanism (§4): the `arrange` operator exchanges
//! updates to the worker that owns their key, batches them as the input frontier
//! advances, and maintains the resulting immutable batches in a compact multiversioned
//! index (a [`Spine`]). Both products are shared:
//!
//! * the *stream of batches* flows to operator shells (`join`, `reduce`, ...) downstream,
//! * the *trace* is read — through reference-counted [`TraceAgent`] handles — by any
//!   number of operators in the same or other dataflows on the same worker.
//!
//! Dropping every handle releases the trace even while the batch stream stays live (the
//! arrange operator holds only a weak reference, §4.2 "Shared references"), and each
//! handle's read frontier contributes to the compaction frontier that lets the trace
//! consolidate history no reader can distinguish (§4.3).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::rc::{Rc, Weak};

use kpg_dataflow::operator::{downcast_payload, BundleBox, Operator, OutputContext};
use kpg_dataflow::{DataflowBuilder, NodeId, ProbeHandle, Time};
use kpg_timestamp::{Antichain, AntichainRef};
use kpg_trace::cursor::CursorList;
use kpg_trace::stored::{LayerCursor, StoreData};
use kpg_trace::{
    Batch, Builder, Cursor, Data, MergeEffort, OrdKeyBatch, OrdValBatch, Semigroup, Spine,
};

use crate::collection::Collection;
use crate::operators::{route_hash, Exchange, UpdateVec};
use crate::Diff;

/// The batch type used by `(key, value)` arrangements.
pub type ValBatch<K, V, R = Diff> = OrdValBatch<K, V, Time, R>;
/// The batch type used by key-only arrangements (`arrange_by_self`, `distinct`, `count`).
pub type KeyBatch<K, R = Diff> = OrdKeyBatch<K, Time, R>;

/// The shared interior of an arrangement: the spine plus its readers.
pub struct TraceBox<B: Batch<Time = Time>> {
    spine: Spine<B>,
    reader_sinces: Vec<Option<Antichain<Time>>>,
    free_slots: Vec<usize>,
    queues: Vec<Weak<RefCell<VecDeque<B>>>>,
}

impl<B: Batch<Time = Time>> TraceBox<B> {
    fn new(effort: MergeEffort) -> Self {
        TraceBox {
            spine: Spine::new(effort),
            reader_sinces: Vec::new(),
            free_slots: Vec::new(),
            queues: Vec::new(),
        }
    }

    /// Inserts a freshly minted batch: into the spine, and into every importer's queue.
    fn insert(&mut self, batch: B) {
        self.queues.retain(|queue| queue.upgrade().is_some());
        for queue in self.queues.iter() {
            if let Some(queue) = queue.upgrade() {
                queue.borrow_mut().push_back(batch.clone());
            }
        }
        self.spine.insert(batch);
    }

    fn register_reader(&mut self, since: Antichain<Time>) -> usize {
        // Reuse the slot of a departed reader if one is free, so that long-lived workers
        // cycling through many short-lived handles don't grow the table unboundedly.
        match self.free_slots.pop() {
            Some(slot) => {
                debug_assert!(self.reader_sinces[slot].is_none());
                self.reader_sinces[slot] = Some(since);
                slot
            }
            None => {
                self.reader_sinces.push(Some(since));
                self.reader_sinces.len() - 1
            }
        }
    }

    /// Clears a departed reader's slot, frees it for reuse, and lets the spine compact
    /// past the frontier the reader was pinning.
    fn deregister_reader(&mut self, slot: usize) {
        self.reader_sinces[slot] = None;
        self.free_slots.push(slot);
        self.recompute_compaction();
    }

    /// The number of currently registered readers.
    fn reader_count(&self) -> usize {
        self.reader_sinces.iter().flatten().count()
    }

    fn recompute_compaction(&mut self) {
        let mut lower_bound = Antichain::new();
        let mut any = false;
        for since in self.reader_sinces.iter().flatten() {
            any = true;
            for time in since.elements() {
                lower_bound.insert(*time);
            }
        }
        if any {
            // The meet of all reader frontiers: the earliest time any reader still needs.
            self.spine.set_logical_compaction(lower_bound.borrow());
        }
    }
}

/// A read handle onto a shared trace (paper §4.3).
///
/// Each handle carries its own read frontier (`since`): the trace only guarantees correct
/// accumulations at times in advance of it. Advancing the frontier — or dropping the
/// handle — gives the trace permission to consolidate history. Handles are cheap to
/// clone; clones start with the same read frontier.
pub struct TraceAgent<B: Batch<Time = Time>> {
    boxed: Rc<RefCell<TraceBox<B>>>,
    slot: usize,
}

impl<B: Batch<Time = Time>> TraceAgent<B> {
    /// Creates a fresh, empty trace with the given merge effort.
    pub fn new(effort: MergeEffort) -> Self {
        let mut boxed = TraceBox::new(effort);
        let slot = boxed.register_reader(Antichain::from_elem(Time::minimum()));
        TraceAgent {
            boxed: Rc::new(RefCell::new(boxed)),
            slot,
        }
    }

    fn downgrade(&self) -> Weak<RefCell<TraceBox<B>>> {
        Rc::downgrade(&self.boxed)
    }

    /// Advances this handle's read frontier, permitting compaction up to the meet of all
    /// reader frontiers.
    pub fn set_logical_compaction(&mut self, frontier: AntichainRef<'_, Time>) {
        let mut boxed = self.boxed.borrow_mut();
        boxed.reader_sinces[self.slot] = Some(frontier.to_owned());
        boxed.recompute_compaction();
    }

    /// A cursor over the union of all batches currently in the trace, whether resident
    /// in memory or spilled to sorted-run files.
    pub fn cursor(&self) -> CursorList<LayerCursor<B>> {
        self.boxed.borrow().spine.cursor()
    }

    /// Spills the trace's oldest settled in-memory layer to a sorted-run file at
    /// `path`, freeing its memory while keeping it readable through [`TraceAgent::cursor`].
    /// Returns `Ok(false)` when no layer is currently eligible (see
    /// [`Spine::spill_oldest`]).
    pub fn spill_oldest(&self, path: &std::path::Path) -> std::io::Result<bool>
    where
        B::Key: StoreData,
        B::Val: StoreData,
        B::Time: StoreData,
        B::Diff: StoreData,
    {
        self.boxed.borrow_mut().spine.spill_oldest(path)
    }

    /// The number of trace layers currently spilled to sorted-run files.
    pub fn stored_layer_count(&self) -> usize {
        self.boxed.borrow().spine.stored_layer_count()
    }

    /// The number of updates held by in-memory layers only.
    pub fn in_memory_len(&self) -> usize {
        self.boxed.borrow().spine.in_memory_len()
    }

    /// Applies `logic` to every batch currently in the trace, oldest first.
    pub fn map_batches(&self, logic: impl FnMut(&B)) {
        self.boxed.borrow().spine.map_batches(logic);
    }

    /// The upper frontier of updates the trace has absorbed.
    pub fn upper(&self) -> Antichain<Time> {
        self.boxed.borrow().spine.upper().to_owned()
    }

    /// The compaction frontier of the trace.
    pub fn since(&self) -> Antichain<Time> {
        self.boxed.borrow().spine.since().to_owned()
    }

    /// The number of updates currently held by the trace.
    pub fn len(&self) -> usize {
        self.boxed.borrow().spine.len()
    }

    /// True iff the trace currently holds no updates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The number of physical batches currently held by the trace.
    pub fn batch_count(&self) -> usize {
        self.boxed.borrow().spine.batch_count()
    }

    /// The number of live read handles (including this one) registered on the trace.
    pub fn reader_count(&self) -> usize {
        self.boxed.borrow().reader_count()
    }

    /// The capacity of the reader table, counting free slots awaiting reuse.
    ///
    /// Exposed so tests can check that reader churn does not grow the table unboundedly.
    pub fn reader_slot_capacity(&self) -> usize {
        self.boxed.borrow().reader_sinces.len()
    }

    /// Inserts a batch into the trace directly.
    ///
    /// This is how operators that maintain their own output arrangement (notably
    /// `reduce`) publish freshly minted output batches so that readers and importer
    /// queues observe them.
    pub fn insert_batch(&self, batch: B) {
        self.boxed.borrow_mut().insert(batch);
    }

    /// Imports this trace into another dataflow on the same worker (paper §4.3).
    ///
    /// The imported arrangement immediately replays the trace's consolidated history as
    /// batches and then relays every newly minted batch, so the new dataflow is
    /// indistinguishable from one that had been attached from the start — installing a
    /// new computation against existing data costs only the work of that computation.
    pub fn import(&self, builder: &mut DataflowBuilder) -> Arranged<B> {
        let queue = Rc::new(RefCell::new(VecDeque::new()));
        let mut initial = Vec::new();
        {
            let mut boxed = self.boxed.borrow_mut();
            boxed.spine.map_batches(|batch| initial.push(batch.clone()));
            boxed.queues.push(Rc::downgrade(&queue));
        }
        let trace = self.clone();
        let emitted_upper = Antichain::from_elem(Time::minimum());
        let operator = ImportOperator {
            queue,
            trace: trace.clone(),
            initial: Some(initial),
            emitted_upper,
        };
        let node = builder.add_operator(Box::new(operator), 0);
        Arranged {
            builder: builder.clone(),
            node,
            depth: 0,
            trace,
        }
    }
}

impl<B: Batch<Time = Time>> std::fmt::Debug for TraceAgent<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceAgent")
            .field("len", &self.len())
            .field("batches", &self.batch_count())
            .field("since", &self.since())
            .field("upper", &self.upper())
            .field("readers", &self.reader_count())
            .finish()
    }
}

impl<B: Batch<Time = Time>> Clone for TraceAgent<B> {
    fn clone(&self) -> Self {
        let slot = {
            let mut boxed = self.boxed.borrow_mut();
            let since = boxed.reader_sinces[self.slot]
                .clone()
                .unwrap_or_else(|| Antichain::from_elem(Time::minimum()));
            boxed.register_reader(since)
        };
        TraceAgent {
            boxed: Rc::clone(&self.boxed),
            slot,
        }
    }
}

impl<B: Batch<Time = Time>> Drop for TraceAgent<B> {
    fn drop(&mut self) {
        self.boxed.borrow_mut().deregister_reader(self.slot);
    }
}

/// An arranged collection: a stream of shared indexed batches plus a shared trace.
pub struct Arranged<B: Batch<Time = Time>> {
    pub(crate) builder: DataflowBuilder,
    pub(crate) node: NodeId,
    pub(crate) depth: usize,
    /// The shared trace handle; clone it to give other operators or dataflows access.
    pub trace: TraceAgent<B>,
}

impl<B: Batch<Time = Time>> Clone for Arranged<B> {
    fn clone(&self) -> Self {
        Arranged {
            builder: self.builder.clone(),
            node: self.node,
            depth: self.depth,
            trace: self.trace.clone(),
        }
    }
}

impl<B: Batch<Time = Time>> Arranged<B> {
    /// The dataflow node carrying this arrangement's batch stream.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Brings the arrangement into an iteration scope.
    ///
    /// With flat timestamps the batches are reused as-is — indices and batches remain
    /// shared (paper §5.4); only the scope bookkeeping changes.
    pub fn enter(&self) -> Arranged<B> {
        let mut entered = self.clone();
        entered.depth += 1;
        entered
    }

    /// Attaches a probe to the arrangement's batch stream.
    pub fn probe(&self) -> ProbeHandle {
        let mut builder = self.builder.clone();
        ProbeHandle::new(&mut builder, self.node)
    }

    /// Flattens the arrangement back into a collection of `(key, val)`-derived records.
    pub fn as_collection<D2: Data>(
        &self,
        logic: impl Fn(&B::Key, &B::Val) -> D2 + 'static,
    ) -> Collection<D2, B::Diff> {
        let mut builder = self.builder.clone();
        let operator = FlattenBatches::<B, D2, _> {
            logic,
            pending: Vec::new(),
            _marker: PhantomData,
        };
        let node = builder.add_operator(Box::new(operator), 1);
        builder.connect(self.node, node, 0);
        Collection::from_node(builder, node, self.depth)
    }
}

/// The arrange operator: batches and indexes updates as the input frontier advances.
#[allow(clippy::type_complexity)]
struct ArrangeOperator<D, B, S>
where
    B: Batch<Time = Time>,
    S: FnMut(D) -> (B::Key, B::Val),
{
    name: &'static str,
    split: S,
    trace: Weak<RefCell<TraceBox<B>>>,
    buffer: Vec<(B::Key, B::Val, Time, B::Diff)>,
    capability: Antichain<Time>,
    upper: Antichain<Time>,
    input_frontier: Antichain<Time>,
    _marker: PhantomData<D>,
}

impl<D, B, S> Operator for ArrangeOperator<D, B, S>
where
    D: Data,
    B: Batch<Time = Time> + 'static,
    S: FnMut(D) -> (B::Key, B::Val) + 'static,
{
    fn name(&self) -> &str {
        self.name
    }

    fn recv(&mut self, _port: usize, payload: BundleBox) {
        let updates = downcast_payload::<UpdateVec<D, B::Diff>>(payload, self.name);
        for (data, time, diff) in updates {
            let (key, val) = (self.split)(data);
            self.capability.insert(time);
            self.buffer.push((key, val, time, diff));
        }
    }

    fn work(&mut self, output: &mut OutputContext<'_>) -> bool {
        // Mint a batch whenever the input frontier has moved past our last batch's upper.
        if self.input_frontier.same_as(&self.upper) {
            // Still, contribute idle effort to in-progress merges (amortized maintenance).
            if let Some(trace) = self.trace.upgrade() {
                trace.borrow_mut().spine.exert(64);
            }
            return false;
        }
        let lower = self.upper.clone();
        let upper = self.input_frontier.clone();
        let since = self
            .trace
            .upgrade()
            .map(|t| t.borrow().spine.since().to_owned())
            .unwrap_or_else(|| Antichain::from_elem(Time::minimum()));

        // Extract the updates that are now complete: times not in advance of the new
        // frontier (and, by induction, in advance of the previous one).
        let mut ready = Vec::new();
        let mut keep = Vec::new();
        for update in self.buffer.drain(..) {
            if upper.less_equal(&update.2) {
                keep.push(update);
            } else {
                ready.push(update);
            }
        }
        self.buffer = keep;

        let mut builder = <B::Builder as Builder>::with_capacity(ready.len());
        for (key, val, time, diff) in ready {
            builder.push(key, val, time, diff);
        }
        let batch = builder.done(lower, upper.clone(), since);

        if let Some(trace) = self.trace.upgrade() {
            trace.borrow_mut().insert(batch.clone());
        }
        output.send(Box::new(batch));
        self.upper = upper;

        // Rebuild the capability antichain from what remains buffered.
        self.capability = Antichain::from_iter(self.buffer.iter().map(|(_, _, t, _)| *t));
        true
    }

    fn set_frontier(&mut self, _port: usize, frontier: &Antichain<Time>) {
        self.input_frontier = frontier.clone();
    }

    fn capabilities(&self, into: &mut Antichain<Time>) {
        for time in self.capability.elements() {
            into.insert(*time);
        }
    }
}

/// Replays a shared trace into another dataflow: history first, then live batches.
struct ImportOperator<B: Batch<Time = Time>> {
    queue: Rc<RefCell<VecDeque<B>>>,
    trace: TraceAgent<B>,
    initial: Option<Vec<B>>,
    emitted_upper: Antichain<Time>,
}

impl<B: Batch<Time = Time> + 'static> Operator for ImportOperator<B> {
    fn name(&self) -> &str {
        "Import"
    }
    fn recv(&mut self, _port: usize, _payload: BundleBox) {
        unreachable!("import operators have no input ports");
    }
    fn work(&mut self, output: &mut OutputContext<'_>) -> bool {
        let mut did = false;
        if let Some(initial) = self.initial.take() {
            for batch in initial {
                self.emitted_upper = batch.description().upper().clone();
                output.send(Box::new(batch));
                did = true;
            }
        }
        loop {
            let batch = self.queue.borrow_mut().pop_front();
            match batch {
                Some(batch) => {
                    self.emitted_upper = batch.description().upper().clone();
                    output.send(Box::new(batch));
                    did = true;
                }
                None => break,
            }
        }
        if did {
            // Everything before the emitted upper has been forwarded downstream as
            // shared batches; this handle no longer needs to distinguish those times,
            // so release them for compaction rather than pinning the trace's history
            // for as long as the importing dataflow lives.
            self.trace
                .set_logical_compaction(self.emitted_upper.borrow());
        }
        did
    }
    fn set_frontier(&mut self, _port: usize, _frontier: &Antichain<Time>) {}
    fn capabilities(&self, into: &mut Antichain<Time>) {
        for time in self.emitted_upper.elements() {
            into.insert(*time);
        }
    }
}

/// Flattens batch payloads back into update buffers.
struct FlattenBatches<B: Batch<Time = Time>, D2, L>
where
    L: Fn(&B::Key, &B::Val) -> D2,
{
    logic: L,
    pending: Vec<B>,
    _marker: PhantomData<D2>,
}

impl<B, D2, L> Operator for FlattenBatches<B, D2, L>
where
    B: Batch<Time = Time> + 'static,
    D2: Data,
    L: Fn(&B::Key, &B::Val) -> D2 + 'static,
{
    fn name(&self) -> &str {
        "AsCollection"
    }
    fn recv(&mut self, _port: usize, payload: BundleBox) {
        self.pending
            .push(downcast_payload::<B>(payload, "AsCollection"));
    }
    fn work(&mut self, output: &mut OutputContext<'_>) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        for batch in self.pending.drain(..) {
            let mut updates: UpdateVec<D2, B::Diff> = Vec::with_capacity(batch.len());
            let mut cursor = batch.cursor();
            while cursor.key_valid() {
                while cursor.val_valid() {
                    let data = (self.logic)(cursor.key(), cursor.val());
                    cursor
                        .map_times(|time, diff| updates.push((data.clone(), *time, diff.clone())));
                    cursor.step_val();
                }
                cursor.step_key();
            }
            if !updates.is_empty() {
                output.send(Box::new(updates));
            }
        }
        true
    }
    fn set_frontier(&mut self, _port: usize, _frontier: &Antichain<Time>) {}
    fn capabilities(&self, into: &mut Antichain<Time>) {
        for batch in self.pending.iter() {
            for time in batch.description().lower().elements() {
                into.insert(*time);
            }
        }
    }
}

impl<K: Data, V: Data, R: Semigroup> Collection<(K, V), R> {
    /// Arranges the collection by key with the default merge effort.
    pub fn arrange_by_key(&self) -> Arranged<ValBatch<K, V, R>> {
        self.arrange_by_key_named("Arrange", MergeEffort::Default)
    }

    /// Arranges the collection by key, controlling the trace's merge amortization.
    pub fn arrange_by_key_named(
        &self,
        name: &'static str,
        effort: MergeEffort,
    ) -> Arranged<ValBatch<K, V, R>> {
        self.arrange_core(name, effort, |d: (K, V)| d, |d| route_hash(&d.0))
    }
}

impl<K: Data, R: Semigroup> Collection<K, R> {
    /// Arranges the collection by its records, treating each as a key with unit value.
    pub fn arrange_by_self(&self) -> Arranged<KeyBatch<K, R>> {
        self.arrange_by_self_named("ArrangeBySelf", MergeEffort::Default)
    }

    /// Arranges the collection by its records, controlling merge amortization.
    pub fn arrange_by_self_named(
        &self,
        name: &'static str,
        effort: MergeEffort,
    ) -> Arranged<KeyBatch<K, R>> {
        self.arrange_core(name, effort, |d: K| (d, ()), |d| route_hash(d))
    }

    /// Consolidates the collection: co-locates equal records and coalesces their diffs.
    pub fn consolidate(&self) -> Collection<K, R> {
        self.arrange_by_self().as_collection(|key, _| key.clone())
    }
}

impl<D: Data, R: Semigroup> Collection<D, R> {
    /// The general arrangement constructor: exchange by `route`, split records into
    /// `(key, val)` with `split`, and maintain the resulting trace.
    pub fn arrange_core<B>(
        &self,
        name: &'static str,
        effort: MergeEffort,
        split: impl FnMut(D) -> (B::Key, B::Val) + 'static,
        route: impl FnMut(&D) -> u64 + 'static,
    ) -> Arranged<B>
    where
        B: Batch<Time = Time, Diff = R> + 'static,
    {
        let mut builder = self.builder.clone();
        // Exchange: move each record to the worker that owns its key.
        let exchange = builder.add_operator(Box::new(Exchange::<D, R, _>::new(route)), 1);
        builder.connect(self.node, exchange, 0);
        // Arrange: batch and index the records, sharing the trace.
        let agent = TraceAgent::<B>::new(effort);
        let operator = ArrangeOperator::<D, B, _> {
            name,
            split,
            trace: agent.downgrade(),
            buffer: Vec::new(),
            capability: Antichain::new(),
            upper: Antichain::from_elem(Time::minimum()),
            input_frontier: Antichain::from_elem(Time::minimum()),
            _marker: PhantomData,
        };
        let arrange = builder.add_operator(Box::new(operator), 1);
        builder.connect(exchange, arrange, 0);
        Arranged {
            builder,
            node: arrange,
            depth: self.depth,
            trace: agent,
        }
    }
}
