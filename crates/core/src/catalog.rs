//! The arrangement catalog and the query-session lifecycle (paper §4.3, §6.2).
//!
//! The paper's headline capability is *interactive* sharing: a system that keeps serving
//! standing queries while new queries are installed mid-stream against already-maintained
//! indexes, and while old queries are retired without leaking the resources they pinned.
//! This module is that capability's public API:
//!
//! * [`Catalog`] — a per-worker registry of named, type-erased arrangements. Producers
//!   [`publish`](Catalog::publish) an arrangement's trace under a name; consumers
//!   [`lookup`](Catalog::lookup) it by name (recovering the concrete batch type) and
//!   [`import`](Catalog::import) it into their own dataflow. The erasure layer
//!   ([`AnyTrace`]) lets one catalog hold `OrdKeyBatch` and `OrdValBatch` traces of any
//!   key/value type side by side, while lookups remain fully type-checked.
//! * [`QueryLifecycle`] — the install/uninstall extension on [`Worker`]:
//!   [`install_query`](QueryLifecycle::install_query) builds a named dataflow whose
//!   closure receives the catalog (so it can look up shared arrangements and publish new
//!   ones), and [`uninstall_query`](QueryLifecycle::uninstall_query) retires the
//!   dataflow from the scheduler, drops every trace handle its operators held, and
//!   unpublishes what it published — so the shared spines can compact past the departed
//!   reader's frontier. A reader that is never retired pins trace history exactly the way
//!   a pinned snapshot bloats an LSM-tree; uninstall is the API that prevents it.
//!
//! ```no_run
//! use kpg_core::prelude::*;
//!
//! execute(Config::new(1), |worker| {
//!     let catalog = Catalog::new();
//!     // Publish the graph once...
//!     let (mut edges, probe) = worker.install("graph", |builder| {
//!         let (input, edges) = new_collection::<(u32, u32), isize>(builder);
//!         let arranged = edges.arrange_by_key();
//!         catalog.publish_if_absent("edges", &arranged).unwrap();
//!         (input, arranged.probe())
//!     });
//!     // ...then install queries against it by name, and retire them when done.
//!     let degrees = worker
//!         .install_query("degrees", &catalog, |builder, catalog| {
//!             let edges = catalog
//!                 .import::<ValBatch<u32, u32>>("edges", builder)
//!                 .unwrap();
//!             edges.as_collection(|k, _| *k).probe()
//!         })
//!         .unwrap();
//!     let _ = (&mut edges, probe, degrees);
//!     worker.uninstall_query("degrees", &catalog);
//! });
//! ```

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use kpg_dataflow::{DataflowBuilder, Time, Worker};
use kpg_timestamp::{Antichain, AntichainRef};
use kpg_trace::Batch;

use crate::arrange::{Arranged, TraceAgent};

/// A type-erased, named view of a shared trace: the dynamic face of a
/// [`TraceAgent`] that lets one catalog hold arrangements of heterogeneous key, value,
/// and batch types.
///
/// The erased surface carries exactly what name-based administration needs — frontier
/// inspection, read-frontier advancement, and size accounting — while
/// [`Catalog::lookup`] recovers the concrete `TraceAgent<B>` for actual reading.
pub trait AnyTrace {
    /// The handle as `Any`, for checked downcasts to a concrete `TraceAgent<B>`.
    fn as_any(&self) -> &dyn Any;
    /// The concrete type's name, for diagnostics and mismatch errors.
    fn trace_type(&self) -> &'static str;
    /// The trace's compaction frontier.
    fn since(&self) -> Antichain<Time>;
    /// The upper frontier of updates the trace has absorbed.
    fn upper(&self) -> Antichain<Time>;
    /// The number of updates currently held.
    fn len(&self) -> usize;
    /// True iff the trace currently holds no updates.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The number of live read handles on the trace.
    fn reader_count(&self) -> usize;
    /// The reader table's slot high-water mark (free-listed slots included): the churn
    /// metric that must stay bounded as short-lived readers come and go.
    fn reader_slots(&self) -> usize;
    /// Advances this handle's read frontier, permitting compaction.
    fn advance_since(&mut self, frontier: AntichainRef<'_, Time>);
}

impl<B: Batch<Time = Time> + 'static> AnyTrace for TraceAgent<B> {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn trace_type(&self) -> &'static str {
        std::any::type_name::<TraceAgent<B>>()
    }
    fn since(&self) -> Antichain<Time> {
        TraceAgent::since(self)
    }
    fn upper(&self) -> Antichain<Time> {
        TraceAgent::upper(self)
    }
    fn len(&self) -> usize {
        TraceAgent::len(self)
    }
    fn reader_count(&self) -> usize {
        TraceAgent::reader_count(self)
    }
    fn reader_slots(&self) -> usize {
        TraceAgent::reader_slot_capacity(self)
    }
    fn advance_since(&mut self, frontier: AntichainRef<'_, Time>) {
        self.set_logical_compaction(frontier);
    }
}

/// Why a catalog operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CatalogError {
    /// A `publish_if_absent` used a name that is already bound.
    NameTaken(String),
    /// A lookup named an arrangement that is not in the catalog.
    NotFound(String),
    /// A lookup asked for a different trace type than the name is bound to.
    TypeMismatch {
        /// The name looked up.
        name: String,
        /// The type the lookup requested.
        requested: &'static str,
        /// The type the catalog actually holds under the name.
        held: &'static str,
    },
    /// An install reused the name of a live query.
    QueryExists(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::NameTaken(name) => {
                write!(f, "an arrangement named {name:?} is already published")
            }
            CatalogError::NotFound(name) => {
                write!(f, "no arrangement named {name:?} is published")
            }
            CatalogError::TypeMismatch {
                name,
                requested,
                held,
            } => write!(
                f,
                "arrangement {name:?} holds {held}, but {requested} was requested"
            ),
            CatalogError::QueryExists(name) => {
                write!(f, "a query named {name:?} is already installed")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

struct CatalogEntry {
    trace: Box<dyn AnyTrace>,
    /// The query that published this entry (`None` for entries published outside any
    /// `install_query` closure). Uninstalling a query unpublishes its entries.
    publisher: Option<String>,
}

#[derive(Default)]
struct CatalogInner {
    entries: HashMap<String, CatalogEntry>,
    /// The name of the query currently being installed, if an `install_query` closure is
    /// on the stack; publishes made inside it are tagged as owned by that query.
    installing: Option<String>,
}

/// A per-worker registry of named, type-erased arrangements.
///
/// The catalog is a cheaply clonable handle onto shared state, so the same catalog can
/// be moved into `install_query` closures and still be used from the worker's main loop.
/// Each published entry holds its own [`TraceAgent`] — a real reader with a read
/// frontier — so a published trace stays importable even after the publishing dataflow's
/// other handles are gone. Advance the catalog's readers with
/// [`advance_all`](Catalog::advance_all) (or drop entries) to let spines compact.
pub struct Catalog {
    inner: Rc<RefCell<CatalogInner>>,
}

impl Clone for Catalog {
    fn clone(&self) -> Self {
        Catalog {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog {
            inner: Rc::new(RefCell::new(CatalogInner::default())),
        }
    }

    /// Publishes an arrangement's trace under `name`, replacing any previous entry
    /// (last-writer-wins arbitration). Returns true iff a previous entry was displaced.
    ///
    /// The catalog registers its own read handle on the trace (cloned from the
    /// arrangement's), so the published entry remains live and importable independent of
    /// the handle it was published from. Use [`Catalog::publish_if_absent`] when a name
    /// collision should be an error instead of an overwrite.
    pub fn publish<B: Batch<Time = Time> + 'static>(
        &self,
        name: &str,
        arranged: &Arranged<B>,
    ) -> bool {
        self.publish_trace(name, &arranged.trace)
    }

    /// Publishes a trace handle under `name`, replacing any previous entry. Returns true
    /// iff a previous entry was displaced. See [`Catalog::publish`].
    pub fn publish_trace<B: Batch<Time = Time> + 'static>(
        &self,
        name: &str,
        trace: &TraceAgent<B>,
    ) -> bool {
        let mut inner = self.inner.borrow_mut();
        let publisher = inner.installing.clone();
        inner
            .entries
            .insert(
                name.to_string(),
                CatalogEntry {
                    trace: Box::new(trace.clone()),
                    publisher,
                },
            )
            .is_some()
    }

    /// Publishes an arrangement's trace under `name`, refusing to displace an existing
    /// entry: the arbitration for publish races where first-writer-wins is wanted.
    pub fn publish_if_absent<B: Batch<Time = Time> + 'static>(
        &self,
        name: &str,
        arranged: &Arranged<B>,
    ) -> Result<(), CatalogError> {
        self.publish_trace_if_absent(name, &arranged.trace)
    }

    /// Publishes a trace handle under `name` unless the name is already bound, in which
    /// case [`CatalogError::NameTaken`] is returned and the existing entry is kept.
    pub fn publish_trace_if_absent<B: Batch<Time = Time> + 'static>(
        &self,
        name: &str,
        trace: &TraceAgent<B>,
    ) -> Result<(), CatalogError> {
        if self.inner.borrow().entries.contains_key(name) {
            return Err(CatalogError::NameTaken(name.to_string()));
        }
        self.publish_trace(name, trace);
        Ok(())
    }

    /// Looks up the arrangement published under `name`, recovering its concrete batch
    /// type. Returns a fresh read handle (with its own read frontier) onto the shared
    /// trace.
    pub fn lookup<B: Batch<Time = Time> + 'static>(
        &self,
        name: &str,
    ) -> Result<TraceAgent<B>, CatalogError> {
        let inner = self.inner.borrow();
        let entry = inner
            .entries
            .get(name)
            .ok_or_else(|| CatalogError::NotFound(name.to_string()))?;
        entry
            .trace
            .as_any()
            .downcast_ref::<TraceAgent<B>>()
            .cloned()
            .ok_or_else(|| CatalogError::TypeMismatch {
                name: name.to_string(),
                requested: std::any::type_name::<TraceAgent<B>>(),
                held: entry.trace.trace_type(),
            })
    }

    /// Looks up `name` and imports it into `builder`'s dataflow: the shorthand for the
    /// paper's attach-a-new-query-to-existing-state operation.
    pub fn import<B: Batch<Time = Time> + 'static>(
        &self,
        name: &str,
        builder: &mut DataflowBuilder,
    ) -> Result<Arranged<B>, CatalogError> {
        Ok(self.lookup::<B>(name)?.import(builder))
    }

    /// Removes the entry under `name`, dropping the catalog's read handle on it.
    /// Returns false if no such entry exists.
    pub fn unpublish(&self, name: &str) -> bool {
        self.inner.borrow_mut().entries.remove(name).is_some()
    }

    /// True iff an arrangement is published under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.borrow().entries.contains_key(name)
    }

    /// The published names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.borrow().entries.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// The number of published arrangements.
    pub fn len(&self) -> usize {
        self.inner.borrow().entries.len()
    }

    /// True iff nothing is published.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().entries.is_empty()
    }

    /// The compaction frontier of the trace published under `name`.
    pub fn since(&self, name: &str) -> Result<Antichain<Time>, CatalogError> {
        self.with_entry(name, |entry| entry.trace.since())
    }

    /// The upper frontier of the trace published under `name`.
    pub fn upper(&self, name: &str) -> Result<Antichain<Time>, CatalogError> {
        self.with_entry(name, |entry| entry.trace.upper())
    }

    /// The number of updates held by the trace published under `name` (the paper's
    /// memory-footprint proxy).
    pub fn arrangement_size(&self, name: &str) -> Result<usize, CatalogError> {
        self.with_entry(name, |entry| entry.trace.len())
    }

    /// The number of live read handles on the trace published under `name`. Every
    /// importing query holds readers; uninstall must return this to its baseline.
    pub fn reader_count(&self, name: &str) -> Result<usize, CatalogError> {
        self.with_entry(name, |entry| entry.trace.reader_count())
    }

    /// The reader-table slot high-water mark of the trace published under `name` — the
    /// churn metric: bounded reader-slot reuse keeps this flat as queries come and go.
    pub fn reader_slots(&self, name: &str) -> Result<usize, CatalogError> {
        self.with_entry(name, |entry| entry.trace.reader_slots())
    }

    /// The total number of updates held across all published traces.
    pub fn total_size(&self) -> usize {
        self.inner
            .borrow()
            .entries
            .values()
            .map(|entry| entry.trace.len())
            .sum()
    }

    /// Advances the read frontier of every published entry to `frontier`, releasing the
    /// history no future reader can distinguish — the catalog-wide analogue of advancing
    /// a single handle's `since`, and the hygiene that keeps shared spines compact as
    /// the computation moves forward.
    pub fn advance_all(&self, frontier: AntichainRef<'_, Time>) {
        let mut inner = self.inner.borrow_mut();
        for entry in inner.entries.values_mut() {
            entry.trace.advance_since(frontier);
        }
    }

    fn with_entry<T>(
        &self,
        name: &str,
        logic: impl FnOnce(&CatalogEntry) -> T,
    ) -> Result<T, CatalogError> {
        let inner = self.inner.borrow();
        inner
            .entries
            .get(name)
            .map(logic)
            .ok_or_else(|| CatalogError::NotFound(name.to_string()))
    }

    /// Marks `query` as the publisher of everything published until `end_install`.
    fn begin_install(&self, query: &str) {
        self.inner.borrow_mut().installing = Some(query.to_string());
    }

    fn end_install(&self) {
        self.inner.borrow_mut().installing = None;
    }

    /// Unpublishes every entry `query` published, returning how many were removed.
    fn retract_query(&self, query: &str) -> usize {
        let mut inner = self.inner.borrow_mut();
        let before = inner.entries.len();
        inner
            .entries
            .retain(|_, entry| entry.publisher.as_deref() != Some(query));
        before - inner.entries.len()
    }
}

/// A handle onto an installed query: its name, its dataflow's index, and whatever
/// handles (probes, inputs, captures) the install closure returned.
pub struct QueryHandle<R> {
    name: String,
    dataflow: usize,
    /// The handles returned by the install closure.
    pub result: R,
}

impl<R> QueryHandle<R> {
    /// The name the query was installed under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The index of the query's dataflow within the worker.
    pub fn dataflow_index(&self) -> usize {
        self.dataflow
    }
}

/// The query-session lifecycle: installing and retiring named queries against a
/// [`Catalog`] of shared arrangements.
///
/// Implemented for [`Worker`]; see the module docs for the end-to-end shape.
pub trait QueryLifecycle {
    /// Installs a new named query dataflow. The closure receives the dataflow builder
    /// and the catalog; arrangements it publishes are tagged as owned by this query and
    /// are unpublished again when the query is uninstalled.
    ///
    /// Returns a [`QueryHandle`] wrapping whatever the closure returned, or
    /// [`CatalogError::QueryExists`] if the name is already installed. As with
    /// [`Worker::dataflow`], every worker must install the same queries in the same
    /// order.
    fn install_query<R>(
        &mut self,
        name: &str,
        catalog: &Catalog,
        logic: impl FnOnce(&mut DataflowBuilder, &Catalog) -> R,
    ) -> Result<QueryHandle<R>, CatalogError>;

    /// Retires the named query: removes its dataflow from the scheduler, drops every
    /// trace handle its operators registered (so shared spines can compact past its
    /// reads), and unpublishes the arrangements it published. Returns false if no such
    /// query is installed.
    fn uninstall_query(&mut self, name: &str, catalog: &Catalog) -> bool;
}

impl QueryLifecycle for Worker {
    fn install_query<R>(
        &mut self,
        name: &str,
        catalog: &Catalog,
        logic: impl FnOnce(&mut DataflowBuilder, &Catalog) -> R,
    ) -> Result<QueryHandle<R>, CatalogError> {
        if self.installed_index(name).is_some() {
            return Err(CatalogError::QueryExists(name.to_string()));
        }
        catalog.begin_install(name);
        let result = self.install(name, |builder| logic(builder, catalog));
        catalog.end_install();
        // Resolve the slot after the install: retired slots are reused, so the index is
        // not simply the pre-install dataflow count.
        let dataflow = self
            .installed_index(name)
            .expect("the query was just installed");
        Ok(QueryHandle {
            name: name.to_string(),
            dataflow,
            result,
        })
    }

    fn uninstall_query(&mut self, name: &str, catalog: &Catalog) -> bool {
        catalog.retract_query(name);
        self.uninstall(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrange::{KeyBatch, ValBatch};
    use kpg_trace::MergeEffort;

    #[test]
    fn publish_lookup_roundtrip() {
        let catalog = Catalog::new();
        let trace = TraceAgent::<ValBatch<u32, u32>>::new(MergeEffort::Default);
        assert!(!catalog.publish_trace("edges", &trace));
        assert!(catalog.contains("edges"));
        assert_eq!(catalog.names(), vec!["edges".to_string()]);
        let looked = catalog.lookup::<ValBatch<u32, u32>>("edges").unwrap();
        assert_eq!(looked.len(), 0);
    }

    #[test]
    fn lookup_reports_missing_and_mismatched_types() {
        let catalog = Catalog::new();
        let trace = TraceAgent::<ValBatch<u32, u32>>::new(MergeEffort::Default);
        catalog.publish_trace("edges", &trace);
        assert_eq!(
            catalog.lookup::<ValBatch<u32, u32>>("nodes").unwrap_err(),
            CatalogError::NotFound("nodes".to_string())
        );
        match catalog.lookup::<KeyBatch<u64>>("edges").unwrap_err() {
            CatalogError::TypeMismatch {
                name,
                requested,
                held,
            } => {
                assert_eq!(name, "edges");
                assert!(requested.contains("OrdKeyBatch"));
                assert!(held.contains("OrdValBatch"));
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn duplicate_names_are_rejected_by_publish_if_absent() {
        let catalog = Catalog::new();
        let trace = TraceAgent::<ValBatch<u32, u32>>::new(MergeEffort::Default);
        catalog.publish_trace_if_absent("edges", &trace).unwrap();
        assert_eq!(
            catalog
                .publish_trace_if_absent("edges", &trace)
                .unwrap_err(),
            CatalogError::NameTaken("edges".to_string())
        );
        assert!(catalog.unpublish("edges"));
        catalog.publish_trace_if_absent("edges", &trace).unwrap();
    }

    /// The publish-race arbitration (ROADMAP: "arbitration for publish races"): plain
    /// `publish` is last-writer-wins and reports the displacement, while
    /// `publish_if_absent` is first-writer-wins and reports the refusal — so both racers
    /// always agree on which trace a name resolves to.
    #[test]
    fn publish_race_arbitration() {
        let catalog = Catalog::new();
        let first = TraceAgent::<ValBatch<u32, u32>>::new(MergeEffort::Default);
        let second = TraceAgent::<ValBatch<u32, u32>>::new(MergeEffort::Default);

        // Last-writer-wins: the overwrite is reported, and lookups resolve to the winner.
        assert!(!catalog.publish_trace("edges", &first));
        assert_eq!(first.reader_count(), 2);
        assert!(catalog.publish_trace("edges", &second));
        // The displaced entry's reader handle is released; the winner's is registered.
        assert_eq!(first.reader_count(), 1);
        assert_eq!(second.reader_count(), 2);

        // First-writer-wins: the loser gets an error and the winner's entry survives.
        let third = TraceAgent::<ValBatch<u32, u32>>::new(MergeEffort::Default);
        assert_eq!(
            catalog
                .publish_trace_if_absent("edges", &third)
                .unwrap_err(),
            CatalogError::NameTaken("edges".to_string())
        );
        assert_eq!(second.reader_count(), 2);
        assert_eq!(third.reader_count(), 1);
    }

    #[test]
    fn heterogeneous_types_share_one_catalog() {
        let catalog = Catalog::new();
        let by_key = TraceAgent::<ValBatch<u32, String>>::new(MergeEffort::Default);
        let by_self = TraceAgent::<KeyBatch<(u64, u64)>>::new(MergeEffort::Default);
        catalog.publish_trace("profiles", &by_key);
        catalog.publish_trace("pairs", &by_self);
        assert_eq!(catalog.len(), 2);
        catalog.lookup::<ValBatch<u32, String>>("profiles").unwrap();
        catalog.lookup::<KeyBatch<(u64, u64)>>("pairs").unwrap();
    }

    #[test]
    fn catalog_holds_its_own_reader() {
        let catalog = Catalog::new();
        let trace = TraceAgent::<ValBatch<u32, u32>>::new(MergeEffort::Default);
        assert_eq!(trace.reader_count(), 1);
        catalog.publish_trace("edges", &trace);
        assert_eq!(trace.reader_count(), 2);
        drop(trace);
        // The published entry keeps the trace alive and importable.
        let looked = catalog.lookup::<ValBatch<u32, u32>>("edges").unwrap();
        assert_eq!(looked.reader_count(), 2);
    }
}
