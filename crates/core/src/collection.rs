//! Collections: time-varying multisets of records.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::rc::Rc;

use kpg_dataflow::{DataflowBuilder, EdgeTransform, NodeId, ProbeHandle, Time};
use kpg_trace::{Abelian, Data, Semigroup};

use crate::operators::{Concat, StatelessUnary, UpdateVec};
use crate::Diff;

/// A time-varying multiset of records of type `D`, with multiplicities of type `R`.
///
/// A collection is defined either as an interactive input
/// ([`new_collection`](crate::new_collection)) or as a functional transformation of other
/// collections. Underneath, it is a dataflow stream of `(data, time, diff)` update
/// triples; the collection's contents at a time `t` are the accumulation of the diffs of
/// all updates at times `<= t` (paper §3.2).
pub struct Collection<D, R = Diff> {
    pub(crate) builder: DataflowBuilder,
    pub(crate) node: NodeId,
    pub(crate) depth: usize,
    _marker: PhantomData<(D, R)>,
}

impl<D, R> Clone for Collection<D, R> {
    fn clone(&self) -> Self {
        Collection {
            builder: self.builder.clone(),
            node: self.node,
            depth: self.depth,
            _marker: PhantomData,
        }
    }
}

impl<D: Data, R: Semigroup> Collection<D, R> {
    /// Wraps a dataflow node's output as a collection.
    pub fn from_node(builder: DataflowBuilder, node: NodeId, depth: usize) -> Self {
        Collection {
            builder,
            node,
            depth,
            _marker: PhantomData,
        }
    }

    /// The dataflow node whose output carries this collection's updates.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The loop nesting depth of the scope this collection lives in (0 = streaming scope).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The dataflow builder this collection belongs to.
    pub fn builder(&self) -> &DataflowBuilder {
        &self.builder
    }

    /// Internal helper: adds a stateless unary operator downstream of this collection.
    pub(crate) fn unary<D2: Data, R2: Semigroup>(
        &self,
        name: &'static str,
        logic: impl FnMut(UpdateVec<D, R>) -> UpdateVec<D2, R2> + 'static,
    ) -> Collection<D2, R2> {
        self.unary_with_transform(name, EdgeTransform::Identity, logic)
    }

    /// Internal helper: a stateless unary operator whose outgoing edges carry `transform`.
    pub(crate) fn unary_with_transform<D2: Data, R2: Semigroup>(
        &self,
        name: &'static str,
        transform: EdgeTransform,
        logic: impl FnMut(UpdateVec<D, R>) -> UpdateVec<D2, R2> + 'static,
    ) -> Collection<D2, R2> {
        let mut builder = self.builder.clone();
        let node = builder.add_operator_with_transform(
            Box::new(StatelessUnary::new(name, logic)),
            1,
            transform,
        );
        builder.connect(self.node, node, 0);
        Collection::from_node(builder, node, self.depth)
    }

    /// Applies `logic` to every record.
    pub fn map<D2: Data>(&self, mut logic: impl FnMut(D) -> D2 + 'static) -> Collection<D2, R> {
        self.unary("Map", move |buffer| {
            buffer
                .into_iter()
                .map(|(d, t, r)| (logic(d), t, r))
                .collect()
        })
    }

    /// Applies `logic` to every record, producing any number of output records each.
    pub fn flat_map<D2: Data, I: IntoIterator<Item = D2>>(
        &self,
        mut logic: impl FnMut(D) -> I + 'static,
    ) -> Collection<D2, R> {
        self.unary("FlatMap", move |buffer| {
            let mut output = Vec::new();
            for (d, t, r) in buffer {
                for d2 in logic(d) {
                    output.push((d2, t, r.clone()));
                }
            }
            output
        })
    }

    /// Retains only the records satisfying `predicate`.
    pub fn filter(&self, mut predicate: impl FnMut(&D) -> bool + 'static) -> Collection<D, R> {
        self.unary("Filter", move |buffer| {
            buffer
                .into_iter()
                .filter(|(d, _, _)| predicate(d))
                .collect()
        })
    }

    /// Merges this collection with `other`.
    pub fn concat(&self, other: &Collection<D, R>) -> Collection<D, R> {
        self.concatenate(std::iter::once(other.clone()))
    }

    /// Merges this collection with any number of others.
    pub fn concatenate(
        &self,
        others: impl IntoIterator<Item = Collection<D, R>>,
    ) -> Collection<D, R> {
        let mut builder = self.builder.clone();
        let others: Vec<_> = others.into_iter().collect();
        let node = builder.add_operator(Box::new(Concat::<D, R>::new()), 1 + others.len());
        builder.connect(self.node, node, 0);
        for (index, other) in others.iter().enumerate() {
            assert_eq!(
                other.depth, self.depth,
                "concatenated collections must live in the same scope"
            );
            builder.connect(other.node, node, index + 1);
        }
        Collection::from_node(builder, node, self.depth)
    }

    /// Applies `logic` to every update, for its side effects, and passes updates through.
    pub fn inspect(&self, mut logic: impl FnMut(&D, &Time, &R) + 'static) -> Collection<D, R> {
        self.unary("Inspect", move |buffer| {
            for (d, t, r) in buffer.iter() {
                logic(d, t, r);
            }
            buffer
        })
    }

    /// Collects every update this collection ever produces into a shared vector.
    ///
    /// Intended for tests and examples; the vector lives on the worker that calls this.
    pub fn capture(&self) -> Rc<RefCell<Vec<(D, Time, R)>>> {
        let captured = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&captured);
        let _ = self.inspect(move |d, t, r| {
            sink.borrow_mut().push((d.clone(), *t, r.clone()));
        });
        captured
    }

    /// Attaches a probe reporting how far this collection's frontier has advanced.
    pub fn probe(&self) -> ProbeHandle {
        let mut builder = self.builder.clone();
        ProbeHandle::new(&mut builder, self.node)
    }

    /// Brings this collection into a nested iteration scope.
    ///
    /// With the runtime's flat timestamps this does not change the data at all — times in
    /// the enclosing scope are valid round-zero times of the child scope — so `enter` only
    /// adjusts the bookkeeping that `leave` and `iterate` rely on.
    pub fn enter(&self) -> Collection<D, R> {
        let mut entered = self.clone();
        entered.depth += 1;
        entered
    }

    /// Returns this collection to the enclosing scope, discarding iteration rounds.
    ///
    /// The accumulated collection at an outer time `e` is then the final value of the
    /// iteration for `e` (the per-round updates telescope).
    pub fn leave(&self) -> Collection<D, R> {
        assert!(self.depth > 0, "leave called outside an iteration scope");
        let depth = self.depth;
        let mut left = self.unary_with_transform(
            "Leave",
            EdgeTransform::Leave { depth },
            move |buffer: UpdateVec<D, R>| {
                buffer
                    .into_iter()
                    .map(|(d, t, r)| (d, t.left(depth), r))
                    .collect::<Vec<_>>()
            },
        );
        left.depth = depth - 1;
        left
    }
}

impl<D: Data, R: Abelian> Collection<D, R> {
    /// Negates every multiplicity, turning additions into retractions.
    pub fn negate(&self) -> Collection<D, R> {
        self.unary("Negate", |buffer| {
            buffer
                .into_iter()
                .map(|(d, t, mut r)| {
                    r.negate();
                    (d, t, r)
                })
                .collect()
        })
    }
}
