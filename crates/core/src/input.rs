//! Interactive collection inputs.

use kpg_dataflow::{DataflowBuilder, InputHandle};
use kpg_trace::{Data, Semigroup};

use crate::collection::Collection;

/// Creates an interactively updatable collection in `builder`.
///
/// Returns the worker-local [`InputHandle`] used to introduce updates and advance the
/// input's epoch, and the [`Collection`] of those updates. Each worker contributes its
/// own shard of the input; the logical collection is the union across workers.
///
/// This mirrors `scope.new_input()` from the paper's Figure 1.
pub fn new_collection<D, R>(builder: &mut DataflowBuilder) -> (InputHandle<D, R>, Collection<D, R>)
where
    D: Data,
    R: Semigroup,
{
    let (handle, node) = InputHandle::<D, R>::new(builder);
    let collection = Collection::from_node(builder.clone(), node, 0);
    (handle, collection)
}

/// Creates a collection from a fixed set of initial records at epoch 0.
///
/// The input handle is closed immediately, so the collection is static. Records are
/// introduced only on worker 0 to avoid duplication across workers.
pub fn collection_from<D, R>(
    builder: &mut DataflowBuilder,
    records: impl IntoIterator<Item = (D, R)>,
) -> Collection<D, R>
where
    D: Data,
    R: Semigroup,
{
    let (mut handle, collection) = new_collection(builder);
    if builder.worker_index() == 0 {
        for (record, diff) in records {
            handle.update(record, diff);
        }
    }
    handle.close();
    collection
}
