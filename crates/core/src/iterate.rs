//! Fixed-point iteration: `iterate` and recursively defined collections (paper §5.4).
//!
//! Iteration extends timestamps with a round-of-iteration coordinate under the product
//! partial order. A [`Variable`] is a collection that can be used before it is defined;
//! its definition, supplied later with [`Variable::set`], is fed back around the loop
//! with the round incremented. [`Collection::iterate`] wraps the common case of a single
//! mutually recursive collection; `Variable`s can be combined directly for mutual
//! recursion (as Datalog programs require) or to return intermediate collections.

use kpg_dataflow::{EdgeTransform, Time};
use kpg_trace::{Abelian, Data};

use crate::collection::Collection;
use crate::operators::UpdateVec;

/// A recursively defined collection.
///
/// The variable's value at round zero is the `source` collection it is created from; its
/// value at round `r + 1` is whatever its definition evaluated to at round `r`. The
/// differential encoding feeds `definition − source` around the feedback edge so that the
/// updates circulating each round are exactly the changes from the previous round.
pub struct Variable<D: Data, R: Abelian> {
    collection: Collection<D, R>,
    source: Collection<D, R>,
    feedback_target: kpg_dataflow::NodeId,
    depth: usize,
}

impl<D: Data, R: Abelian> Variable<D, R> {
    /// Creates a variable initialised to `source` (which must already be inside the
    /// iteration scope, i.e. have been `enter`ed).
    pub fn new_from(source: &Collection<D, R>) -> Self {
        let depth = source.depth();
        assert!(
            (1..kpg_timestamp::time::MAX_DEPTH).contains(&depth),
            "variables must live inside an iteration scope (depth 1 or 2)"
        );
        let mut builder = source.builder().clone();
        // The feedback node advances the round of everything it forwards; its outgoing
        // edges carry the matching frontier transform.
        let feedback = builder.add_operator_with_transform(
            Box::new(crate::operators::StatelessUnary::new(
                "Feedback",
                move |buffer: UpdateVec<D, R>| {
                    buffer
                        .into_iter()
                        .map(|(d, t, r)| (d, t.advanced(depth, 1), r))
                        .collect::<Vec<_>>()
                },
            )),
            1,
            EdgeTransform::Feedback { depth },
        );
        let feedback_collection = Collection::<D, R>::from_node(builder.clone(), feedback, depth);
        // The variable is the initial value plus the fed-back changes.
        let collection = source.concat(&feedback_collection);
        Variable {
            collection,
            source: source.clone(),
            feedback_target: feedback,
            depth,
        }
    }

    /// The variable as a collection, usable in the loop body before `set` is called.
    pub fn collection(&self) -> &Collection<D, R> {
        &self.collection
    }

    /// Supplies the variable's definition and returns the defined collection.
    ///
    /// The changes `definition − source` are routed around the feedback edge with the
    /// iteration round incremented, so the variable's accumulated value at round `r + 1`
    /// equals the definition's value at round `r`.
    pub fn set(self, definition: &Collection<D, R>) -> Collection<D, R> {
        assert_eq!(
            definition.depth(),
            self.depth,
            "a variable must be defined in its own scope"
        );
        let mut builder = definition.builder().clone();
        let delta = definition.concat(&self.source.negate());
        builder.connect(delta.node(), self.feedback_target, 0);
        definition.clone()
    }
}

impl<D: Data, R: Abelian> Collection<D, R> {
    /// Repeatedly applies `logic`, returning the fixed point (paper Figure 1's
    /// `.iterate(...)`).
    ///
    /// The closure receives the loop variable — initially this collection, entered into
    /// the iteration scope — and returns its next value. The result is the collection's
    /// value once no further changes circulate, returned in the enclosing scope.
    ///
    /// `logic` must be a monotone-ish differential computation that converges (typically
    /// it ends in `distinct`, as the paper's reachability example does); divergent loops
    /// step forever, exactly as they would in the original system.
    pub fn iterate(
        &self,
        logic: impl FnOnce(&Collection<D, R>) -> Collection<D, R>,
    ) -> Collection<D, R> {
        let entered = self.enter();
        let variable = Variable::new_from(&entered);
        let result = logic(variable.collection());
        let defined = variable.set(&result);
        defined.leave()
    }
}

/// Creates `count` mutually recursive variables inside an iteration scope, all initially
/// empty, seeded from the given source collections.
///
/// This is a convenience for Datalog-style mutual recursion: each variable `i` starts as
/// `sources[i]` and is later `set` to its rule body.
pub fn mutual_variables<D: Data, R: Abelian>(sources: &[Collection<D, R>]) -> Vec<Variable<D, R>> {
    sources.iter().map(Variable::new_from).collect()
}

/// A helper mirroring the paper's observation that timestamps inside nested scopes use an
/// extra coordinate: returns the round coordinate of `time` at `depth`.
pub fn round_of(time: &Time, depth: usize) -> u64 {
    time.coord(depth)
}
