//! The join operator shell: bilinear joins over shared arrangements (paper §5.3.1).
//!
//! The operator receives batches from two arranged inputs and responds to each batch by
//! navigating the *other* input's shared trace with alternating seeks, producing output
//! changes `(logic(k, v1, v2), t1 ∨ t2, r1 · r2)`. It never builds its own index: both
//! indices are the shared arrangements, which is exactly the economy the paper's
//! motivating example relies on.

use std::marker::PhantomData;

use kpg_dataflow::operator::{downcast_payload, BundleBox, Operator, OutputContext};
use kpg_dataflow::Time;
use kpg_timestamp::{Antichain, Lattice};
use kpg_trace::{Abelian, Batch, Cursor, Data, Multiply, Semigroup};

use crate::arrange::{Arranged, KeyBatch, TraceAgent, ValBatch};
use crate::collection::Collection;
use crate::operators::UpdateVec;
use crate::Diff;

/// Joins two cursors over the same key space, invoking `emit` for every matching
/// `(key, val1, val2, time1, diff1, time2, diff2)` combination.
///
/// Work is at most linear in the smaller of the two cursors thanks to alternating seeks:
/// whichever cursor holds the smaller key seeks forward to the other's key rather than
/// scanning (paper §5.3.1, "Alternating seeks").
///
/// `history1` and `history2` are caller-owned scratch for the per-value `(time, diff)`
/// histories: the inner loops clear and refill them rather than allocating, so a caller
/// that threads the same vectors through repeated invocations (as [`JoinOperator`] does)
/// performs no history allocations in steady state.
pub(crate) fn join_cursors<C1, C2>(
    mut cursor1: C1,
    mut cursor2: C2,
    history1: &mut Vec<(Time, C1::Diff)>,
    history2: &mut Vec<(Time, C2::Diff)>,
    mut emit: impl FnMut(&C1::Key, &C1::Val, &C2::Val, &Time, &C1::Diff, &Time, &C2::Diff),
) where
    C1: Cursor<Time = Time>,
    C2: Cursor<Key = C1::Key, Time = Time>,
{
    while cursor1.key_valid() && cursor2.key_valid() {
        match cursor1.key().cmp(cursor2.key()) {
            std::cmp::Ordering::Less => {
                let target = cursor2.key().clone();
                cursor1.seek_key(&target);
            }
            std::cmp::Ordering::Greater => {
                let target = cursor1.key().clone();
                cursor2.seek_key(&target);
            }
            std::cmp::Ordering::Equal => {
                let key = cursor1.key().clone();
                cursor1.rewind_vals();
                while cursor1.val_valid() {
                    let val1 = cursor1.val().clone();
                    history1.clear();
                    cursor1.map_times(|t, r| history1.push((*t, r.clone())));
                    cursor2.rewind_vals();
                    while cursor2.val_valid() {
                        let val2 = cursor2.val().clone();
                        history2.clear();
                        cursor2.map_times(|t, r| history2.push((*t, r.clone())));
                        for (t1, r1) in history1.iter() {
                            for (t2, r2) in history2.iter() {
                                emit(&key, &val1, &val2, t1, r1, t2, r2);
                            }
                        }
                        cursor2.step_val();
                    }
                    cursor1.step_val();
                }
                cursor1.step_key();
                cursor2.step_key();
            }
        }
    }
}

/// The join operator shell: port 0 carries batches of the first arrangement, port 1
/// batches of the second. Both shared traces are read through [`TraceAgent`] handles.
struct JoinOperator<B1, B2, D, L>
where
    B1: Batch<Time = Time>,
    B2: Batch<Time = Time, Key = B1::Key>,
    B1::Diff: Multiply<B2::Diff>,
    <B1::Diff as Multiply<B2::Diff>>::Output: Semigroup,
    L: FnMut(&B1::Key, &B1::Val, &B2::Val) -> D,
{
    logic: L,
    trace1: Option<TraceAgent<B1>>,
    trace2: Option<TraceAgent<B2>>,
    queue1: Vec<B1>,
    queue2: Vec<B2>,
    frontier1: Antichain<Time>,
    frontier2: Antichain<Time>,
    /// Reusable scratch for the per-value histories walked by [`join_cursors`] and for
    /// the staged output updates; capacities persist across `work` calls so the join
    /// inner loops allocate nothing in steady state.
    history1: Vec<(Time, B1::Diff)>,
    history2: Vec<(Time, B2::Diff)>,
    results: UpdateVec<D, <B1::Diff as Multiply<B2::Diff>>::Output>,
    _marker: PhantomData<D>,
}

impl<B1, B2, D, L> Operator for JoinOperator<B1, B2, D, L>
where
    B1: Batch<Time = Time> + 'static,
    B2: Batch<Time = Time, Key = B1::Key> + 'static,
    D: Data,
    B1::Diff: Multiply<B2::Diff>,
    <B1::Diff as Multiply<B2::Diff>>::Output: Semigroup + Abelian,
    L: FnMut(&B1::Key, &B1::Val, &B2::Val) -> D + 'static,
{
    fn name(&self) -> &str {
        "Join"
    }

    fn recv(&mut self, port: usize, payload: BundleBox) {
        match port {
            0 => self.queue1.push(downcast_payload::<B1>(payload, "Join")),
            1 => self.queue2.push(downcast_payload::<B2>(payload, "Join")),
            _ => unreachable!("join has two input ports"),
        }
    }

    fn work(&mut self, output: &mut OutputContext<'_>) -> bool {
        if self.queue1.is_empty() && self.queue2.is_empty() {
            return false;
        }
        let new1 = std::mem::take(&mut self.queue1);
        let new2 = std::mem::take(&mut self.queue2);

        // Borrow the scratch buffers and the logic closure as disjoint fields so the
        // emit closures below can capture them while the traces stay borrowed.
        let Self {
            logic,
            trace1,
            trace2,
            history1,
            history2,
            results,
            ..
        } = self;
        debug_assert!(results.is_empty());

        // New batches from input 1 joined against the full shared trace of input 2.
        if let Some(trace2) = trace2.as_ref() {
            for batch in new1.iter() {
                join_cursors(
                    batch.cursor(),
                    trace2.cursor(),
                    history1,
                    history2,
                    |k, v1, v2, t1, r1, t2, r2| {
                        results.push((logic(k, v1, v2), t1.join(t2), r1.multiply(r2)));
                    },
                );
            }
        }
        // New batches from input 2 joined against the full shared trace of input 1.
        if let Some(trace1) = trace1.as_ref() {
            for batch in new2.iter() {
                join_cursors(
                    trace1.cursor(),
                    batch.cursor(),
                    history1,
                    history2,
                    |k, v1, v2, t1, r1, t2, r2| {
                        results.push((logic(k, v1, v2), t1.join(t2), r1.multiply(r2)));
                    },
                );
            }
        }
        // Both traces already contain the concurrently arrived batches, so the
        // new1 × new2 combinations were produced twice; subtract one copy.
        for batch1 in new1.iter() {
            for batch2 in new2.iter() {
                join_cursors(
                    batch1.cursor(),
                    batch2.cursor(),
                    history1,
                    history2,
                    |k, v1, v2, t1, r1, t2, r2| {
                        let mut diff = r1.multiply(r2);
                        diff.negate();
                        results.push((logic(k, v1, v2), t1.join(t2), diff));
                    },
                );
            }
        }

        kpg_trace::consolidate_updates(results);
        let produced = !results.is_empty();
        if produced {
            // Drain into an exactly-sized payload; the scratch keeps its capacity
            // (`mem::take`, clippy's preference, would surrender it every call).
            #[allow(clippy::drain_collect)]
            let payload: UpdateVec<D, _> = results.drain(..).collect();
            output.send(Box::new(payload));
        }

        // Let the traces compact up to the opposing input's frontier, and release a trace
        // entirely once the opposing input can no longer change (paper: "Trace
        // capabilities").
        if let Some(trace1) = self.trace1.as_mut() {
            trace1.set_logical_compaction(self.frontier2.borrow());
        }
        if let Some(trace2) = self.trace2.as_mut() {
            trace2.set_logical_compaction(self.frontier1.borrow());
        }
        if self.frontier2.is_empty() && self.queue2.is_empty() {
            self.trace1 = None;
        }
        if self.frontier1.is_empty() && self.queue1.is_empty() {
            self.trace2 = None;
        }

        produced || !new1.is_empty() || !new2.is_empty()
    }

    fn set_frontier(&mut self, port: usize, frontier: &Antichain<Time>) {
        match port {
            0 => self.frontier1 = frontier.clone(),
            1 => self.frontier2 = frontier.clone(),
            _ => unreachable!(),
        }
    }

    fn capabilities(&self, into: &mut Antichain<Time>) {
        // Queued batches are processed (and their outputs emitted) before the next
        // frontier advancement, but their times must remain claimable until then.
        for batch in self.queue1.iter() {
            for time in batch.description().lower().elements() {
                into.insert(*time);
            }
        }
        for batch in self.queue2.iter() {
            for time in batch.description().lower().elements() {
                into.insert(*time);
            }
        }
    }
}

impl<B1: Batch<Time = Time> + 'static> Arranged<B1> {
    /// Joins this arrangement with another, applying `logic` to every matching
    /// `(key, val1, val2)` triple.
    ///
    /// Both arrangements are read through shared trace handles; this operator maintains
    /// no state of its own beyond queued input batches.
    pub fn join_core<B2, D, L>(
        &self,
        other: &Arranged<B2>,
        logic: L,
    ) -> Collection<D, <B1::Diff as Multiply<B2::Diff>>::Output>
    where
        B2: Batch<Time = Time, Key = B1::Key> + 'static,
        D: Data,
        B1::Diff: Multiply<B2::Diff>,
        <B1::Diff as Multiply<B2::Diff>>::Output: Semigroup + Abelian,
        L: FnMut(&B1::Key, &B1::Val, &B2::Val) -> D + 'static,
    {
        let mut builder = self.builder.clone();
        let operator = JoinOperator::<B1, B2, D, L> {
            logic,
            trace1: Some(self.trace.clone()),
            trace2: Some(other.trace.clone()),
            queue1: Vec::new(),
            queue2: Vec::new(),
            frontier1: Antichain::from_elem(Time::minimum()),
            frontier2: Antichain::from_elem(Time::minimum()),
            history1: Vec::new(),
            history2: Vec::new(),
            results: Vec::new(),
            _marker: PhantomData,
        };
        let node = builder.add_operator(Box::new(operator), 2);
        builder.connect(self.node, node, 0);
        builder.connect(other.node, node, 1);
        Collection::from_node(builder, node, self.depth.max(other.depth))
    }
}

impl<K: Data, V: Data, R: Semigroup> Collection<(K, V), R> {
    /// Joins with another keyed collection, producing `(key, (val1, val2))`.
    pub fn join<V2: Data, R2: Semigroup>(
        &self,
        other: &Collection<(K, V2), R2>,
    ) -> Collection<(K, (V, V2)), <R as Multiply<R2>>::Output>
    where
        R: Multiply<R2>,
        <R as Multiply<R2>>::Output: Semigroup + Abelian,
    {
        self.join_map(other, |k, v1, v2| (k.clone(), (v1.clone(), v2.clone())))
    }

    /// Joins with another keyed collection, applying `logic` to every match.
    pub fn join_map<V2: Data, R2: Semigroup, D: Data>(
        &self,
        other: &Collection<(K, V2), R2>,
        logic: impl FnMut(&K, &V, &V2) -> D + 'static,
    ) -> Collection<D, <R as Multiply<R2>>::Output>
    where
        R: Multiply<R2>,
        <R as Multiply<R2>>::Output: Semigroup + Abelian,
    {
        let arranged1: Arranged<ValBatch<K, V, R>> = self.arrange_by_key();
        let arranged2: Arranged<ValBatch<K, V2, R2>> = other.arrange_by_key();
        arranged1.join_core(&arranged2, logic)
    }

    /// Restricts this collection to keys present in `other`.
    pub fn semijoin<R2: Semigroup>(
        &self,
        other: &Collection<K, R2>,
    ) -> Collection<(K, V), <R as Multiply<R2>>::Output>
    where
        R: Multiply<R2>,
        <R as Multiply<R2>>::Output: Semigroup + Abelian,
    {
        let arranged1: Arranged<ValBatch<K, V, R>> = self.arrange_by_key();
        let arranged2: Arranged<KeyBatch<K, R2>> = other.arrange_by_self();
        arranged1.join_core(&arranged2, |k, v, ()| (k.clone(), v.clone()))
    }
}

impl<K: Data, V: Data> Collection<(K, V), Diff> {
    /// Restricts this collection to keys *absent* from `other`.
    ///
    /// `other` must contain each key at most once (e.g. the output of `distinct`).
    pub fn antijoin(&self, other: &Collection<K, Diff>) -> Collection<(K, V), Diff> {
        self.concat(&self.semijoin(other).negate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrange::ValBatch;
    use kpg_trace::{BatchReader, Builder};

    fn batch(keys: u64, vals: u64) -> ValBatch<u64, u64, Diff> {
        let mut builder = <ValBatch<u64, u64, Diff> as Batch>::Builder::with_capacity(0);
        for key in 0..keys {
            for val in 0..vals {
                builder.push(key, val, Time::minimum(), 1);
                builder.push(key, val, Time::from_epoch(1), 1);
            }
        }
        builder.done(
            Antichain::from_elem(Time::minimum()),
            Antichain::from_elem(Time::from_epoch(2)),
            Antichain::from_elem(Time::minimum()),
        )
    }

    /// The join inner loops must reuse caller-owned history scratch: repeated
    /// invocations with the same vectors perform identical work and never regrow them.
    #[test]
    fn join_cursors_scratch_capacity_is_stable() {
        let batch1 = batch(64, 3);
        let batch2 = batch(48, 4);
        let mut history1: Vec<(Time, Diff)> = Vec::new();
        let mut history2: Vec<(Time, Diff)> = Vec::new();

        let mut baseline = 0usize;
        join_cursors(
            batch1.cursor(),
            batch2.cursor(),
            &mut history1,
            &mut history2,
            |_, _, _, _, _, _, _| baseline += 1,
        );
        // 48 shared keys × (3 × 4) value pairs × (2 × 2) time pairs.
        assert_eq!(baseline, 48 * 12 * 4);
        let capacities = (history1.capacity(), history2.capacity());
        assert!(capacities.0 > 0 && capacities.1 > 0);

        for round in 0..10 {
            let mut matches = 0usize;
            join_cursors(
                batch1.cursor(),
                batch2.cursor(),
                &mut history1,
                &mut history2,
                |_, _, _, _, _, _, _| matches += 1,
            );
            assert_eq!(matches, baseline);
            assert_eq!(
                (history1.capacity(), history2.capacity()),
                capacities,
                "round {round}: history scratch regrew"
            );
        }
    }
}
