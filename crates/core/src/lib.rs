//! Differential dataflow with shared arrangements: the paper's primary contribution.
//!
//! This crate implements the differential dataflow programming model on top of the
//! `kpg-dataflow` runtime and the `kpg-trace` arrangement storage:
//!
//! * [`Collection`] — a time-varying multiset of records, manipulated with functional
//!   operators (`map`, `filter`, `concat`, `negate`, `join`, `reduce`, `iterate`, ...).
//! * [`arrange`](crate::arrange) — the **arrange** operator (paper §4): it exchanges,
//!   batches, and indexes a collection's updates, producing an [`Arranged`] stream of
//!   shared immutable batches plus a shared, compactly maintained multiversioned index
//!   (the *trace*). Arrangements are the unit of sharing: many operators, in the same or
//!   different dataflows, read one arrangement through [`TraceAgent`] handles.
//! * Batch-oriented operator shells (paper §5): [`join_core`](Arranged::join_core) with
//!   alternating seeks, [`reduce_core`](Arranged::reduce_core) with per-`(key, time)`
//!   future-work scheduling and a shared output arrangement, and the `distinct`, `count`,
//!   `threshold`, `semijoin`, and `antijoin` shells built on them.
//! * [`iterate`](Collection::iterate) / [`Variable`] — fixed-point iteration with
//!   product-ordered timestamps (paper §5.4).
//!
//! The quickest way to see it all together is the reachability example from Figure 1 of
//! the paper, reproduced in `examples/quickstart.rs` of the workspace root.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrange;
pub mod catalog;
pub mod collection;
pub mod input;
pub mod iterate;
pub mod join;
pub mod operators;
pub mod reduce;

pub use arrange::{Arranged, TraceAgent};
pub use catalog::{AnyTrace, Catalog, CatalogError, QueryHandle, QueryLifecycle};
pub use collection::Collection;
pub use input::new_collection;
pub use iterate::Variable;

/// The difference type used by most collections.
pub type Diff = isize;

/// The prelude: everything a typical program needs.
pub mod prelude {
    pub use crate::arrange::{Arranged, KeyBatch, TraceAgent, ValBatch};
    pub use crate::catalog::{Catalog, CatalogError, QueryHandle, QueryLifecycle};
    pub use crate::collection::Collection;
    pub use crate::input::new_collection;
    pub use crate::iterate::Variable;
    pub use crate::Diff;
    pub use kpg_dataflow::{execute, Config, DataflowBuilder, InputHandle, ProbeHandle, Worker};
    pub use kpg_timestamp::Time;
    pub use kpg_trace::{MergeEffort, Multiply, Semigroup};
}
