//! Generic operator building blocks: stateless unary operators, concatenation, exchange.

use std::marker::PhantomData;

use kpg_dataflow::operator::{downcast_payload, BundleBox, Operator, OutputContext};
use kpg_dataflow::Time;
use kpg_timestamp::Antichain;
use kpg_trace::{Data, Semigroup};

/// The payload carried by collection streams: a buffer of `(data, time, diff)` updates.
pub type UpdateVec<D, R> = Vec<(D, Time, R)>;

/// A stateless operator applying a buffer-to-buffer transformation.
///
/// Map, filter, flat_map, negate, inspect, and the retiming halves of loop feedback and
/// leave are all instances of this operator with different closures. Stateless operators
/// hold no capabilities: they respond to input immediately and never speak first.
pub struct StatelessUnary<D1, R1, D2, R2, L>
where
    L: FnMut(UpdateVec<D1, R1>) -> UpdateVec<D2, R2>,
{
    name: &'static str,
    logic: L,
    pending: Vec<UpdateVec<D1, R1>>,
    _marker: PhantomData<(D2, R2)>,
}

impl<D1, R1, D2, R2, L> StatelessUnary<D1, R1, D2, R2, L>
where
    L: FnMut(UpdateVec<D1, R1>) -> UpdateVec<D2, R2>,
{
    /// Creates a stateless operator with the given name and buffer transformation.
    pub fn new(name: &'static str, logic: L) -> Self {
        StatelessUnary {
            name,
            logic,
            pending: Vec::new(),
            _marker: PhantomData,
        }
    }
}

impl<D1, R1, D2, R2, L> Operator for StatelessUnary<D1, R1, D2, R2, L>
where
    D1: Data,
    R1: Semigroup,
    D2: Data,
    R2: Semigroup,
    L: FnMut(UpdateVec<D1, R1>) -> UpdateVec<D2, R2> + 'static,
{
    fn name(&self) -> &str {
        self.name
    }
    fn recv(&mut self, _port: usize, payload: BundleBox) {
        self.pending
            .push(downcast_payload::<UpdateVec<D1, R1>>(payload, self.name));
    }
    fn work(&mut self, output: &mut OutputContext<'_>) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        for buffer in self.pending.drain(..) {
            let transformed = (self.logic)(buffer);
            if !transformed.is_empty() {
                output.send(Box::new(transformed));
            }
        }
        true
    }
    fn set_frontier(&mut self, _port: usize, _frontier: &Antichain<Time>) {}
    fn capabilities(&self, into: &mut Antichain<Time>) {
        for buffer in self.pending.iter() {
            for (_, time, _) in buffer.iter() {
                into.insert(*time);
            }
        }
    }
}

/// Concatenates any number of update streams of the same type.
pub struct Concat<D, R> {
    pending: Vec<UpdateVec<D, R>>,
}

impl<D, R> Concat<D, R> {
    /// Creates a concatenation operator.
    pub fn new() -> Self {
        Concat {
            pending: Vec::new(),
        }
    }
}

impl<D, R> Default for Concat<D, R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<D: Data, R: Semigroup> Operator for Concat<D, R> {
    fn name(&self) -> &str {
        "Concat"
    }
    fn recv(&mut self, _port: usize, payload: BundleBox) {
        self.pending
            .push(downcast_payload::<UpdateVec<D, R>>(payload, "Concat"));
    }
    fn work(&mut self, output: &mut OutputContext<'_>) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        for buffer in self.pending.drain(..) {
            if !buffer.is_empty() {
                output.send(Box::new(buffer));
            }
        }
        true
    }
    fn set_frontier(&mut self, _port: usize, _frontier: &Antichain<Time>) {}
    fn capabilities(&self, into: &mut Antichain<Time>) {
        for buffer in self.pending.iter() {
            for (_, time, _) in buffer.iter() {
                into.insert(*time);
            }
        }
    }
}

/// Routes updates to the worker that owns their key, by hashing.
///
/// This is the data-exchange half of the paper's decomposition of stateful operators
/// (Figure 2): `exchange` moves records to the worker responsible for their key, and the
/// downstream `arrange` indexes them there. Everything after the exchange is worker-local.
///
/// The hot path is allocation-amortized: received payloads are kept whole (not copied
/// into a staging buffer), and the routing pass scatters them into *persistent*
/// per-worker buckets whose capacity is retained across flushes. Each flush allocates
/// only the exactly-sized payloads actually sent; in steady state the buckets themselves
/// never reallocate. With one worker no routing happens at all: payloads are forwarded
/// verbatim, however many of them arrived.
pub struct Exchange<D, R, H>
where
    H: FnMut(&D) -> u64,
{
    route: H,
    /// Received payloads, awaiting routing (or verbatim forwarding when `peers == 1`).
    pending: Vec<UpdateVec<D, R>>,
    /// Per-destination scratch buffers, drained (capacity retained) at each flush.
    buckets: Vec<UpdateVec<D, R>>,
}

impl<D, R, H: FnMut(&D) -> u64> Exchange<D, R, H> {
    /// Creates an exchange operator routing by `route`.
    pub fn new(route: H) -> Self {
        Exchange {
            route,
            pending: Vec::new(),
            buckets: Vec::new(),
        }
    }

    /// The capacity of each per-destination bucket, for capacity-stability tests.
    #[doc(hidden)]
    pub fn bucket_capacities(&self) -> Vec<usize> {
        self.buckets
            .iter()
            .map(|bucket| bucket.capacity())
            .collect()
    }
}

impl<D: Data, R: Semigroup, H: FnMut(&D) -> u64 + 'static> Operator for Exchange<D, R, H> {
    fn name(&self) -> &str {
        "Exchange"
    }
    fn recv(&mut self, _port: usize, payload: BundleBox) {
        self.pending
            .push(downcast_payload::<UpdateVec<D, R>>(payload, "Exchange"));
    }
    fn work(&mut self, output: &mut OutputContext<'_>) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        let peers = output.peers();
        if peers == 1 {
            // Single-worker fast path: every record is already home, so skip the routing
            // closure and forward each received payload as-is — whether the flush holds
            // one payload or many.
            for buffer in self.pending.drain(..) {
                if !buffer.is_empty() {
                    output.send_to_worker(0, Box::new(buffer));
                }
            }
            return true;
        }
        if self.buckets.len() < peers {
            self.buckets.resize_with(peers, Vec::new);
        }
        for buffer in self.pending.drain(..) {
            for (data, time, diff) in buffer {
                let target = ((self.route)(&data) as usize) % peers;
                self.buckets[target].push((data, time, diff));
            }
        }
        for (worker, bucket) in self.buckets.iter_mut().enumerate() {
            if !bucket.is_empty() {
                // Drain into an exactly-sized payload; the bucket keeps its capacity
                // (`mem::take`, clippy's preference, would surrender it every flush).
                #[allow(clippy::drain_collect)]
                let payload: UpdateVec<D, R> = bucket.drain(..).collect();
                output.send_to_worker(worker, Box::new(payload));
            }
        }
        true
    }
    fn set_frontier(&mut self, _port: usize, _frontier: &Antichain<Time>) {}
    fn capabilities(&self, into: &mut Antichain<Time>) {
        for buffer in self.pending.iter() {
            for (_, time, _) in buffer.iter() {
                into.insert(*time);
            }
        }
    }
}

/// A deterministic, worker-agnostic hash for routing records to workers.
///
/// FxHash-style multiply-xor over the `std` hasher would differ between builds; we use a
/// fixed 64-bit FNV-1a so that routing is stable and testable.
pub fn route_hash<T: std::hash::Hash>(value: &T) -> u64 {
    struct Fnv(u64);
    impl std::hash::Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for byte in bytes {
                self.0 ^= *byte as u64;
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    }
    let mut hasher = Fnv(0xcbf2_9ce4_8422_2325);
    std::hash::Hash::hash(value, &mut hasher);
    std::hash::Hasher::finish(&hasher)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_hash_is_deterministic_and_spread() {
        let a = route_hash(&42u64);
        let b = route_hash(&42u64);
        assert_eq!(a, b);
        let distinct: std::collections::HashSet<u64> =
            (0..1000u64).map(|x| route_hash(&x) % 16).collect();
        assert!(distinct.len() > 8, "hash should spread keys across buckets");
    }

    #[test]
    fn stateless_unary_applies_logic() {
        let mut op = StatelessUnary::new("double", |buffer: UpdateVec<u64, isize>| {
            buffer
                .into_iter()
                .map(|(d, t, r)| (d * 2, t, r))
                .collect::<Vec<_>>()
        });
        op.recv(0, Box::new(vec![(3u64, Time::minimum(), 1isize)]));
        let mut capabilities = Antichain::new();
        op.capabilities(&mut capabilities);
        assert_eq!(
            capabilities.elements(),
            &[Time::minimum()],
            "buffered updates are covered by capabilities"
        );
        // Capabilities drop once work has drained the buffer; the emission itself is
        // checked in the integration tests, where a full worker is available.
    }
}
