//! The group/reduce operator shell and its specialisations (paper §5.3.2).
//!
//! `reduce` receives batches from an arranged input and, for every `(key, time)` at which
//! its output might change, re-forms the input for that key at that time, applies the
//! user's reduction function, and subtracts the previously produced output to emit only
//! corrective updates. Because the least upper bound of two partially ordered times need
//! not be one of them, the operator tracks a list of future `(key, time)` pairs at which
//! it must re-evaluate even without new input for that key.
//!
//! The operator keeps its own output in a shared arrangement, both to avoid re-invoking
//! user logic over historical output and so downstream operators (most commonly a `join`
//! on the same key) can reuse that index directly ("Output arrangements").

use std::collections::BTreeSet;
use std::marker::PhantomData;

use kpg_dataflow::operator::{downcast_payload, BundleBox, Operator, OutputContext};
use kpg_dataflow::Time;
use kpg_timestamp::{Antichain, Lattice, PartialOrder};
use kpg_trace::{Abelian, Batch, Builder, Cursor, Data, MergeEffort, Semigroup};

use crate::arrange::{Arranged, KeyBatch, TraceAgent, ValBatch};
use crate::collection::Collection;
use crate::Diff;

/// Reusable scratch for one [`ReduceOperator`], threaded through
/// `accumulate_input` / `accumulate_output` so the per-`(key, time)` evaluation loop
/// allocates nothing in steady state: every vector is cleared and refilled in place,
/// and `staged` is drained (capacity retained) into the output batch builder.
struct ReduceScratch<K, V1, R1, V2, R2> {
    /// The accumulated input values for the key under evaluation.
    values: Vec<(V1, R1)>,
    /// The distinct times in the key's input history (future-work scheduling).
    history_times: Vec<Time>,
    /// The previously produced output accumulated at the time under evaluation.
    totals: Vec<(V2, R2)>,
    /// The output corrections staged during the current `work` invocation.
    staged: Vec<(K, V2, Time, R2)>,
    /// The user logic's desired output for the key under evaluation.
    desired: Vec<(V2, R2)>,
}

impl<K, V1, R1, V2, R2> Default for ReduceScratch<K, V1, R1, V2, R2> {
    fn default() -> Self {
        ReduceScratch {
            values: Vec::new(),
            history_times: Vec::new(),
            totals: Vec::new(),
            staged: Vec::new(),
            desired: Vec::new(),
        }
    }
}

/// The reduce operator shell. `B1` is the input batch type, the output is maintained as
/// `ValBatch<K, V2, R2>`.
struct ReduceOperator<B1, V2, R2, L>
where
    B1: Batch<Time = Time>,
    V2: Data,
    R2: Abelian,
    L: FnMut(&B1::Key, &[(B1::Val, B1::Diff)], &mut Vec<(V2, R2)>),
{
    name: &'static str,
    logic: L,
    input_trace: TraceAgent<B1>,
    output_trace: TraceAgent<ValBatch<B1::Key, V2, R2>>,
    queue: Vec<B1>,
    pending: BTreeSet<(Time, B1::Key)>,
    input_frontier: Antichain<Time>,
    output_upper: Antichain<Time>,
    scratch: ReduceScratch<B1::Key, B1::Val, B1::Diff, V2, R2>,
    _marker: PhantomData<(V2, R2)>,
}

impl<B1, V2, R2, L> ReduceOperator<B1, V2, R2, L>
where
    B1: Batch<Time = Time>,
    V2: Data,
    R2: Abelian,
    L: FnMut(&B1::Key, &[(B1::Val, B1::Diff)], &mut Vec<(V2, R2)>),
{
    /// Accumulates the input collection for `key` at `time` into `values` (each value
    /// with its net multiplicity) and `history_times` (the distinct times in the key's
    /// history, for future-work scheduling). Both vectors are cleared first.
    fn accumulate_input(
        &self,
        key: &B1::Key,
        time: &Time,
        values: &mut Vec<(B1::Val, B1::Diff)>,
        history_times: &mut Vec<Time>,
    ) {
        values.clear();
        history_times.clear();
        let mut cursor = self.input_trace.cursor();
        cursor.seek_key(key);
        if cursor.key_valid() && cursor.key() == key {
            while cursor.val_valid() {
                let mut sum: Option<B1::Diff> = None;
                cursor.map_times(|t, r| {
                    if !history_times.contains(t) {
                        history_times.push(*t);
                    }
                    if t.less_equal(time) {
                        match &mut sum {
                            None => sum = Some(r.clone()),
                            Some(s) => s.plus_equals(r),
                        }
                    }
                });
                if let Some(sum) = sum {
                    if !sum.is_zero() {
                        values.push((cursor.val().clone(), sum));
                    }
                }
                cursor.step_val();
            }
        }
    }

    /// Accumulates the previously produced output for `key` at `time` into `totals`
    /// (cleared first), including the corrections produced earlier in the current
    /// invocation (`staged`).
    fn accumulate_output(
        &self,
        key: &B1::Key,
        time: &Time,
        staged: &[(B1::Key, V2, Time, R2)],
        totals: &mut Vec<(V2, R2)>,
    ) {
        totals.clear();
        let add = |totals: &mut Vec<(V2, R2)>, val: &V2, diff: &R2| {
            if let Some(entry) = totals.iter_mut().find(|(v, _)| v == val) {
                entry.1.plus_equals(diff);
            } else {
                totals.push((val.clone(), diff.clone()));
            }
        };
        let mut cursor = self.output_trace.cursor();
        cursor.seek_key(key);
        if cursor.key_valid() && cursor.key() == key {
            while cursor.val_valid() {
                let val = cursor.val().clone();
                cursor.map_times(|t, r| {
                    if t.less_equal(time) {
                        add(totals, &val, r);
                    }
                });
                cursor.step_val();
            }
        }
        for (k, v, t, r) in staged.iter() {
            if k == key && t.less_equal(time) {
                add(totals, v, r);
            }
        }
        totals.retain(|(_, r)| !r.is_zero());
        totals.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

impl<B1, V2, R2, L> Operator for ReduceOperator<B1, V2, R2, L>
where
    B1: Batch<Time = Time> + 'static,
    V2: Data,
    R2: Abelian,
    L: FnMut(&B1::Key, &[(B1::Val, B1::Diff)], &mut Vec<(V2, R2)>) + 'static,
{
    fn name(&self) -> &str {
        self.name
    }

    fn recv(&mut self, _port: usize, payload: BundleBox) {
        self.queue.push(downcast_payload::<B1>(payload, self.name));
    }

    fn work(&mut self, output: &mut OutputContext<'_>) -> bool {
        // Record the (key, time) pairs whose output may have changed.
        for batch in self.queue.drain(..) {
            let mut cursor = batch.cursor();
            while cursor.key_valid() {
                let key = cursor.key().clone();
                while cursor.val_valid() {
                    cursor.map_times(|time, _| {
                        self.pending.insert((*time, key.clone()));
                    });
                    cursor.step_val();
                }
                cursor.step_key();
            }
        }

        let frontier_advanced = !self.input_frontier.same_as(&self.output_upper);
        if !frontier_advanced {
            return false;
        }

        // Process, in an order compatible with the partial order on times, every pending
        // pair whose time is now complete. The scratch is moved out for the duration so
        // `self` stays borrowable by the accumulate helpers.
        let mut scratch = std::mem::take(&mut self.scratch);
        debug_assert!(scratch.staged.is_empty());
        loop {
            let next = self
                .pending
                .iter()
                .find(|(time, _)| !self.input_frontier.less_equal(time))
                .cloned();
            let Some((time, key)) = next else { break };
            self.pending.remove(&(time, key.clone()));

            self.accumulate_input(&key, &time, &mut scratch.values, &mut scratch.history_times);
            self.accumulate_output(&key, &time, &scratch.staged, &mut scratch.totals);

            scratch.desired.clear();
            if !scratch.values.is_empty() {
                (self.logic)(&key, &scratch.values, &mut scratch.desired);
            }
            scratch.desired.sort_by(|a, b| a.0.cmp(&b.0));

            // Emit the difference between the desired and current outputs at this time.
            // (Disjoint field borrows: `staged` grows while `desired`/`totals` are read.)
            let ReduceScratch {
                desired,
                totals: current,
                staged,
                ..
            } = &mut scratch;
            let mut d = 0;
            let mut c = 0;
            while d < desired.len() || c < current.len() {
                let order = match (desired.get(d), current.get(c)) {
                    (Some(want), Some(have)) => want.0.cmp(&have.0),
                    (Some(_), None) => std::cmp::Ordering::Less,
                    (None, Some(_)) => std::cmp::Ordering::Greater,
                    (None, None) => unreachable!(),
                };
                match order {
                    std::cmp::Ordering::Less => {
                        let (val, diff) = &desired[d];
                        staged.push((key.clone(), val.clone(), time, diff.clone()));
                        d += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        let (val, diff) = &current[c];
                        staged.push((key.clone(), val.clone(), time, diff.negated()));
                        c += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        let (val, want) = &desired[d];
                        let have = &current[c].1;
                        let mut delta = want.clone();
                        delta.plus_equals(&have.negated());
                        if !delta.is_zero() {
                            staged.push((key.clone(), val.clone(), time, delta));
                        }
                        d += 1;
                        c += 1;
                    }
                }
            }

            // Future work: the output may also change at joins of this time with other
            // times in the key's history, even if no input arrives then (paper §5.3.2).
            for other in scratch.history_times.iter() {
                let joined = other.join(&time);
                if joined != time {
                    self.pending.insert((joined, key.clone()));
                }
            }
        }

        // Mint the output batch (possibly empty) so the output arrangement's upper tracks
        // the input frontier. Draining `staged` retains its capacity for the next call.
        let mut builder =
            <ValBatch<B1::Key, V2, R2> as Batch>::Builder::with_capacity(scratch.staged.len());
        for (key, val, time, diff) in scratch.staged.drain(..) {
            builder.push(key, val, time, diff);
        }
        self.scratch = scratch;
        let since = self.output_trace.since();
        let batch = builder.done(
            self.output_upper.clone(),
            self.input_frontier.clone(),
            since,
        );
        self.output_upper = self.input_frontier.clone();
        self.output_trace.insert_batch(batch.clone());
        output.send(Box::new(batch));

        // Allow both traces to compact up to the new frontier.
        self.input_trace
            .set_logical_compaction(self.input_frontier.borrow());
        self.output_trace
            .set_logical_compaction(self.input_frontier.borrow());
        true
    }

    fn set_frontier(&mut self, _port: usize, frontier: &Antichain<Time>) {
        self.input_frontier = frontier.clone();
    }

    fn capabilities(&self, into: &mut Antichain<Time>) {
        for (time, _) in self.pending.iter() {
            into.insert(*time);
        }
        for batch in self.queue.iter() {
            for time in batch.description().lower().elements() {
                into.insert(*time);
            }
        }
    }
}

impl<B1: Batch<Time = Time> + 'static> Arranged<B1> {
    /// The general reduction: applies `logic` to each key's accumulated input whenever it
    /// might change, maintaining (and sharing) the output as an arrangement.
    pub fn reduce_core<V2, R2, L>(
        &self,
        name: &'static str,
        logic: L,
    ) -> Arranged<ValBatch<B1::Key, V2, R2>>
    where
        V2: Data,
        R2: Abelian,
        L: FnMut(&B1::Key, &[(B1::Val, B1::Diff)], &mut Vec<(V2, R2)>) + 'static,
    {
        let mut builder = self.builder.clone();
        let output_trace = TraceAgent::<ValBatch<B1::Key, V2, R2>>::new(MergeEffort::Default);
        let operator = ReduceOperator::<B1, V2, R2, L> {
            name,
            logic,
            input_trace: self.trace.clone(),
            output_trace: output_trace.clone(),
            queue: Vec::new(),
            pending: BTreeSet::new(),
            input_frontier: Antichain::from_elem(Time::minimum()),
            output_upper: Antichain::from_elem(Time::minimum()),
            scratch: ReduceScratch::default(),
            _marker: PhantomData,
        };
        let node = builder.add_operator(Box::new(operator), 1);
        builder.connect(self.node, node, 0);
        Arranged {
            builder,
            node,
            depth: self.depth,
            trace: output_trace,
        }
    }
}

impl<K: Data, V: Data, R: Semigroup> Collection<(K, V), R> {
    /// Groups by key and applies `logic` to each key's accumulated values.
    pub fn reduce<V2, R2, L>(&self, logic: L) -> Collection<(K, V2), R2>
    where
        V2: Data,
        R2: Abelian,
        L: FnMut(&K, &[(V, R)], &mut Vec<(V2, R2)>) + 'static,
    {
        self.arrange_by_key()
            .reduce_core("Reduce", logic)
            .as_collection(|key, val| (key.clone(), val.clone()))
    }

    /// Retains, for each key, the single greatest value.
    pub fn max_by_key(&self) -> Collection<(K, V), Diff> {
        self.reduce(|_key, input, output| {
            if let Some((val, _)) = input.last() {
                output.push((val.clone(), 1));
            }
        })
    }

    /// Retains, for each key, the single least value.
    pub fn min_by_key(&self) -> Collection<(K, V), Diff> {
        self.reduce(|_key, input, output| {
            if let Some((val, _)) = input.first() {
                output.push((val.clone(), 1));
            }
        })
    }
}

impl<K: Data, R: Semigroup> Collection<K, R> {
    /// Reduces each record to a single instance (set semantics).
    pub fn distinct(&self) -> Collection<K, Diff>
    where
        R: Abelian,
    {
        self.threshold(|_, _| 1)
    }

    /// Maps each record's accumulated multiplicity through `logic`.
    ///
    /// `distinct` is `threshold(|_, _| 1)`; "records appearing at least three times" is
    /// `threshold(|_, count| if count >= 3 { 1 } else { 0 })`-style logic.
    pub fn threshold(&self, mut logic: impl FnMut(&K, &R) -> Diff + 'static) -> Collection<K, Diff>
    where
        R: Abelian,
    {
        let arranged: Arranged<KeyBatch<K, R>> = self.arrange_by_self();
        arranged
            .reduce_core(
                "Threshold",
                move |key, input, output: &mut Vec<((), Diff)>| {
                    let count = &input[0].1;
                    let multiplicity = logic(key, count);
                    if multiplicity != 0 {
                        output.push(((), multiplicity));
                    }
                },
            )
            .as_collection(|key, _| key.clone())
    }

    /// Counts the occurrences of each record, producing `(record, count)` pairs.
    pub fn count(&self) -> Collection<(K, R), Diff>
    where
        R: Abelian + Data,
    {
        let arranged: Arranged<KeyBatch<K, R>> = self.arrange_by_self();
        arranged
            .reduce_core("Count", |_key, input, output: &mut Vec<(R, Diff)>| {
                output.push((input[0].1.clone(), 1));
            })
            .as_collection(|key, count| (key.clone(), count.clone()))
    }
}
