//! End-to-end tests of the differential operators: incremental maintenance, joins,
//! reductions, iteration (the paper's Figure 1 reachability example), and sharing.

use std::collections::BTreeMap;

use kpg_core::prelude::*;
use kpg_dataflow::Time;

/// Merges captured update streams from all workers and accumulates the multiset of
/// records whose updates are at times `<= upto`.
fn accumulate<D: Ord + Clone>(
    captured: &[Vec<(D, Time, isize)>],
    upto: Time,
) -> BTreeMap<D, isize> {
    use kpg_timestamp::PartialOrder;
    let mut result = BTreeMap::new();
    for worker in captured {
        for (data, time, diff) in worker {
            if time.less_equal(&upto) {
                *result.entry(data.clone()).or_insert(0) += diff;
            }
        }
    }
    result.retain(|_, diff| *diff != 0);
    result
}

fn epoch(e: u64) -> Time {
    Time::from_epoch(e)
}

#[test]
fn map_filter_concat_negate() {
    let captured = execute(Config::new(1), |worker| {
        let (mut input, probe, captured) = worker.dataflow(|builder| {
            let (input, numbers) = new_collection::<u64, isize>(builder);
            let evens = numbers.filter(|x| x % 2 == 0);
            let doubled = evens.map(|x| x * 2);
            let with_original = doubled.concat(&numbers.filter(|x| x % 2 == 0));
            let minus_four = with_original.concat(&numbers.filter(|x| *x == 4).negate());
            let consolidated = minus_four.consolidate();
            let captured = consolidated.capture();
            let probe = consolidated.probe();
            (input, probe, captured)
        });
        for x in 0..6u64 {
            input.insert(x);
        }
        input.advance_to(1);
        worker.step_while(|| probe.less_than(&input.time()));
        let result = captured.borrow().clone();
        result
    });
    let totals = accumulate(&captured, epoch(0));
    // Evens 0,2,4 double to 0,4,8 and are concatenated with the evens themselves, then one
    // occurrence of 4 is removed.
    let expected: BTreeMap<u64, isize> = [(0u64, 2), (2, 1), (4, 1), (8, 1)].into_iter().collect();
    assert_eq!(totals, expected);
}

#[test]
fn count_and_distinct_maintain_updates() {
    let captured = execute(Config::new(1), |worker| {
        let (mut input, probe, counts, distinct) = worker.dataflow(|builder| {
            let (input, words) = new_collection::<String, isize>(builder);
            let counts = words.count().capture();
            let distinct_words = words.distinct();
            let probe = distinct_words.probe();
            let distinct = distinct_words.capture();
            (input, probe, counts, distinct)
        });

        input.insert("apple".to_string());
        input.insert("apple".to_string());
        input.insert("pear".to_string());
        input.advance_to(1);
        worker.step_while(|| probe.less_than(&input.time()));

        // Retract one apple and remove pear entirely.
        input.remove("apple".to_string());
        input.remove("pear".to_string());
        input.advance_to(2);
        worker.step_while(|| probe.less_than(&input.time()));

        let result = (counts.borrow().clone(), distinct.borrow().clone());
        result
    });

    let counts: Vec<_> = captured.iter().map(|(c, _)| c.clone()).collect();
    let distinct: Vec<_> = captured.iter().map(|(_, d)| d.clone()).collect();

    let counts_at_1 = accumulate(&counts, epoch(0));
    assert_eq!(counts_at_1.get(&("apple".to_string(), 2isize)), Some(&1));
    assert_eq!(counts_at_1.get(&("pear".to_string(), 1isize)), Some(&1));

    let counts_at_2 = accumulate(&counts, epoch(1));
    assert_eq!(counts_at_2.get(&("apple".to_string(), 1isize)), Some(&1));
    assert_eq!(counts_at_2.get(&("pear".to_string(), 1isize)), None);

    let distinct_at_1 = accumulate(&distinct, epoch(0));
    assert_eq!(distinct_at_1.len(), 2);
    let distinct_at_2 = accumulate(&distinct, epoch(1));
    assert_eq!(distinct_at_2.len(), 1);
    assert_eq!(distinct_at_2.get("apple"), Some(&1));
}

#[test]
fn join_maintains_matches_incrementally() {
    let captured = execute(Config::new(1), |worker| {
        let (mut people, mut cities, probe, captured) = worker.dataflow(|builder| {
            let (people_in, people) = new_collection::<(u32, String), isize>(builder);
            let (cities_in, cities) = new_collection::<(u32, String), isize>(builder);
            let joined = people.join(&cities);
            let probe = joined.probe();
            let captured = joined.capture();
            (people_in, cities_in, probe, captured)
        });

        people.insert((1, "alice".to_string()));
        people.insert((2, "bob".to_string()));
        cities.insert((1, "zurich".to_string()));
        people.advance_to(1);
        cities.advance_to(1);
        worker.step_while(|| probe.less_than(&Time::from_epoch(1)));

        // Add a city for bob and retract alice.
        cities.insert((2, "boston".to_string()));
        people.remove((1, "alice".to_string()));
        people.advance_to(2);
        cities.advance_to(2);
        worker.step_while(|| probe.less_than(&Time::from_epoch(2)));

        let result = captured.borrow().clone();
        result
    });

    let at_1 = accumulate(&captured, epoch(0));
    assert_eq!(at_1.len(), 1);
    assert_eq!(
        at_1.get(&(1u32, ("alice".to_string(), "zurich".to_string()))),
        Some(&1)
    );

    let at_2 = accumulate(&captured, epoch(1));
    assert_eq!(at_2.len(), 1);
    assert_eq!(
        at_2.get(&(2u32, ("bob".to_string(), "boston".to_string()))),
        Some(&1)
    );
}

#[test]
fn join_multiplies_multiplicities() {
    let captured = execute(Config::new(1), |worker| {
        let (mut left, mut right, probe, captured) = worker.dataflow(|builder| {
            let (left_in, left) = new_collection::<(u8, u8), isize>(builder);
            let (right_in, right) = new_collection::<(u8, u8), isize>(builder);
            let joined = left.join_map(&right, |k, a, b| (*k, *a, *b));
            (left_in, right_in, joined.probe(), joined.capture())
        });
        // Two copies on the left, three on the right: six matches.
        left.update((1, 10), 2);
        right.update((1, 20), 3);
        left.advance_to(1);
        right.advance_to(1);
        worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
        let result = captured.borrow().clone();
        result
    });
    let at_1 = accumulate(&captured, epoch(0));
    assert_eq!(at_1.get(&(1u8, 10u8, 20u8)), Some(&6));
}

#[test]
fn semijoin_and_antijoin_partition_keys() {
    let captured = execute(Config::new(1), |worker| {
        let (mut data, mut keys, probe, semi, anti) = worker.dataflow(|builder| {
            let (data_in, data) = new_collection::<(u32, u32), isize>(builder);
            let (keys_in, keys) = new_collection::<u32, isize>(builder);
            let semi = data.semijoin(&keys);
            let anti = data.antijoin(&keys.distinct());
            let probe = anti.probe();
            (data_in, keys_in, probe, semi.capture(), anti.capture())
        });
        for k in 0..4u32 {
            data.insert((k, k * 100));
        }
        keys.insert(1);
        keys.insert(3);
        data.advance_to(1);
        keys.advance_to(1);
        worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
        let result = (semi.borrow().clone(), anti.borrow().clone());
        result
    });
    let semi: Vec<_> = captured.iter().map(|(s, _)| s.clone()).collect();
    let anti: Vec<_> = captured.iter().map(|(_, a)| a.clone()).collect();
    let semi_at_1 = accumulate(&semi, epoch(0));
    let anti_at_1 = accumulate(&anti, epoch(0));
    assert_eq!(
        semi_at_1.keys().copied().collect::<Vec<_>>(),
        vec![(1, 100), (3, 300)]
    );
    assert_eq!(
        anti_at_1.keys().copied().collect::<Vec<_>>(),
        vec![(0, 0), (2, 200)]
    );
}

#[test]
fn reduce_tracks_maximum_per_key() {
    let captured = execute(Config::new(1), |worker| {
        let (mut input, probe, captured) = worker.dataflow(|builder| {
            let (input, readings) = new_collection::<(u8, u32), isize>(builder);
            let maxima = readings.max_by_key();
            (input, maxima.probe(), maxima.capture())
        });
        input.insert((1, 10));
        input.insert((1, 30));
        input.insert((2, 5));
        input.advance_to(1);
        worker.step_while(|| probe.less_than(&Time::from_epoch(1)));

        // Retract the maximum of key 1: the answer falls back to 10.
        input.remove((1, 30));
        input.advance_to(2);
        worker.step_while(|| probe.less_than(&Time::from_epoch(2)));
        let result = captured.borrow().clone();
        result
    });
    let at_1 = accumulate(&captured, epoch(0));
    assert_eq!(at_1.get(&(1u8, 30u32)), Some(&1));
    assert_eq!(at_1.get(&(2u8, 5u32)), Some(&1));
    assert_eq!(at_1.len(), 2);
    let at_2 = accumulate(&captured, epoch(1));
    assert_eq!(at_2.get(&(1u8, 10u32)), Some(&1));
    assert_eq!(at_2.get(&(1u8, 30u32)), None);
    assert_eq!(at_2.len(), 2);
}

/// The paper's Figure 1: interactive graph reachability, incrementally maintained while
/// both the query set and the edge set change.
#[test]
fn figure_one_reachability_is_incrementally_maintained() {
    let captured = execute(Config::new(1), |worker| {
        let (mut query, mut edges, probe, captured) = worker.dataflow(|builder| {
            let (query_in, query) = new_collection::<(u32, u32), isize>(builder);
            let (edges_in, edges) = new_collection::<(u32, u32), isize>(builder);

            // Reachability: seed with query sources, repeatedly extend along edges.
            let seeds = query.map(|(src, _dst)| (src, src)).distinct();
            let reached = seeds.iterate(|reach| {
                let edges = edges.enter();
                let seeds = seeds.enter();
                // reach: (node, root); follow edges from node, keeping the root.
                let expanded = reach
                    .map(|(node, root)| (node, root))
                    .join_map(&edges, |_node, root, next| (*next, *root));
                expanded
                    .concat(&seeds)
                    .distinct()
                    .map(|(node, root)| (node, root))
            });

            // Intersect with the query pairs: (dst, src) reached means query (src, dst) holds.
            let answers = query
                .map(|(src, dst)| ((dst, src), ()))
                .semijoin(&reached.map(|(node, root)| (node, root)))
                .map(|((dst, src), ())| (src, dst));

            let probe = answers.probe();
            let captured = answers.capture();
            (query_in, edges_in, probe, captured)
        });

        // Graph: 1 -> 2 -> 3, 4 -> 5. Queries: (1, 3) reachable, (1, 5) not.
        for edge in [(1, 2), (2, 3), (4, 5)] {
            edges.insert(edge);
        }
        query.insert((1, 3));
        query.insert((1, 5));
        edges.advance_to(1);
        query.advance_to(1);
        worker.step_while(|| probe.less_than(&Time::from_epoch(1)));

        // Add the edge 3 -> 4: now (1, 5) becomes reachable.
        edges.insert((3, 4));
        edges.advance_to(2);
        query.advance_to(2);
        worker.step_while(|| probe.less_than(&Time::from_epoch(2)));

        // Remove 2 -> 3: both answers disappear.
        edges.remove((2, 3));
        edges.advance_to(3);
        query.advance_to(3);
        worker.step_while(|| probe.less_than(&Time::from_epoch(3)));

        let result = captured.borrow().clone();
        result
    });

    let at_1 = accumulate(&captured, epoch(0));
    assert_eq!(at_1.get(&(1u32, 3u32)), Some(&1));
    assert_eq!(at_1.get(&(1u32, 5u32)), None);

    let at_2 = accumulate(&captured, epoch(1));
    assert_eq!(at_2.get(&(1u32, 3u32)), Some(&1));
    assert_eq!(at_2.get(&(1u32, 5u32)), Some(&1));

    let at_3 = accumulate(&captured, epoch(2));
    assert!(
        at_3.is_empty(),
        "removing 2->3 disconnects both queries: {at_3:?}"
    );
}

#[test]
fn arrangements_are_shared_between_operators() {
    // One arrangement of `edges` serves both a count and a join, and its trace reports a
    // single copy of the data.
    let stats = execute(Config::new(1), |worker| {
        let (mut edges_in, probe, degrees, matches, trace_len) = worker.dataflow(|builder| {
            let (edges_in, edges) = new_collection::<(u32, u32), isize>(builder);
            let arranged = edges.arrange_by_key();
            // Consumer 1: out-degrees, reading the shared arrangement.
            let degrees = arranged
                .reduce_core("Degrees", |_k, input, output: &mut Vec<(isize, isize)>| {
                    let total: isize = input.iter().map(|(_, r)| *r).sum();
                    output.push((total, 1));
                })
                .as_collection(|k, d| (*k, *d));
            // Consumer 2: self-join on source, also reading the shared arrangement.
            let matches = arranged.join_core(&arranged, |k, a, b| (*k, *a, *b));
            let probe = degrees.probe();
            let trace = arranged.trace;
            (edges_in, probe, degrees.capture(), matches.capture(), trace)
        });
        for (src, dst) in [(1u32, 2u32), (1, 3), (2, 3)] {
            edges_in.insert((src, dst));
        }
        edges_in.advance_to(1);
        worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
        let result = (
            degrees.borrow().clone(),
            matches.borrow().clone(),
            trace_len.len(),
        );
        result
    });

    let degrees: Vec<_> = stats.iter().map(|(d, _, _)| d.clone()).collect();
    let matches: Vec<_> = stats.iter().map(|(_, m, _)| m.clone()).collect();
    let trace_len: usize = stats.iter().map(|(_, _, l)| *l).sum();

    let degrees_at_1 = accumulate(&degrees, epoch(0));
    assert_eq!(degrees_at_1.get(&(1u32, 2isize)), Some(&1));
    assert_eq!(degrees_at_1.get(&(2u32, 1isize)), Some(&1));

    let matches_at_1 = accumulate(&matches, epoch(0));
    // Key 1 has two destinations: 2x2 = 4 pairs; key 2 has one: 1 pair.
    assert_eq!(matches_at_1.values().sum::<isize>(), 5);

    // The shared trace holds exactly the three edges, once.
    assert_eq!(trace_len, 3);
}

#[test]
fn arrangements_import_into_new_dataflows() {
    let results = execute(Config::new(1), |worker| {
        // Dataflow 1 arranges the collection and keeps it maintained.
        let (mut input, probe1, trace) = worker.dataflow(|builder| {
            let (input, data) = new_collection::<(u32, u32), isize>(builder);
            let arranged = data.arrange_by_key();
            (input, arranged.probe(), arranged.trace)
        });
        input.insert((1, 10));
        input.insert((2, 20));
        input.advance_to(1);
        worker.step_while(|| probe1.less_than(&Time::from_epoch(1)));

        // Dataflow 2 imports the arrangement after the fact and counts per key.
        let (probe2, counts) = worker.dataflow(|builder| {
            let imported = trace.import(builder);
            let counts = imported
                .reduce_core("Count", |_k, input, output: &mut Vec<(isize, isize)>| {
                    let total: isize = input.iter().map(|(_, r)| *r).sum();
                    output.push((total, 1));
                })
                .as_collection(|k, c| (*k, *c));
            (counts.probe(), counts.capture())
        });
        // Step until the imported history has been processed.
        worker.step_while(|| probe2.less_than(&Time::from_epoch(1)));

        // Continue updating the original input; the imported dataflow follows along.
        input.insert((1, 11));
        input.advance_to(2);
        worker.step_while(|| {
            probe1.less_than(&Time::from_epoch(2)) || probe2.less_than(&Time::from_epoch(2))
        });
        let result = counts.borrow().clone();
        result
    });

    let at_1 = accumulate(&results, epoch(0));
    assert_eq!(at_1.get(&(1u32, 1isize)), Some(&1));
    assert_eq!(at_1.get(&(2u32, 1isize)), Some(&1));
    let at_2 = accumulate(&results, epoch(1));
    assert_eq!(
        at_2.get(&(1u32, 2isize)),
        Some(&1),
        "imported dataflow tracks new updates"
    );
}

#[test]
fn two_workers_agree_with_one() {
    // The same computation on one and two workers produces the same accumulated output.
    fn run(workers: usize) -> BTreeMap<(u32, isize), isize> {
        let captured = execute(Config::new(workers), |worker| {
            let (mut input, probe, captured) = worker.dataflow(|builder| {
                let (input, pairs) = new_collection::<(u32, u32), isize>(builder);
                let counts = pairs.map(|(k, _)| k).count();
                (input, counts.probe(), counts.capture())
            });
            // Each worker inserts a disjoint shard of the input.
            for i in 0..100u32 {
                if (i as usize) % worker.peers() == worker.index() {
                    input.insert((i % 10, i));
                }
            }
            input.advance_to(1);
            worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
            let result = captured.borrow().clone();
            result
        });
        accumulate(&captured, epoch(0))
    }
    let one = run(1);
    let two = run(2);
    assert_eq!(one, two);
    assert_eq!(one.len(), 10);
    assert!(one.keys().all(|(_, count)| *count == 10));
}
