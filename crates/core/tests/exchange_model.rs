//! Model test of the exchange → arrange hot path: for a seeded update stream, the
//! pooled-bucket exchange and the amortized batch builder must produce batches that are
//! *byte-identical* — same keys, key offsets, values, value offsets, update histories,
//! and descriptions — to a reference scalar path (shard by routing hash, then
//! sort-then-coalesce), on both 1 and 2 workers.

use kpg_sync::{Arc, Mutex};

use kpg_core::operators::route_hash;
use kpg_core::prelude::*;
use kpg_dataflow::operator::{downcast_payload, BundleBox, Operator, OutputContext};
use kpg_dataflow::Time;
use kpg_timestamp::rng::SmallRng;
use kpg_timestamp::Antichain;
use kpg_trace::BatchReader;

type Batch = ValBatch<u64, u64, isize>;

/// One captured batch, flattened to plain owned data so it can cross the worker
/// boundary in the `execute` result.
#[derive(Debug, PartialEq, Eq)]
struct BatchImage {
    lower: Vec<Time>,
    upper: Vec<Time>,
    since: Vec<Time>,
    keys: Vec<u64>,
    key_offs: Vec<usize>,
    vals: Vec<u64>,
    val_offs: Vec<usize>,
    updates: Vec<(Time, isize)>,
}

impl BatchImage {
    fn of(batch: &Batch) -> Self {
        let storage = batch.storage();
        BatchImage {
            lower: batch.description().lower().elements().to_vec(),
            upper: batch.description().upper().elements().to_vec(),
            since: batch.description().since().elements().to_vec(),
            keys: storage.keys.clone(),
            key_offs: storage.key_offs.clone(),
            vals: storage.vals.clone(),
            val_offs: storage.val_offs.clone(),
            updates: storage.updates.clone(),
        }
    }
}

/// Taps the arrange operator's batch stream, recording a clone of every batch.
struct CaptureBatches {
    batches: Arc<Mutex<Vec<Batch>>>,
}

impl Operator for CaptureBatches {
    fn name(&self) -> &str {
        "CaptureBatches"
    }
    fn recv(&mut self, _port: usize, payload: BundleBox) {
        let batch = downcast_payload::<Batch>(payload, "CaptureBatches");
        self.batches.lock().unwrap().push(batch);
    }
    fn work(&mut self, _output: &mut OutputContext<'_>) -> bool {
        false
    }
    fn set_frontier(&mut self, _port: usize, _frontier: &Antichain<Time>) {}
    fn capabilities(&self, _into: &mut Antichain<Time>) {}
}

/// The seeded update stream: `rounds` epochs of `per_epoch` upserts/retractions over a
/// small key domain, identical on every worker.
fn script(rounds: u64, per_epoch: usize) -> Vec<Vec<((u64, u64), isize)>> {
    let mut rng = SmallRng::seed_from_u64(0xE4C4A26E);
    (0..rounds)
        .map(|_| {
            (0..per_epoch)
                .map(|_| {
                    (
                        (rng.gen_range(0..64u64), rng.gen_range(0..8u64)),
                        if rng.gen_range(0..4u32) == 0 { -1 } else { 1 },
                    )
                })
                .collect()
        })
        .collect()
}

/// The reference scalar path for one worker's shard of one epoch: filter by routing
/// hash, then sort-then-coalesce by `(key, val, time)` into the columnar layout.
fn reference_batch(
    epoch_updates: &[((u64, u64), isize)],
    time: Time,
    worker: usize,
    peers: usize,
    lower: u64,
    upper: u64,
) -> BatchImage {
    let mut shard: Vec<(u64, u64, Time, isize)> = epoch_updates
        .iter()
        .filter(|((k, _), _)| (route_hash(k) as usize) % peers == worker)
        .map(|((k, v), r)| (*k, *v, time, *r))
        .collect();
    shard.sort_by_key(|update| (update.0, update.1, update.2));

    let mut coalesced: Vec<(u64, u64, Time, isize)> = Vec::new();
    for (k, v, t, r) in shard {
        match coalesced.last_mut() {
            Some(last) if last.0 == k && last.1 == v && last.2 == t => last.3 += r,
            _ => coalesced.push((k, v, t, r)),
        }
        if coalesced.last().map(|last| last.3 == 0).unwrap_or(false) {
            coalesced.pop();
        }
    }

    let mut image = BatchImage {
        lower: vec![Time::from_epoch(lower)],
        upper: vec![Time::from_epoch(upper)],
        since: vec![Time::minimum()],
        keys: Vec::new(),
        key_offs: vec![0],
        vals: Vec::new(),
        val_offs: vec![0],
        updates: Vec::new(),
    };
    for (k, v, t, r) in coalesced {
        let new_key = image.keys.last() != Some(&k);
        if new_key {
            if !image.keys.is_empty() {
                image.key_offs.push(image.vals.len());
            }
            image.keys.push(k);
        }
        if new_key || image.vals.last() != Some(&v) {
            if !image.vals.is_empty() {
                image.val_offs.push(image.updates.len());
            }
            image.vals.push(v);
        }
        image.updates.push((t, r));
    }
    if !image.vals.is_empty() {
        image.val_offs.push(image.updates.len());
    }
    if !image.keys.is_empty() {
        image.key_offs.push(image.vals.len());
    }
    image
}

/// Runs the seeded stream through exchange → arrange on `peers` workers and checks every
/// captured batch byte-for-byte against the reference scalar path.
fn run_and_check(peers: usize) {
    let rounds = 12u64;
    let per_epoch = 400usize;
    let results = execute(Config::new(peers), move |worker| {
        let index = worker.index();
        let peers = worker.peers();
        let captured = Arc::new(Mutex::new(Vec::new()));
        let capture = Arc::clone(&captured);
        let (mut input, probe) = worker.dataflow(move |builder| {
            let (input, collection) = new_collection::<(u64, u64), isize>(builder);
            let arranged = collection.arrange_by_key();
            let node = builder.add_operator(Box::new(CaptureBatches { batches: capture }), 1);
            builder.connect(arranged.node(), node, 0);
            (input, arranged.probe())
        });

        let script = script(rounds, per_epoch);
        for (epoch, epoch_updates) in script.iter().enumerate() {
            // Shard the input round-robin; the exchange re-routes it by key hash.
            for (i, ((k, v), r)) in epoch_updates.iter().enumerate() {
                if i % peers == index {
                    input.update((*k, *v), *r);
                }
            }
            let next = epoch as u64 + 1;
            input.advance_to(next);
            worker.step_while(|| probe.less_than(&Time::from_epoch(next)));
        }

        let images: Vec<BatchImage> = captured
            .lock()
            .unwrap()
            .iter()
            .map(BatchImage::of)
            .collect();
        (index, images)
    });

    let script = script(rounds, per_epoch);
    let empty: Vec<((u64, u64), isize)> = Vec::new();
    for (index, images) in results {
        assert!(
            !images.is_empty(),
            "worker {index} of {peers} captured no batches"
        );
        let mut expected_lower = 0u64;
        for image in images {
            assert_eq!(
                image.lower,
                vec![Time::from_epoch(expected_lower)],
                "worker {index}: batches must abut"
            );
            assert_eq!(image.upper.len(), 1, "flat times have singleton frontiers");
            let upper = image.upper[0].epoch();
            // Every epoch in [lower, upper) must have landed in this batch; with one
            // epoch per frontier advance that is exactly one script round (or none, for
            // an empty range minted while idling).
            assert!(
                upper == expected_lower + 1,
                "worker {index}: unexpected batch bounds [{expected_lower}, {upper})"
            );
            let epoch_updates = script.get(expected_lower as usize).unwrap_or(&empty);
            let reference = reference_batch(
                epoch_updates,
                Time::from_epoch(expected_lower),
                index,
                peers,
                expected_lower,
                upper,
            );
            assert_eq!(
                image, reference,
                "worker {index} of {peers}: batch [{expected_lower}, {upper}) diverged \
                 from the reference scalar path"
            );
            expected_lower = upper;
        }
        assert_eq!(
            expected_lower, rounds,
            "worker {index}: captured batches must cover every epoch"
        );
    }
}

#[test]
fn exchange_and_builder_match_reference_one_worker() {
    run_and_check(1);
}

#[test]
fn exchange_and_builder_match_reference_two_workers() {
    run_and_check(2);
}

/// Steady state must not allocate per flush: after the first flush has sized the
/// per-destination buckets, their capacities never change again.
#[test]
fn exchange_buckets_retain_capacity_across_flushes() {
    use kpg_core::operators::{Exchange, UpdateVec};
    use kpg_dataflow::operator::drive_operator_work;

    let mut exchange = Exchange::<u64, isize, _>::new(|x: &u64| *x);
    let mut warmed: Option<Vec<usize>> = None;
    for flush in 0..32 {
        let payload: UpdateVec<u64, isize> = (0..300u64)
            .map(|i| (i, Time::from_epoch(flush), 1isize))
            .collect();
        exchange.recv(0, Box::new(payload));
        let (did_work, sent) = drive_operator_work(&mut exchange, 0, 2);
        assert!(did_work);
        assert_eq!(sent.len(), 2, "both destinations receive a payload");
        for (destination, payload) in sent {
            let updates = *payload
                .into_any()
                .downcast::<UpdateVec<u64, isize>>()
                .expect("exchange emits update buffers");
            assert_eq!(updates.len(), 150);
            let worker = destination.unwrap_or(0);
            assert!(
                updates.iter().all(|(k, _, _)| (*k as usize) % 2 == worker),
                "flush {flush}: records routed to the wrong worker"
            );
        }
        match &warmed {
            None => warmed = Some(exchange.bucket_capacities()),
            Some(capacities) => assert_eq!(
                &exchange.bucket_capacities(),
                capacities,
                "flush {flush}: bucket capacities changed after warmup"
            ),
        }
    }
}

/// With one worker the routing closure is skipped entirely: payloads are forwarded
/// verbatim (however many arrived in the flush) and no buckets are ever materialized.
#[test]
fn exchange_single_worker_forwards_payloads_verbatim() {
    use kpg_core::operators::{Exchange, UpdateVec};
    use kpg_dataflow::operator::drive_operator_work;

    let mut exchange = Exchange::<u64, isize, _>::new(|_: &u64| {
        panic!("routing closure invoked on the single-worker fast path");
    });
    let first: UpdateVec<u64, isize> = vec![(1, Time::minimum(), 1), (2, Time::minimum(), 1)];
    let second: UpdateVec<u64, isize> = vec![(3, Time::minimum(), -1)];
    exchange.recv(0, Box::new(first.clone()));
    exchange.recv(0, Box::new(second.clone()));
    let (did_work, sent) = drive_operator_work(&mut exchange, 0, 1);
    assert!(did_work);
    let forwarded: Vec<UpdateVec<u64, isize>> = sent
        .into_iter()
        .map(|(destination, payload)| {
            assert_eq!(destination, None, "single worker delivers locally");
            *payload
                .into_any()
                .downcast::<UpdateVec<u64, isize>>()
                .expect("exchange emits update buffers")
        })
        .collect();
    assert_eq!(forwarded, vec![first, second], "payloads forwarded as-is");
    assert!(
        exchange.bucket_capacities().is_empty(),
        "no buckets materialized without routing"
    );
}
