//! The sharing lifecycle end to end: publish an arrangement, install queries against it
//! by name, retire one mid-stream, and verify that (a) the survivor's results are
//! unaffected and (b) the departed query's read frontiers are released so the shared
//! spine's compaction frontier advances past them.

use std::collections::BTreeMap;

use kpg_core::arrange::ValBatch;
use kpg_core::prelude::*;
use kpg_timestamp::{Antichain, PartialOrder};

/// Accumulates captured `(data, time, diff)` updates up to and including `epoch`.
fn accumulate<D: Ord + Clone>(updates: &[(D, Time, isize)], epoch: u64) -> BTreeMap<D, isize> {
    let mut map = BTreeMap::new();
    for (data, time, diff) in updates {
        if time.less_equal(&Time::from_epoch(epoch)) {
            *map.entry(data.clone()).or_insert(0) += diff;
        }
    }
    map.retain(|_, v| *v != 0);
    map
}

/// Builds the canonical session: a published edge arrangement plus two queries reading
/// it (per-key counts, and a value filter), runs it to epoch 1, uninstalls the counts
/// query, keeps the survivor running through epoch 3, and returns the observations.
fn run_lifecycle(workers: usize) -> Vec<LifecycleObservations> {
    execute(Config::new(workers), |worker| {
        let catalog = Catalog::new();

        // Publish the shared arrangement under a name.
        let (mut edges, graph_probe) = worker.install("graph", {
            let catalog = catalog.clone();
            move |builder| {
                let (input, edges) = new_collection::<(u32, u32), isize>(builder);
                let arranged = edges.arrange_by_key();
                catalog.publish_if_absent("edges", &arranged).unwrap();
                (input, arranged.probe())
            }
        });
        for n in 0..50u32 {
            if n as usize % worker.peers() == worker.index() {
                edges.insert((n % 10, n));
            }
        }
        edges.advance_to(1);
        worker.step_while(|| graph_probe.less_than(&edges.time()));

        // Install two queries against the published arrangement.
        let counts = worker
            .install_query("counts", &catalog, |builder, catalog| {
                let imported = catalog
                    .import::<ValBatch<u32, u32>>("edges", builder)
                    .unwrap();
                let counts = imported
                    .reduce_core("Count", |_k, input, output: &mut Vec<(isize, isize)>| {
                        output.push((input.iter().map(|(_, r)| *r).sum(), 1));
                    })
                    .as_collection(|k, c| (*k, *c));
                (counts.probe(), counts.capture())
            })
            .unwrap();
        let survivor = worker
            .install_query("survivor", &catalog, |builder, catalog| {
                let imported = catalog
                    .import::<ValBatch<u32, u32>>("edges", builder)
                    .unwrap();
                let hits = imported
                    .as_collection(|k, v| (*k, *v))
                    .filter(|(_, v)| *v % 2 == 0);
                (hits.probe(), hits.capture())
            })
            .unwrap();
        assert_eq!(worker.installed(), vec!["graph", "counts", "survivor"]);

        let (counts_probe, counts_results) = &counts.result;
        let (survivor_probe, survivor_results) = &survivor.result;
        worker.step_while(|| {
            counts_probe.less_than(&edges.time()) || survivor_probe.less_than(&edges.time())
        });
        let counts_at_0 = accumulate(&counts_results.borrow(), 0);
        let survivor_at_0 = accumulate(&survivor_results.borrow(), 0);
        let since_before = catalog.since("edges").unwrap();

        // Retire the counts query. Its dataflow leaves the scheduler and every reader it
        // registered (import handle, join/reduce trace handles) is dropped.
        assert!(worker.uninstall_query("counts", &catalog));
        assert!(!worker.uninstall_query("counts", &catalog), "idempotent");
        assert_eq!(worker.installed(), vec!["graph", "survivor"]);

        // Keep the computation moving: more input, later epochs, catalog hygiene.
        edges.insert((3, 100 + worker.index() as u32 * 2));
        edges.advance_to(3);
        catalog.advance_all(Antichain::from_elem(Time::from_epoch(2)).borrow());
        worker.step_while(|| survivor_probe.less_than(&edges.time()));

        let survivor_at_2 = accumulate(&survivor_results.borrow(), 2);
        let since_after = catalog.since("edges").unwrap();
        let counts_frozen = accumulate(&counts_results.borrow(), 2);

        LifecycleObservations {
            counts_at_0,
            survivor_at_0,
            survivor_at_2,
            counts_frozen,
            since_before,
            since_after,
        }
    })
}

struct LifecycleObservations {
    counts_at_0: BTreeMap<(u32, isize), isize>,
    survivor_at_0: BTreeMap<(u32, u32), isize>,
    survivor_at_2: BTreeMap<(u32, u32), isize>,
    counts_frozen: BTreeMap<(u32, isize), isize>,
    since_before: Antichain<Time>,
    since_after: Antichain<Time>,
}

#[test]
fn uninstall_releases_readers_and_preserves_survivors() {
    for workers in [1usize, 2] {
        let observations = run_lifecycle(workers);

        // Single-worker observations carry the full picture; with two workers each
        // holds a shard, so merge the captures.
        let mut survivor_at_0 = BTreeMap::new();
        let mut survivor_at_2 = BTreeMap::new();
        for obs in &observations {
            for (k, v) in &obs.survivor_at_0 {
                *survivor_at_0.entry(*k).or_insert(0) += v;
            }
            for (k, v) in &obs.survivor_at_2 {
                *survivor_at_2.entry(*k).or_insert(0) += v;
            }
        }
        survivor_at_0.retain(|_, v| *v != 0);
        survivor_at_2.retain(|_, v| *v != 0);

        // (a) The survivor's epoch-0 answers are unchanged by the uninstall, and its
        // view keeps evolving: the even values 100/102 arrive for key 3 at epoch 2.
        let expected_at_0: BTreeMap<(u32, u32), isize> = (0..50u32)
            .filter(|n| n % 2 == 0)
            .map(|n| ((n % 10, n), 1))
            .collect();
        assert_eq!(survivor_at_0, expected_at_0, "workers = {workers}");
        let mut expected_at_2 = expected_at_0.clone();
        for w in 0..workers as u32 {
            expected_at_2.insert((3, 100 + w * 2), 1);
        }
        assert_eq!(survivor_at_2, expected_at_2, "workers = {workers}");

        for obs in &observations {
            // The uninstalled query's results are frozen exactly as of the uninstall.
            assert_eq!(obs.counts_frozen, obs.counts_at_0, "workers = {workers}");
            assert!(!obs.counts_at_0.is_empty());

            // (b) The shared spine's compaction frontier advances past the departed
            // reader's since: before the uninstall it could not pass the epoch-0 reads
            // the counts query was pinning; afterwards it reaches epoch 2.
            assert!(
                obs.since_before.less_equal(&Time::from_epoch(1)),
                "workers = {workers}: pinned since {:?}",
                obs.since_before
            );
            assert!(
                obs.since_after
                    .elements()
                    .iter()
                    .all(|t| *t >= Time::from_epoch(2)),
                "workers = {workers}: compaction frontier {:?} did not pass the departed reader",
                obs.since_after
            );
            assert!(
                !obs.since_after.less_equal(&Time::from_epoch(1)),
                "workers = {workers}: epoch-1 history still pinned after uninstall"
            );
        }
    }
}

/// Query churn end to end: many install/uninstall cycles against a published
/// arrangement reuse dataflow slots (the slot table stays at its peak-live size),
/// leave the catalog's reader table at its pre-churn size, and return the reader
/// count to its baseline — on one worker and on two.
#[test]
fn query_churn_keeps_slots_and_reader_tables_bounded() {
    for workers in [1usize, 2] {
        let cycles = 50usize;
        let observations = execute(Config::new(workers), move |worker| {
            let catalog = Catalog::new();
            let (mut edges, graph_probe) = worker.install("graph", {
                let catalog = catalog.clone();
                move |builder| {
                    let (input, edges) = new_collection::<(u32, u32), isize>(builder);
                    let arranged = edges.arrange_by_key();
                    catalog.publish_if_absent("edges", &arranged).unwrap();
                    (input, arranged.probe())
                }
            });
            for n in 0..20u32 {
                if n as usize % worker.peers() == worker.index() {
                    edges.insert((n % 5, n));
                }
            }
            edges.advance_to(1);
            worker.step_while(|| graph_probe.less_than(&edges.time()));

            let baseline_readers = catalog.reader_count("edges").unwrap();
            let mut slot_high = 0usize;
            let mut reader_slots_after_first = 0usize;
            let mut epoch = 1u64;
            for cycle in 0..cycles {
                let name = format!("q{cycle}");
                let query = worker
                    .install_query(&name, &catalog, |builder, catalog| {
                        let imported = catalog
                            .import::<ValBatch<u32, u32>>("edges", builder)
                            .unwrap();
                        imported.as_collection(|k, v| (*k, *v)).probe()
                    })
                    .unwrap();
                epoch += 1;
                edges.advance_to(epoch);
                let probe = query.result.clone();
                worker.step_while(|| probe.less_than(&edges.time()));
                slot_high = slot_high.max(worker.dataflow_count());
                if cycle == 0 {
                    reader_slots_after_first = catalog.reader_slots("edges").unwrap();
                }
                assert!(worker.uninstall_query(&name, &catalog));
            }

            let final_slots = worker.dataflow_count();
            let final_live = worker.live_dataflow_count();
            let final_readers = catalog.reader_count("edges").unwrap();
            let final_reader_slots = catalog.reader_slots("edges").unwrap();
            (
                baseline_readers,
                slot_high,
                reader_slots_after_first,
                final_slots,
                final_live,
                final_readers,
                final_reader_slots,
            )
        });
        for (
            baseline_readers,
            slot_high,
            reader_slots_after_first,
            final_slots,
            final_live,
            final_readers,
            final_reader_slots,
        ) in observations
        {
            // The graph dataflow plus exactly one reused query slot.
            assert_eq!(slot_high, 2, "workers = {workers}");
            assert_eq!(final_slots, 2, "workers = {workers}");
            assert_eq!(final_live, 1, "workers = {workers}");
            // Departed queries release their readers: the count returns to baseline and
            // the reader table never grows past its first-cycle high-water mark.
            assert_eq!(final_readers, baseline_readers, "workers = {workers}");
            assert!(
                final_reader_slots <= reader_slots_after_first,
                "workers = {workers}: reader table grew under churn: {reader_slots_after_first} -> {final_reader_slots}"
            );
        }
    }
}

/// Reader-slot hygiene: churning many short-lived handles (clones and lookups) reuses
/// slots instead of growing the reader table, and departed readers stop pinning
/// compaction.
#[test]
fn reader_slots_are_reused_after_drop() {
    let catalog = Catalog::new();
    let trace = TraceAgent::<ValBatch<u32, u32>>::new(MergeEffort::Default);
    catalog.publish_trace_if_absent("edges", &trace).unwrap();
    let baseline = trace.reader_slot_capacity();
    for _ in 0..1000 {
        let looked = catalog.lookup::<ValBatch<u32, u32>>("edges").unwrap();
        drop(looked);
    }
    assert!(
        trace.reader_slot_capacity() <= baseline + 1,
        "reader table grew under churn: {} -> {}",
        baseline,
        trace.reader_slot_capacity()
    );
    assert_eq!(trace.reader_count(), 2, "trace handle + catalog entry");
}
