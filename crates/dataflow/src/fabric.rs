//! The exchange fabric: channels connecting workers.
//!
//! Workers are independent threads, each running an identical dataflow graph over its own
//! shard of the data (paper §3.1). Data crosses worker boundaries only at explicit
//! exchange operators; everything else is worker-local. The fabric provides one inbox per
//! worker and cloneable senders to every inbox, plus a global count of messages in flight
//! used by the quiescence protocol.

use kpg_sync::atomic::{AtomicI64, Ordering};
use kpg_sync::mpsc::{channel, Receiver, Sender};
use kpg_sync::Arc;

use crate::operator::BundleBox;

/// A message sent between workers: a payload destined for an edge of a dataflow.
///
/// Dataflow slots are reused after uninstall, so the address is the pair
/// `(dataflow, generation)`: a message whose generation is older than the slot's current
/// occupant is acknowledged and discarded by the receiver instead of being delivered to
/// the wrong dataflow, and a message for a generation (or slot) the receiver has not yet
/// constructed is buffered until it has.
pub struct RemoteMessage {
    /// The index of the dataflow slot within the worker.
    pub dataflow: usize,
    /// The generation of the slot's occupant the message is addressed to.
    pub generation: u64,
    /// The edge (channel) within the dataflow the payload travels along.
    pub edge: usize,
    /// The type-erased payload.
    pub payload: BundleBox,
}

/// Shared state for routing messages between workers.
pub struct Fabric {
    senders: Vec<Sender<RemoteMessage>>,
    in_flight: AtomicI64,
}

impl Fabric {
    /// Creates a fabric for `workers` workers, returning the shared fabric and each
    /// worker's private inbox.
    pub fn new(workers: usize) -> (Arc<Fabric>, Vec<Receiver<RemoteMessage>>) {
        let mut senders = Vec::with_capacity(workers);
        let mut receivers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        (
            Arc::new(Fabric {
                senders,
                in_flight: AtomicI64::new(0),
            }),
            receivers,
        )
    }

    /// Sends a message to `worker`'s inbox, incrementing the in-flight count.
    ///
    /// The increment is `Relaxed`: the counter is only compared against zero by the
    /// quiescence protocol, which reads it *after* a barrier that already orders every
    /// worker's sends and acknowledgements, and the increment is ordered before the
    /// matching decrement by the channel transfer itself (a receiver can only
    /// acknowledge a message that was observably sent). `SeqCst` here serialized every
    /// cross-worker message through one globally ordered RMW for no protocol benefit.
    pub fn send(&self, worker: usize, message: RemoteMessage) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        self.senders[worker]
            .send(message)
            .expect("worker inbox disconnected");
    }

    /// Records that a previously sent message has been received and enqueued locally.
    pub fn acknowledge(&self) {
        self.acknowledge_n(1);
    }

    /// Records `count` received messages with a single decrement, so an inbox drain
    /// sweep costs one atomic operation instead of one per message.
    ///
    /// `AcqRel`: the release half publishes the local enqueueing that preceded the
    /// acknowledgement, and the acquire half pairs with other workers' decrements, so a
    /// worker that reads zero in-flight also observes every delivery that got it there.
    pub fn acknowledge_n(&self, count: usize) {
        if count > 0 {
            self.in_flight.fetch_sub(count as i64, Ordering::AcqRel);
        }
    }

    /// The number of messages sent but not yet received.
    pub fn in_flight(&self) -> i64 {
        self.in_flight.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_tracks_in_flight_messages() {
        let (fabric, receivers) = Fabric::new(2);
        assert_eq!(fabric.in_flight(), 0);
        fabric.send(
            1,
            RemoteMessage {
                dataflow: 0,
                generation: 0,
                edge: 3,
                payload: Box::new(vec![1u64]),
            },
        );
        assert_eq!(fabric.in_flight(), 1);
        let message = receivers[1].try_recv().expect("message delivered");
        fabric.acknowledge();
        assert_eq!(message.edge, 3);
        assert_eq!(fabric.in_flight(), 0);
        assert!(receivers[0].try_recv().is_err());
    }
}
