//! Dataflow graph structure: nodes, edges, and timestamp transforms along edges.

use kpg_timestamp::{Antichain, Time};

/// Identifies a node (operator) within a dataflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifies an edge (channel) within a dataflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeId(pub usize);

/// How timestamps are transformed along an edge, for progress-tracking purposes.
///
/// Data is re-timestamped by the node at the edge's source (a feedback node increments
/// the round of everything it forwards; a leave node strips rounds); the matching
/// transform on the outgoing edge tells the progress tracker how the node's *output
/// frontier* maps onto the times its successors may observe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeTransform {
    /// Times pass through unchanged.
    Identity,
    /// The iteration round at `depth` is incremented by one (a loop feedback edge).
    Feedback {
        /// The loop nesting depth whose round coordinate advances (1 or 2).
        depth: usize,
    },
    /// The iteration rounds at `depth` and deeper are reset to zero (a loop exit edge).
    Leave {
        /// The loop nesting depth being exited.
        depth: usize,
    },
}

impl EdgeTransform {
    /// Applies the transform to a single time.
    pub fn apply(&self, time: &Time) -> Time {
        match self {
            EdgeTransform::Identity => *time,
            EdgeTransform::Feedback { depth } => time.advanced(*depth, 1),
            EdgeTransform::Leave { depth } => time.left(*depth),
        }
    }

    /// Applies the transform to a frontier.
    pub fn apply_frontier(&self, frontier: &Antichain<Time>) -> Antichain<Time> {
        Antichain::from_iter(frontier.elements().iter().map(|t| self.apply(t)))
    }
}

/// A directed edge from one node's output to another node's input port.
#[derive(Clone, Debug)]
pub struct EdgeDesc {
    /// The source node.
    pub from: NodeId,
    /// The destination node.
    pub to: NodeId,
    /// The destination input port.
    pub port: usize,
    /// The timestamp transform applied along the edge for progress tracking.
    pub transform: EdgeTransform,
}

/// The structural description of a dataflow: shared by all workers, who each instantiate
/// their own operator state for every node.
#[derive(Clone, Debug, Default)]
pub struct DataflowGraph {
    /// The number of nodes; node ids are `0..nodes`.
    pub nodes: usize,
    /// Human-readable operator names, for debugging.
    pub names: Vec<String>,
    /// The number of input ports of each node.
    pub input_ports: Vec<usize>,
    /// All edges.
    pub edges: Vec<EdgeDesc>,
}

impl DataflowGraph {
    /// Removes every node and channel from the graph, returning how many nodes were
    /// retired.
    ///
    /// This is the structural half of uninstalling a dataflow: after `clear`, the graph
    /// routes no payloads and schedules no operators, so the worker can drop the
    /// operators' state (releasing, in particular, any trace handles they hold) while
    /// the dataflow's index remains valid for late-arriving messages, which are
    /// discarded.
    pub fn clear(&mut self) -> usize {
        let retired = self.nodes;
        self.nodes = 0;
        self.names.clear();
        self.input_ports.clear();
        self.edges.clear();
        retired
    }

    /// True iff the graph holds no nodes (either never populated, or retired).
    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }

    /// The edges leaving `node`.
    pub fn edges_from(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, &EdgeDesc)> {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.from == node)
            .map(|(i, e)| (EdgeId(i), e))
    }

    /// The edges arriving at `node`.
    pub fn edges_to(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, &EdgeDesc)> {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.to == node)
            .map(|(i, e)| (EdgeId(i), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transforms_map_times() {
        let t = Time::from_coords([3, 2, 0]);
        assert_eq!(EdgeTransform::Identity.apply(&t), t);
        assert_eq!(
            EdgeTransform::Feedback { depth: 1 }.apply(&t),
            Time::from_coords([3, 3, 0])
        );
        assert_eq!(
            EdgeTransform::Leave { depth: 1 }.apply(&t),
            Time::from_coords([3, 0, 0])
        );
    }

    #[test]
    fn transforms_map_frontiers() {
        let frontier =
            Antichain::from_iter([Time::from_coords([1, 4, 0]), Time::from_coords([2, 0, 0])]);
        let left = EdgeTransform::Leave { depth: 1 }.apply_frontier(&frontier);
        // Both elements collapse to epoch-only times; (1,0,0) dominates (2,0,0).
        assert_eq!(left.elements(), &[Time::from_coords([1, 0, 0])]);
    }

    #[test]
    fn graph_edge_queries() {
        let graph = DataflowGraph {
            nodes: 3,
            names: vec!["a".into(), "b".into(), "c".into()],
            input_ports: vec![0, 1, 2],
            edges: vec![
                EdgeDesc {
                    from: NodeId(0),
                    to: NodeId(1),
                    port: 0,
                    transform: EdgeTransform::Identity,
                },
                EdgeDesc {
                    from: NodeId(1),
                    to: NodeId(2),
                    port: 1,
                    transform: EdgeTransform::Identity,
                },
            ],
        };
        assert_eq!(graph.edges_from(NodeId(1)).count(), 1);
        assert_eq!(graph.edges_to(NodeId(2)).count(), 1);
        assert_eq!(graph.edges_to(NodeId(0)).count(), 0);
    }
}
