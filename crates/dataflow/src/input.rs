//! Interactive inputs: the user-facing handle and its source operator.

use std::cell::RefCell;
use std::rc::Rc;

use kpg_timestamp::{Antichain, PartialOrder, Time};

use crate::operator::{BundleBox, Operator, OutputContext};
use crate::worker::DataflowBuilder;
use crate::NodeId;

/// The update buffer type that flows out of an input node.
pub type UpdateBuffer<D, R> = Vec<(D, Time, R)>;

struct InputShared<D, R> {
    buffer: Vec<(D, Time, R)>,
    epoch: u64,
    closed: bool,
}

/// A handle used to interactively introduce updates to a collection and advance its time.
///
/// Each worker holds its own handle and contributes its own shard of the input; the
/// logical collection is the union across workers. Updates are introduced at the handle's
/// current epoch and become visible to the computation once the epoch is closed with
/// [`InputHandle::advance_to`] and the worker is stepped.
pub struct InputHandle<D, R = isize> {
    shared: Rc<RefCell<InputShared<D, R>>>,
    node: NodeId,
}

impl<D, R> Clone for InputHandle<D, R> {
    fn clone(&self) -> Self {
        InputHandle {
            shared: Rc::clone(&self.shared),
            node: self.node,
        }
    }
}

impl<D: Clone + Send + 'static, R: Clone + Send + 'static> InputHandle<D, R> {
    /// Creates an input operator in `builder` and returns the handle plus the node whose
    /// output carries the update stream.
    pub fn new(builder: &mut DataflowBuilder) -> (Self, NodeId) {
        let shared = Rc::new(RefCell::new(InputShared {
            buffer: Vec::new(),
            epoch: 0,
            closed: false,
        }));
        let operator = InputOperator {
            shared: Rc::clone(&shared),
        };
        let node = builder.add_operator(Box::new(operator), 0);
        (InputHandle { shared, node }, node)
    }

    /// The node carrying this input's updates.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The current epoch: updates are introduced at this time.
    pub fn epoch(&self) -> u64 {
        self.shared.borrow().epoch
    }

    /// The current time, as a [`Time`].
    pub fn time(&self) -> Time {
        Time::from_epoch(self.epoch())
    }

    /// Introduces `data` with difference `diff` at the current epoch.
    pub fn update(&mut self, data: D, diff: R) {
        let mut shared = self.shared.borrow_mut();
        assert!(!shared.closed, "input used after close");
        let time = Time::from_epoch(shared.epoch);
        shared.buffer.push((data, time, diff));
    }

    /// Introduces `data` with difference `diff` at an explicit time, which must not be
    /// earlier than the current epoch.
    pub fn update_at(&mut self, data: D, time: Time, diff: R) {
        let mut shared = self.shared.borrow_mut();
        assert!(!shared.closed, "input used after close");
        assert!(
            Time::from_epoch(shared.epoch).less_equal(&time),
            "updates must be at or beyond the current epoch"
        );
        shared.buffer.push((data, time, diff));
    }

    /// Advances the input to `epoch`, promising that no further updates will be
    /// introduced at earlier times.
    pub fn advance_to(&mut self, epoch: u64) {
        let mut shared = self.shared.borrow_mut();
        assert!(
            epoch >= shared.epoch,
            "inputs can only advance: {} -> {}",
            shared.epoch,
            epoch
        );
        shared.epoch = epoch;
    }

    /// Closes the input: no further updates will ever be introduced.
    pub fn close(&mut self) {
        self.shared.borrow_mut().closed = true;
    }

    /// True iff the input has been closed.
    pub fn is_closed(&self) -> bool {
        self.shared.borrow().closed
    }
}

impl<D: Clone + Send + 'static> InputHandle<D, isize> {
    /// Inserts one occurrence of `data` at the current epoch.
    pub fn insert(&mut self, data: D) {
        self.update(data, 1);
    }

    /// Removes one occurrence of `data` at the current epoch.
    pub fn remove(&mut self, data: D) {
        self.update(data, -1);
    }
}

/// The source operator behind an [`InputHandle`].
struct InputOperator<D, R> {
    shared: Rc<RefCell<InputShared<D, R>>>,
}

impl<D: Clone + Send + 'static, R: Clone + Send + 'static> Operator for InputOperator<D, R> {
    fn name(&self) -> &str {
        "Input"
    }

    fn recv(&mut self, _port: usize, _payload: BundleBox) {
        unreachable!("input operators have no input ports");
    }

    fn work(&mut self, output: &mut OutputContext<'_>) -> bool {
        let mut shared = self.shared.borrow_mut();
        if shared.buffer.is_empty() {
            return false;
        }
        let buffer: UpdateBuffer<D, R> = std::mem::take(&mut shared.buffer);
        drop(shared);
        output.send(Box::new(buffer));
        true
    }

    fn set_frontier(&mut self, _port: usize, _frontier: &Antichain<Time>) {}

    fn capabilities(&self, into: &mut Antichain<Time>) {
        let shared = self.shared.borrow();
        if !(shared.closed && shared.buffer.is_empty()) {
            into.insert(Time::from_epoch(shared.epoch));
        }
    }
}
