//! A multi-worker dataflow runtime with epoch/round-synchronous progress tracking.
//!
//! This crate plays the role timely dataflow plays for the paper's system (§3.1): it owns
//! worker threads, the channels between them, operator scheduling, and progress tracking
//! (frontiers). The differential operators and shared arrangements of `kpg-core` are
//! built on top of it.
//!
//! The design differs from timely dataflow in one deliberate way (substitution S1 in
//! `DESIGN.md`): instead of an asynchronous pointstamp protocol, progress advances at
//! global synchronization points. A [`Worker::step`] runs every operator until the whole
//! computation is quiescent, then publishes operator capabilities and recomputes every
//! input frontier. Frontiers are genuine antichains of partially ordered [`Time`]s, so
//! operator logic — multiversioned arrangements, `reduce` future-work scheduling,
//! compaction — is identical to the paper's.
//!
//! ```
//! use kpg_dataflow::{execute, Config, InputHandle, ProbeHandle};
//!
//! // Two workers, each contributing half of the input.
//! let totals = execute(Config::new(2), |worker| {
//!     let (mut input, probe) = worker.dataflow(|builder| {
//!         let (input, node) = InputHandle::<u64, isize>::new(builder);
//!         let probe = ProbeHandle::new(builder, node);
//!         (input, probe)
//!     });
//!     for value in 0..5u64 {
//!         input.insert(value + 100 * worker.index() as u64);
//!     }
//!     input.advance_to(1);
//!     worker.step_while(|| probe.less_than(&input.time()));
//!     worker.index()
//! });
//! assert_eq!(totals, vec![0, 1]);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod fabric;
pub mod graph;
pub mod input;
pub mod operator;
pub mod probe;
pub mod progress;
pub mod worker;

pub use graph::{DataflowGraph, EdgeDesc, EdgeId, EdgeTransform, NodeId};
pub use input::InputHandle;
pub use operator::{downcast_payload, AnyBundle, BundleBox, Operator, OutputContext};
pub use probe::ProbeHandle;
pub use worker::{execute, Config, DataflowBuilder, Worker};

/// The timestamp type used throughout the runtime.
pub use kpg_timestamp::Time;
