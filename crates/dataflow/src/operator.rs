//! The operator interface: how typed operator logic plugs into the type-erased runtime.

use std::any::Any;

use kpg_timestamp::{Antichain, Time};

use crate::fabric::{Fabric, RemoteMessage};
use crate::graph::EdgeId;

/// A type-erased, cloneable, sendable message payload.
///
/// Payloads are usually `Vec<(D, Time, R)>` update buffers or shared batch handles; the
/// runtime only needs to clone them (for fan-out to several consumers) and move them
/// across worker channels.
pub trait AnyBundle: Any + Send {
    /// Clones the payload into a new box.
    fn clone_bundle(&self) -> BundleBox;
    /// Upcasts to `Any` for downcasting by the receiving operator.
    fn as_any(&self) -> &dyn Any;
    /// Upcasts to a boxed `Any` for by-value downcasting.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<T: Any + Send + Clone> AnyBundle for T {
    fn clone_bundle(&self) -> BundleBox {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A boxed type-erased payload.
pub type BundleBox = Box<dyn AnyBundle>;

/// Downcasts a payload to a concrete type, panicking with the operator name on mismatch.
pub fn downcast_payload<T: 'static>(payload: BundleBox, operator: &str) -> T {
    *payload
        .into_any()
        .downcast::<T>()
        .unwrap_or_else(|_| panic!("operator {operator} received a payload of unexpected type"))
}

/// The interface every operator implements.
///
/// Operators are instantiated once per worker. They receive payloads on numbered input
/// ports, perform work when scheduled (emitting payloads through the [`OutputContext`]),
/// learn about input frontier changes, and report the times at which they may still
/// produce output independently of future input (their *capabilities*).
pub trait Operator: 'static {
    /// A short name for diagnostics.
    fn name(&self) -> &str;

    /// Accepts a payload on input port `port`. Implementations should only buffer here;
    /// processing belongs in [`Operator::work`].
    fn recv(&mut self, port: usize, payload: BundleBox);

    /// Performs pending work, emitting outputs through `output`.
    ///
    /// Returns true if any work was performed (used by the quiescence protocol).
    fn work(&mut self, output: &mut OutputContext<'_>) -> bool;

    /// Observes a new frontier on input port `port`.
    ///
    /// Times not in advance of the frontier are complete: no further input will carry
    /// them. Operators that buffer state (arrange, reduce) react by minting batches or
    /// retiring pending work during their next [`Operator::work`] call.
    fn set_frontier(&mut self, port: usize, frontier: &Antichain<Time>);

    /// Inserts into `into` the times at which this operator may still produce output
    /// regardless of what its inputs do: buffered updates, scheduled future work, or
    /// (for sources) the times of data yet to be introduced.
    ///
    /// Leaving `into` empty means the operator produces output only in direct response
    /// to input. The runtime combines capabilities across workers and propagates them
    /// along edges to compute every input frontier. The caller clears and reuses the
    /// antichain, so the once-per-step capability sweep allocates nothing in steady
    /// state — which is why this writes into a caller-owned antichain instead of
    /// returning a fresh one.
    fn capabilities(&self, into: &mut Antichain<Time>);
}

/// A single emission: an edge, a destination, and a payload, stamped with the
/// `(slot, generation)` of the dataflow that produced it so stale deliveries can be
/// recognized and discarded.
pub(crate) struct Emission {
    pub dataflow: usize,
    pub generation: u64,
    pub edge: EdgeId,
    pub worker: Option<usize>,
    pub payload: BundleBox,
}

/// The output side of an operator invocation.
///
/// Emissions are buffered and delivered by the worker after the operator returns, which
/// keeps operator scheduling free of re-entrancy.
pub struct OutputContext<'a> {
    pub(crate) worker_index: usize,
    pub(crate) peers: usize,
    pub(crate) dataflow: usize,
    pub(crate) generation: u64,
    pub(crate) node_outputs: &'a [EdgeId],
    pub(crate) emissions: &'a mut Vec<Emission>,
    pub(crate) fabric: &'a Fabric,
}

impl<'a> OutputContext<'a> {
    /// The index of the worker running this operator.
    pub fn worker_index(&self) -> usize {
        self.worker_index
    }

    /// The total number of workers.
    pub fn peers(&self) -> usize {
        self.peers
    }

    /// Emits `payload` along every outgoing edge of this node, to the local worker.
    ///
    /// This is the common case: operators produce data for their local downstream
    /// consumers; only explicit exchange operators send across workers. When the node has
    /// several consumers the payload is cloned per edge.
    pub fn send(&mut self, payload: BundleBox) {
        self.fan_out(None, payload);
    }

    /// Emits `payload` along every outgoing edge, destined for worker `worker`.
    ///
    /// Used by exchange operators, which partition their input by key and route each
    /// partition to the worker that owns it.
    pub fn send_to_worker(&mut self, worker: usize, payload: BundleBox) {
        let destination = (worker != self.worker_index).then_some(worker);
        self.fan_out(destination, payload);
    }

    /// The shared fan-out path: emits `payload` along every outgoing edge towards
    /// `destination` (`None` = this worker), cloning only for all but the last edge and
    /// allocating nothing beyond those clones.
    fn fan_out(&mut self, destination: Option<usize>, payload: BundleBox) {
        let outputs = self.node_outputs;
        let Some((&last, rest)) = outputs.split_last() else {
            return;
        };
        for &edge in rest {
            self.push(edge, destination, payload.clone_bundle());
        }
        self.push(last, destination, payload);
    }

    fn push(&mut self, edge: EdgeId, destination: Option<usize>, payload: BundleBox) {
        match destination {
            None => self.emissions.push(Emission {
                dataflow: self.dataflow,
                generation: self.generation,
                edge,
                worker: None,
                payload,
            }),
            Some(worker) => {
                // Remote messages go straight to the fabric; local ones are queued for
                // in-order delivery by the worker loop.
                self.fabric.send(
                    worker,
                    RemoteMessage {
                        dataflow: self.dataflow,
                        generation: self.generation,
                        edge: edge.0,
                        payload,
                    },
                );
            }
        }
    }
}

/// Test support: drives one [`Operator::work`] call with a fresh single-edge
/// [`OutputContext`] over a throwaway fabric of `peers` workers, returning the
/// operator's work report and every emitted payload with its destination
/// (`None` = local to `worker_index`). Lets other crates unit-test operator hot paths
/// (e.g. exchange bucket reuse) without standing up a full worker runtime.
#[doc(hidden)]
pub fn drive_operator_work(
    operator: &mut dyn Operator,
    worker_index: usize,
    peers: usize,
) -> (bool, Vec<(Option<usize>, BundleBox)>) {
    let (fabric, receivers) = Fabric::new(peers);
    let mut emissions = Vec::new();
    let outputs = [EdgeId(0)];
    let mut context = OutputContext {
        worker_index,
        peers,
        dataflow: 0,
        generation: 0,
        node_outputs: &outputs,
        emissions: &mut emissions,
        fabric: &fabric,
    };
    let did_work = operator.work(&mut context);
    let mut sent: Vec<(Option<usize>, BundleBox)> = emissions
        .into_iter()
        .map(|emission| (None, emission.payload))
        .collect();
    for (worker, receiver) in receivers.iter().enumerate() {
        while let Ok(message) = receiver.try_recv() {
            fabric.acknowledge();
            sent.push((Some(worker), message.payload));
        }
    }
    (did_work, sent)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip_through_any() {
        let payload: BundleBox = Box::new(vec![(1u64, 2u64)]);
        let cloned = payload.clone_bundle();
        let back: Vec<(u64, u64)> = downcast_payload(cloned, "test");
        assert_eq!(back, vec![(1, 2)]);
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn payload_downcast_mismatch_panics() {
        let payload: BundleBox = Box::new(42u32);
        let _: Vec<u64> = downcast_payload(payload, "test");
    }
}
