//! Probes: observing how far a stream's frontier has advanced.

use std::cell::RefCell;
use std::rc::Rc;

use kpg_timestamp::{Antichain, Time};

use crate::operator::{BundleBox, Operator, OutputContext};
use crate::worker::DataflowBuilder;
use crate::NodeId;

/// A handle reporting the frontier of the stream it is attached to.
///
/// Probes are how user programs learn that the computation has caught up with their
/// input: after advancing an input to epoch `e`, stepping the worker until the probe is
/// no longer `less_than(Time::from_epoch(e))` guarantees all outputs for earlier epochs
/// have been produced.
#[derive(Clone)]
pub struct ProbeHandle {
    frontier: Rc<RefCell<Antichain<Time>>>,
}

impl ProbeHandle {
    /// Creates a probe operator attached to the output of `source`.
    pub fn new(builder: &mut DataflowBuilder, source: NodeId) -> Self {
        let frontier = Rc::new(RefCell::new(Antichain::from_elem(Time::minimum())));
        let operator = ProbeOperator {
            frontier: Rc::clone(&frontier),
        };
        let node = builder.add_operator(Box::new(operator), 1);
        builder.connect(source, node, 0);
        ProbeHandle { frontier }
    }

    /// True iff the probed frontier could still produce `time`.
    pub fn less_equal(&self, time: &Time) -> bool {
        self.frontier.borrow().less_equal(time)
    }

    /// True iff some element of the probed frontier is strictly less than `time`, i.e.
    /// outputs at times earlier than `time` may still be incomplete.
    ///
    /// The idiomatic completion loop is `worker.step_while(|| probe.less_than(&input.time()))`:
    /// once the computation has caught up with everything before the input's current
    /// epoch, the condition turns false.
    pub fn less_than(&self, time: &Time) -> bool {
        self.frontier.borrow().less_than(time)
    }

    /// True iff the probed stream is complete (its frontier is empty).
    pub fn done(&self) -> bool {
        self.frontier.borrow().is_empty()
    }

    /// A copy of the probed frontier.
    pub fn frontier(&self) -> Antichain<Time> {
        self.frontier.borrow().clone()
    }
}

struct ProbeOperator {
    frontier: Rc<RefCell<Antichain<Time>>>,
}

impl Operator for ProbeOperator {
    fn name(&self) -> &str {
        "Probe"
    }
    fn recv(&mut self, _port: usize, _payload: BundleBox) {
        // Probes discard data; they exist only to observe frontiers.
    }
    fn work(&mut self, _output: &mut OutputContext<'_>) -> bool {
        false
    }
    fn set_frontier(&mut self, _port: usize, frontier: &Antichain<Time>) {
        *self.frontier.borrow_mut() = frontier.clone();
    }
    fn capabilities(&self, _into: &mut Antichain<Time>) {}
}
