//! Progress tracking: turning operator capabilities into input frontiers.
//!
//! After every round of global quiescence, each worker publishes, per operator, the
//! antichain of times at which that operator may still produce output on its own (its
//! *capabilities*). Workers then independently — and deterministically — propagate these
//! capabilities along the dataflow graph to compute the frontier of every operator input
//! port: the set of times that may still appear there. Feedback edges advance the
//! iteration round of everything that flows along them, and leave edges strip rounds, so
//! the propagation is a least-fixed-point computation that converges because antichains
//! absorb the ever-later times produced by running around a cycle.
//!
//! This replaces timely dataflow's asynchronous pointstamp protocol with a synchronous
//! one (substitution S1 in DESIGN.md); the frontiers operators observe have exactly the
//! same meaning.

use kpg_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use kpg_sync::Mutex;

use kpg_timestamp::{Antichain, Time};

use crate::graph::{DataflowGraph, NodeId};

/// The progress state of one dataflow, shared by all workers.
pub struct DataflowShared {
    /// The graph structure, installed by the first worker to build the dataflow.
    pub graph: Mutex<Option<DataflowGraph>>,
    /// Capabilities per worker, per node.
    pub capabilities: Mutex<Vec<Vec<Antichain<Time>>>>,
    /// Bumped whenever the capability table actually changes (publish with different
    /// contents, install, retire). Workers remember the version whose frontiers they
    /// last delivered and skip the propagation fixed point — the dominant per-step cost
    /// of an otherwise idle dataflow — while the version stands still.
    version: AtomicU64,
    /// The worker count recorded at install time. Retirement accounting compares against
    /// this, not against the capability table's current length, so that a retire racing
    /// ahead of a peer's install can never conclude that no workers remain.
    installed_workers: AtomicUsize,
    /// How many workers have retired their instance of this dataflow.
    retired_workers: AtomicUsize,
}

impl DataflowShared {
    /// Creates an empty shared descriptor for a dataflow.
    pub fn new() -> Self {
        DataflowShared {
            graph: Mutex::new(None),
            capabilities: Mutex::new(Vec::new()),
            version: AtomicU64::new(0),
            installed_workers: AtomicUsize::new(0),
            retired_workers: AtomicUsize::new(0),
        }
    }

    /// Installs the graph structure (first worker) or checks consistency (the rest), and
    /// ensures the capability table covers `workers` workers.
    ///
    /// Every node starts with a capability at `Time::minimum()` so that no frontier can
    /// advance before the owning worker has published that node's true capabilities at
    /// least once.
    pub fn install(&self, graph: DataflowGraph, workers: usize) {
        let nodes = graph.nodes;
        {
            let mut guard = self.graph.lock().expect("graph lock poisoned");
            match guard.as_ref() {
                None => *guard = Some(graph),
                Some(existing) => {
                    assert_eq!(
                        existing.nodes, nodes,
                        "workers must construct identical dataflows"
                    );
                }
            }
        }
        let mut caps = self.capabilities.lock().expect("capability lock poisoned");
        if caps.is_empty() {
            *caps = vec![vec![Antichain::from_elem(Time::minimum()); nodes]; workers];
            self.version.fetch_add(1, Ordering::Release);
        }
        self.installed_workers.store(workers, Ordering::SeqCst);
    }

    /// Publishes `capabilities` (one antichain per node) for `worker`.
    ///
    /// A publication identical to the worker's previous one leaves the version counter
    /// untouched, so every worker can recognize the steady state and skip frontier
    /// recomputation entirely.
    pub fn publish(&self, worker: usize, mut capabilities: Vec<Antichain<Time>>) {
        self.publish_swap(worker, &mut capabilities);
    }

    /// As [`DataflowShared::publish`], but *swaps* the capabilities in on change, handing
    /// the previous row (and its allocations) back to the caller for reuse. The worker's
    /// once-per-step capability sweep threads one scratch vector through this, so steady
    /// state publishes nothing and allocates nothing.
    pub fn publish_swap(&self, worker: usize, capabilities: &mut Vec<Antichain<Time>>) {
        let mut caps = self.capabilities.lock().expect("capability lock poisoned");
        // Set-semantics comparison (`same_as`, not derived `==`): an antichain rebuilt
        // with its elements in a different order is the same frontier, and flagging it
        // as a change would re-run every worker's frontier fixed point for nothing.
        let row = &caps[worker];
        let unchanged = row.len() == capabilities.len()
            && row
                .iter()
                .zip(capabilities.iter())
                .all(|(old, new)| old.same_as(new));
        if !unchanged {
            std::mem::swap(&mut caps[worker], capabilities);
            self.version.fetch_add(1, Ordering::Release);
        }
    }

    /// The capability-table version: workers compare it against the version whose
    /// frontiers they last delivered to decide whether recomputation is needed.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Withdraws `worker`'s capabilities: the worker has retired its instance of this
    /// dataflow and will never again produce output for it. Once every worker recorded
    /// at install time has retired, the graph structure and capability table are freed
    /// entirely, so churning through many install/uninstall cycles does not accumulate
    /// per-dataflow state.
    ///
    /// Returns true exactly once: for the retire that freed the shared state, so the
    /// caller can release whatever registry entry points at this descriptor. A retire
    /// observed before any install (possible only through direct use of this type)
    /// leaves the state in place rather than freeing it under live peers.
    ///
    /// Each worker must call this at most once per dataflow (the worker's `retired` flag
    /// guarantees it).
    pub fn retire(&self, worker: usize) -> bool {
        {
            let mut caps = self.capabilities.lock().expect("capability lock poisoned");
            if let Some(row) = caps.get_mut(worker) {
                for cap in row.iter_mut() {
                    *cap = Antichain::new();
                }
            }
            self.version.fetch_add(1, Ordering::Release);
        }
        let retired = self.retired_workers.fetch_add(1, Ordering::SeqCst) + 1;
        let installed = self.installed_workers.load(Ordering::SeqCst);
        if installed > 0 && retired == installed {
            // No live instance remains anywhere, so nobody will consult this dataflow's
            // progress state again; release the graph (names, edges) and the table.
            *self.graph.lock().expect("graph lock poisoned") = None;
            self.capabilities
                .lock()
                .expect("capability lock poisoned")
                .clear();
            true
        } else {
            false
        }
    }

    /// Computes the frontier of every node input port from the currently published
    /// capabilities. The result is indexed as `result[node][port]`.
    pub fn input_frontiers(&self) -> Vec<Vec<Antichain<Time>>> {
        let mut result = Vec::new();
        let mut scratch = FrontierScratch::default();
        self.input_frontiers_into(&mut result, &mut scratch);
        result
    }

    /// As [`DataflowShared::input_frontiers`], but fills caller-owned buffers so the
    /// per-step frontier recomputation reuses its working memory.
    pub fn input_frontiers_into(
        &self,
        into: &mut Vec<Vec<Antichain<Time>>>,
        scratch: &mut FrontierScratch,
    ) {
        let graph = self.graph.lock().expect("graph lock poisoned");
        let graph = graph.as_ref().expect("graph installed before stepping");
        let caps = self.capabilities.lock().expect("capability lock poisoned");
        compute_input_frontiers_into(graph, &caps, into, scratch);
    }
}

impl Default for DataflowShared {
    fn default() -> Self {
        Self::new()
    }
}

/// Reusable working memory for [`compute_input_frontiers_into`]: the output-frontier
/// table of the propagation fixed point and a flat time buffer. Holding these per
/// dataflow instance makes the per-step frontier recomputation allocation-free once
/// warmed up.
#[derive(Default)]
pub struct FrontierScratch {
    output: Vec<Antichain<Time>>,
    times: Vec<Time>,
}

/// Combines per-worker capabilities and propagates them to per-port input frontiers.
pub fn compute_input_frontiers(
    graph: &DataflowGraph,
    capabilities: &[Vec<Antichain<Time>>],
) -> Vec<Vec<Antichain<Time>>> {
    let mut result = Vec::new();
    let mut scratch = FrontierScratch::default();
    compute_input_frontiers_into(graph, capabilities, &mut result, &mut scratch);
    result
}

/// As [`compute_input_frontiers`], but fills `into` (indexed `[node][port]`) and reuses
/// `scratch`, clearing antichains in place rather than reallocating them.
pub fn compute_input_frontiers_into(
    graph: &DataflowGraph,
    capabilities: &[Vec<Antichain<Time>>],
    into: &mut Vec<Vec<Antichain<Time>>>,
    scratch: &mut FrontierScratch,
) {
    // Seed each node's output frontier with the union of its capabilities across
    // workers.
    let output = &mut scratch.output;
    output.resize_with(graph.nodes, Antichain::new);
    for antichain in output.iter_mut() {
        antichain.clear();
    }
    for worker_caps in capabilities.iter() {
        for (node, cap) in worker_caps.iter().enumerate() {
            for time in cap.elements() {
                output[node].insert(*time);
            }
        }
    }

    // Least-fixed-point propagation of output frontiers: a node may emit at any time in
    // its own capabilities, or at any time it may still receive on an input (identity
    // internal summary), transformed along the incoming edge. Times are `Copy`, so one
    // flat scratch buffer stands in for the per-edge frontier clones the aliasing rules
    // would otherwise force.
    let times = &mut scratch.times;
    let mut changed = true;
    let mut rounds = 0usize;
    while changed {
        changed = false;
        rounds += 1;
        assert!(
            rounds <= 16 * (graph.nodes + graph.edges.len() + 1),
            "frontier propagation failed to converge"
        );
        for edge in graph.edges.iter() {
            times.clear();
            times.extend(
                output[edge.from.0]
                    .elements()
                    .iter()
                    .map(|t| edge.transform.apply(t)),
            );
            let target = &mut output[edge.to.0];
            for time in times.iter() {
                if target.insert(*time) {
                    changed = true;
                }
            }
        }
    }

    // Per-port input frontiers: the union of transformed source output frontiers over the
    // edges arriving at that port.
    into.resize_with(graph.nodes, Vec::new);
    for (node, ports) in into.iter_mut().enumerate() {
        ports.resize_with(graph.input_ports[node], Antichain::new);
        for antichain in ports.iter_mut() {
            antichain.clear();
        }
    }
    for edge in graph.edges.iter() {
        times.clear();
        times.extend(
            output[edge.from.0]
                .elements()
                .iter()
                .map(|t| edge.transform.apply(t)),
        );
        let slot = &mut into[edge.to.0][edge.port];
        for time in times.iter() {
            slot.insert(*time);
        }
    }
}

/// Convenience: the output frontier of a single node given published capabilities.
pub fn output_frontier(
    graph: &DataflowGraph,
    capabilities: &[Vec<Antichain<Time>>],
    node: NodeId,
) -> Antichain<Time> {
    // Recompute inputs and combine with the node's own capabilities.
    let mut result = Antichain::new();
    for worker_caps in capabilities.iter() {
        for time in worker_caps[node.0].elements() {
            result.insert(*time);
        }
    }
    let inputs = compute_input_frontiers(graph, capabilities);
    for port in inputs[node.0].iter() {
        for time in port.elements() {
            result.insert(*time);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeDesc, EdgeTransform};

    fn linear_graph() -> DataflowGraph {
        // input(0) -> map(1) -> probe(2)
        DataflowGraph {
            nodes: 3,
            names: vec!["input".into(), "map".into(), "probe".into()],
            input_ports: vec![0, 1, 1],
            edges: vec![
                EdgeDesc {
                    from: NodeId(0),
                    to: NodeId(1),
                    port: 0,
                    transform: EdgeTransform::Identity,
                },
                EdgeDesc {
                    from: NodeId(1),
                    to: NodeId(2),
                    port: 0,
                    transform: EdgeTransform::Identity,
                },
            ],
        }
    }

    #[test]
    fn linear_propagation_follows_source() {
        let graph = linear_graph();
        // Worker 0's input holds epoch 3; worker 1's input holds epoch 5.
        let caps = vec![
            vec![
                Antichain::from_elem(Time::from_epoch(3)),
                Antichain::new(),
                Antichain::new(),
            ],
            vec![
                Antichain::from_elem(Time::from_epoch(5)),
                Antichain::new(),
                Antichain::new(),
            ],
        ];
        let inputs = compute_input_frontiers(&graph, &caps);
        // The probe's frontier is held at the earlier of the two inputs.
        assert_eq!(inputs[2][0].elements(), &[Time::from_epoch(3)]);
    }

    #[test]
    fn closed_source_empties_frontiers() {
        let graph = linear_graph();
        let caps = vec![vec![Antichain::new(), Antichain::new(), Antichain::new()]];
        let inputs = compute_input_frontiers(&graph, &caps);
        assert!(inputs[1][0].is_empty());
        assert!(inputs[2][0].is_empty());
    }

    #[test]
    fn pending_operator_work_holds_downstream_frontier() {
        let graph = linear_graph();
        // Input has advanced to epoch 7, but the middle operator still owes output at 4.
        let caps = vec![vec![
            Antichain::from_elem(Time::from_epoch(7)),
            Antichain::from_elem(Time::from_epoch(4)),
            Antichain::new(),
        ]];
        let inputs = compute_input_frontiers(&graph, &caps);
        assert_eq!(inputs[1][0].elements(), &[Time::from_epoch(7)]);
        assert_eq!(inputs[2][0].elements(), &[Time::from_epoch(4)]);
    }

    fn loop_graph() -> DataflowGraph {
        // input(0) -> enter/head(1) <-> body(2) -> feedback(3) -> head(1)
        //                               body(2) -> leave(4) -> probe(5)
        DataflowGraph {
            nodes: 6,
            names: vec![
                "input".into(),
                "head".into(),
                "body".into(),
                "feedback".into(),
                "leave".into(),
                "probe".into(),
            ],
            input_ports: vec![0, 1, 1, 1, 1, 1],
            edges: vec![
                EdgeDesc {
                    from: NodeId(0),
                    to: NodeId(1),
                    port: 0,
                    transform: EdgeTransform::Identity,
                },
                EdgeDesc {
                    from: NodeId(1),
                    to: NodeId(2),
                    port: 0,
                    transform: EdgeTransform::Identity,
                },
                EdgeDesc {
                    from: NodeId(2),
                    to: NodeId(3),
                    port: 0,
                    transform: EdgeTransform::Identity,
                },
                EdgeDesc {
                    from: NodeId(3),
                    to: NodeId(1),
                    port: 0,
                    transform: EdgeTransform::Feedback { depth: 1 },
                },
                EdgeDesc {
                    from: NodeId(2),
                    to: NodeId(4),
                    port: 0,
                    transform: EdgeTransform::Identity,
                },
                EdgeDesc {
                    from: NodeId(4),
                    to: NodeId(5),
                    port: 0,
                    transform: EdgeTransform::Leave { depth: 1 },
                },
            ],
        }
    }

    #[test]
    fn loop_with_pending_body_work_holds_round() {
        let graph = loop_graph();
        // The input is at epoch 1; the loop body holds work at epoch 0, round 2.
        let mut caps = vec![vec![Antichain::new(); 6]];
        caps[0][0] = Antichain::from_elem(Time::from_epoch(1));
        caps[0][2] = Antichain::from_elem(Time::from_coords([0, 2, 0]));
        let inputs = compute_input_frontiers(&graph, &caps);
        // The loop head can still see epoch 1 (round 0) and epoch 0 at round 3 (the body's
        // pending work, routed around the feedback edge).
        let mut head: Vec<Time> = inputs[1][0].elements().to_vec();
        head.sort();
        assert_eq!(
            head,
            vec![Time::from_coords([0, 3, 0]), Time::from_coords([1, 0, 0])]
        );
        // Outside the loop, the leave edge collapses rounds: the probe must wait for
        // epoch 0 to finish.
        assert_eq!(inputs[5][0].elements(), &[Time::from_epoch(0)]);
    }

    #[test]
    fn loop_quiet_body_lets_epoch_complete() {
        let graph = loop_graph();
        // No pending body work: only the input's capability at epoch 1 remains.
        let mut caps = vec![vec![Antichain::new(); 6]];
        caps[0][0] = Antichain::from_elem(Time::from_epoch(1));
        let inputs = compute_input_frontiers(&graph, &caps);
        // The probe sees epoch 1: epoch 0 is complete.
        assert_eq!(inputs[5][0].elements(), &[Time::from_epoch(1)]);
        // Inside the loop the head still admits epoch 1 round 0.
        assert_eq!(inputs[1][0].elements(), &[Time::from_epoch(1)]);
    }

    #[test]
    fn retiring_all_workers_frees_shared_state() {
        let shared = DataflowShared::new();
        shared.install(linear_graph(), 2);
        assert!(!shared.retire(0));
        // One worker still live: the graph must remain consultable.
        assert!(shared.graph.lock().unwrap().is_some());
        assert!(!shared.input_frontiers().is_empty());
        assert!(shared.retire(1));
        // Last worker retired: graph and capability table are released.
        assert!(shared.graph.lock().unwrap().is_none());
        assert!(shared.capabilities.lock().unwrap().is_empty());
    }

    #[test]
    fn retire_before_install_does_not_free() {
        let shared = DataflowShared::new();
        // A retire racing ahead of any install must not free state under live peers: the
        // worker count is recorded at install, and zero installs means nothing to free.
        assert!(!shared.retire(0));
        shared.install(linear_graph(), 2);
        assert!(shared.graph.lock().unwrap().is_some());
        assert!(!shared.input_frontiers().is_empty());
        // The premature retire was still counted; the second worker's retire completes
        // the install-time quota of two and frees the state.
        assert!(shared.retire(1));
        assert!(shared.graph.lock().unwrap().is_none());
    }

    #[test]
    fn shared_state_install_and_publish() {
        let shared = DataflowShared::new();
        shared.install(linear_graph(), 2);
        shared.install(linear_graph(), 2);
        // Before publication every node holds the minimum capability.
        let inputs = shared.input_frontiers();
        assert_eq!(inputs[2][0].elements(), &[Time::minimum()]);
        shared.publish(
            0,
            vec![
                Antichain::from_elem(Time::from_epoch(2)),
                Antichain::new(),
                Antichain::new(),
            ],
        );
        shared.publish(
            1,
            vec![
                Antichain::from_elem(Time::from_epoch(2)),
                Antichain::new(),
                Antichain::new(),
            ],
        );
        let inputs = shared.input_frontiers();
        assert_eq!(inputs[2][0].elements(), &[Time::from_epoch(2)]);
    }
}
