//! Workers: threads that each own a shard of every dataflow and schedule its operators.

use kpg_sync::atomic::{AtomicBool, Ordering};
use kpg_sync::mpsc::Receiver;
use kpg_sync::{Arc, Barrier, Mutex};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use kpg_timestamp::{Antichain, Time};

use crate::fabric::{Fabric, RemoteMessage};
use crate::graph::{DataflowGraph, EdgeDesc, EdgeId, EdgeTransform, NodeId};
use crate::operator::{BundleBox, Emission, Operator, OutputContext};
use crate::progress::{DataflowShared, FrontierScratch};

/// Runtime configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// The number of worker threads.
    pub workers: usize,
}

impl Config {
    /// A configuration with the given number of workers.
    pub fn new(workers: usize) -> Self {
        Config {
            workers: workers.max(1),
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { workers: 1 }
    }
}

/// The live generations of one dataflow slot: `(generation, progress state)` pairs.
type SlotGenerations = Vec<(u64, Arc<DataflowShared>)>;

/// State shared by all workers of one computation.
pub(crate) struct Shared {
    pub workers: usize,
    pub barrier: Barrier,
    pub work_flags: Vec<AtomicBool>,
    /// Per slot, the progress state of every generation with at least one live worker
    /// instance. Entries are created by the first worker to install a generation and
    /// removed by the last worker to retire it, so the registry holds O(live dataflows)
    /// state regardless of how many generations have churned through a slot. Several
    /// generations of one slot can coexist briefly when workers run ahead of each other
    /// between synchronization points.
    pub dataflows: Mutex<Vec<SlotGenerations>>,
    pub fabric: Arc<Fabric>,
}

impl Shared {
    /// The shared progress state for `(slot, generation)`, created on first request.
    fn dataflow_shared(&self, slot: usize, generation: u64) -> Arc<DataflowShared> {
        let mut dataflows = self.dataflows.lock().expect("dataflow registry poisoned");
        while dataflows.len() <= slot {
            dataflows.push(Vec::new());
        }
        let entries = &mut dataflows[slot];
        if let Some((_, shared)) = entries.iter().find(|(gen, _)| *gen == generation) {
            return Arc::clone(shared);
        }
        let shared = Arc::new(DataflowShared::new());
        entries.push((generation, Arc::clone(&shared)));
        shared
    }

    /// Removes the registry entry for `(slot, generation)` once its `DataflowShared`
    /// reports that every installed worker has retired.
    fn release_dataflow(&self, slot: usize, generation: u64) {
        let mut dataflows = self.dataflows.lock().expect("dataflow registry poisoned");
        if let Some(entries) = dataflows.get_mut(slot) {
            entries.retain(|(gen, _)| *gen != generation);
        }
    }

    /// The total number of live `(slot, generation)` progress entries.
    fn dataflow_entries(&self) -> usize {
        self.dataflows
            .lock()
            .expect("dataflow registry poisoned")
            .iter()
            .map(|entries| entries.len())
            .sum()
    }
}

/// One worker's instantiation of a dataflow: its local operator state plus scheduling
/// bookkeeping.
struct DataflowInstance {
    shared: Arc<DataflowShared>,
    /// Which occupancy of the slot this instance is. Bumped each time the slot is
    /// reused; messages stamped with an earlier generation are discarded.
    generation: u64,
    graph: DataflowGraph,
    operators: Vec<Box<dyn Operator>>,
    node_outputs: Vec<Vec<EdgeId>>,
    queues: Vec<VecDeque<(usize, BundleBox)>>,
    dirty: Vec<bool>,
    last_frontiers: Vec<Vec<Antichain<Time>>>,
    /// The capability-table version whose frontiers were last delivered. While the
    /// shared version stands still — the steady state of an idle dataflow — frontier
    /// recomputation (the propagation fixed point and the per-port comparison sweep) is
    /// skipped entirely.
    last_progress_version: u64,
    /// Reusable per-node antichains for the once-per-step capability sweep: cleared and
    /// refilled in place, and swapped wholesale with the shared table's row when the
    /// capabilities actually changed.
    capability_scratch: Vec<Antichain<Time>>,
    /// Reusable result and working buffers for frontier recomputation.
    frontier_buffer: Vec<Vec<Antichain<Time>>>,
    frontier_scratch: FrontierScratch,
    /// True once the dataflow has been uninstalled: its operators are dropped, its graph
    /// is cleared, and any message still addressed to it is discarded. The slot itself
    /// goes onto the worker's free list and is reused (under a bumped generation) by the
    /// next install, so churn leaves the slot table at O(peak live dataflows).
    retired: bool,
}

/// A single worker thread's handle onto the computation.
///
/// All workers execute the same program: they construct identical dataflows, feed their
/// own shards of the input, and call [`Worker::step`] in lockstep. Steps are globally
/// synchronized (substitution S1 in DESIGN.md): a step runs every operator until the
/// whole computation is quiescent, then advances frontiers.
pub struct Worker {
    index: usize,
    peers: usize,
    shared: Arc<Shared>,
    inbox: Receiver<RemoteMessage>,
    dataflows: Vec<DataflowInstance>,
    /// Slots whose occupant has been retired, available for reuse. All workers run the
    /// same program, so their free lists evolve identically and every worker assigns the
    /// same `(slot, generation)` to the same install.
    free_slots: Vec<usize>,
    /// The live (constructed, not retired) slots in installation order. Scheduling,
    /// dirty-flag sweeps, and frontier advancement iterate this list, so per-step cost
    /// is O(live dataflows) rather than O(ever-installed).
    live_slots: Vec<usize>,
    /// Remote messages addressed to a slot or generation this worker has not yet
    /// constructed; re-examined once per scheduling round.
    pending: Vec<RemoteMessage>,
    installed: HashMap<String, usize>,
}

impl Worker {
    pub(crate) fn new(
        index: usize,
        peers: usize,
        shared: Arc<Shared>,
        inbox: Receiver<RemoteMessage>,
    ) -> Self {
        Worker {
            index,
            peers,
            shared,
            inbox,
            dataflows: Vec::new(),
            free_slots: Vec::new(),
            live_slots: Vec::new(),
            pending: Vec::new(),
            installed: HashMap::new(),
        }
    }

    /// This worker's index in `0..peers`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The number of workers.
    pub fn peers(&self) -> usize {
        self.peers
    }

    /// Constructs a new dataflow; the closure receives a [`DataflowBuilder`] and returns
    /// whatever handles (inputs, probes, arrangements) the caller wants to keep.
    ///
    /// Every worker must construct the same dataflows in the same order.
    pub fn dataflow<R>(&mut self, logic: impl FnOnce(&mut DataflowBuilder) -> R) -> R {
        self.build_dataflow(logic).1
    }

    /// Constructs a dataflow in the next available slot (reusing a retired slot under a
    /// bumped generation when one is free) and returns `(slot, result)`.
    fn build_dataflow<R>(&mut self, logic: impl FnOnce(&mut DataflowBuilder) -> R) -> (usize, R) {
        let (slot, generation) = match self.free_slots.pop() {
            Some(slot) => (slot, self.dataflows[slot].generation + 1),
            None => (self.dataflows.len(), 0),
        };
        let mut builder = DataflowBuilder {
            worker_index: self.index,
            peers: self.peers,
            dataflow_index: slot,
            inner: Rc::new(RefCell::new(BuilderInner::default())),
        };
        let result = logic(&mut builder);

        let mut inner = builder.inner.borrow_mut();
        inner.sealed = true;
        let graph = DataflowGraph {
            nodes: inner.operators.len(),
            names: std::mem::take(&mut inner.names),
            input_ports: std::mem::take(&mut inner.input_ports),
            edges: std::mem::take(&mut inner.edges),
        };
        let operators = std::mem::take(&mut inner.operators);
        drop(inner);
        let shared = self.shared.dataflow_shared(slot, generation);
        shared.install(graph.clone(), self.peers);

        let node_outputs = (0..graph.nodes)
            .map(|n| graph.edges_from(NodeId(n)).map(|(id, _)| id).collect())
            .collect();
        let queues = (0..graph.nodes).map(|_| VecDeque::new()).collect();
        let dirty = vec![true; graph.nodes];
        let last_frontiers = graph
            .input_ports
            .iter()
            .map(|&ports| vec![Antichain::from_elem(Time::minimum()); ports])
            .collect();

        let instance = DataflowInstance {
            shared,
            generation,
            graph,
            operators,
            node_outputs,
            queues,
            dirty,
            last_frontiers,
            last_progress_version: u64::MAX,
            capability_scratch: Vec::new(),
            frontier_buffer: Vec::new(),
            frontier_scratch: FrontierScratch::default(),
            retired: false,
        };
        if slot == self.dataflows.len() {
            self.dataflows.push(instance);
        } else {
            // Reuse: the retired occupant's residual state is replaced wholesale.
            self.dataflows[slot] = instance;
        }
        self.live_slots.push(slot);
        (slot, result)
    }

    /// Constructs a new dataflow registered under `name`, so that it can later be
    /// retired with [`Worker::uninstall`]. Panics if the name is already installed.
    ///
    /// Every worker must install the same dataflows in the same order, exactly as with
    /// [`Worker::dataflow`].
    pub fn install<R>(&mut self, name: &str, logic: impl FnOnce(&mut DataflowBuilder) -> R) -> R {
        assert!(
            !self.installed.contains_key(name),
            "a dataflow named {name:?} is already installed"
        );
        let (slot, result) = self.build_dataflow(logic);
        self.installed.insert(name.to_string(), slot);
        result
    }

    /// The number of dataflow slots this worker has ever allocated (the slot-table
    /// high-water mark). Retired slots are reused by later installs, so under
    /// install/uninstall churn this is bounded by the peak number of *concurrently*
    /// live dataflows, not by the total ever installed.
    pub fn dataflow_count(&self) -> usize {
        self.dataflows.len()
    }

    /// The number of currently live (constructed and not retired) dataflows.
    pub fn live_dataflow_count(&self) -> usize {
        self.live_slots.len()
    }

    /// The generation of the current (or most recent) occupant of slot `index`: how many
    /// times the slot has been reused.
    pub fn dataflow_generation(&self, index: usize) -> u64 {
        self.dataflows[index].generation
    }

    /// The number of remote messages buffered because they address a slot or generation
    /// this worker has not yet constructed.
    pub fn pending_remote_count(&self) -> usize {
        self.pending.len()
    }

    /// The number of live `(slot, generation)` entries in the computation-wide progress
    /// registry. Like the slot table, this is O(live dataflows) under churn.
    pub fn shared_dataflow_entries(&self) -> usize {
        self.shared.dataflow_entries()
    }

    /// True iff the dataflow at `index` has been retired (and its slot not yet reused).
    pub fn is_retired(&self, index: usize) -> bool {
        self.dataflows[index].retired
    }

    /// The dataflow index registered under `name`, if any.
    pub fn installed_index(&self, name: &str) -> Option<usize> {
        self.installed.get(name).copied()
    }

    /// The names of all currently installed (and not yet uninstalled) dataflows, in
    /// installation order.
    pub fn installed(&self) -> Vec<String> {
        let mut names: Vec<(usize, &String)> = self
            .installed
            .iter()
            .map(|(name, &index)| (index, name))
            .collect();
        names.sort_unstable();
        names.into_iter().map(|(_, name)| name.clone()).collect()
    }

    /// Uninstalls the dataflow registered under `name`, retiring it from the scheduler.
    /// Returns false if no such dataflow is installed.
    ///
    /// Every worker must uninstall the same dataflows at the same point in the program,
    /// mirroring the construction discipline of [`Worker::dataflow`].
    pub fn uninstall(&mut self, name: &str) -> bool {
        match self.installed.remove(name) {
            Some(index) => {
                self.drop_dataflow(index);
                true
            }
            None => false,
        }
    }

    /// Retires the dataflow at `index`: drops its operators (releasing any state they
    /// hold, notably trace handles and their read frontiers), removes its nodes and
    /// channels from the graph, discards queued and late-arriving messages, and
    /// withdraws this worker's capabilities so the dataflow's frontiers empty out.
    ///
    /// The slot goes onto the free list and is reused — under a bumped generation — by
    /// the next dataflow constructed, so churn does not grow the slot table. In-flight
    /// messages stamped with the retired generation are acknowledged and discarded when
    /// they arrive. Handles obtained from the dataflow (inputs, probes, captures) remain
    /// safe to hold but stop observing anything new.
    pub fn drop_dataflow(&mut self, index: usize) {
        let instance = &mut self.dataflows[index];
        if instance.retired {
            return;
        }
        // Keep the name registry consistent when called directly (not via `uninstall`):
        // a retired dataflow must not stay listed, nor block its name from reuse.
        self.installed.retain(|_, &mut i| i != index);
        let instance = &mut self.dataflows[index];
        instance.retired = true;
        // Dropping the operators is what releases their resources: trace agents held by
        // import and arrange operators unregister their read frontiers, letting shared
        // spines compact past this dataflow's reads.
        instance.operators.clear();
        instance.queues.clear();
        instance.node_outputs.clear();
        instance.dirty.clear();
        instance.last_frontiers.clear();
        instance.graph.clear();
        let generation = instance.generation;
        if instance.shared.retire(self.index) {
            // Every installed worker has retired this generation: remove its entry from
            // the computation-wide registry so shared progress state stays O(live).
            self.shared.release_dataflow(index, generation);
        }
        self.live_slots.retain(|&slot| slot != index);
        self.free_slots.push(index);
        // Messages buffered for this generation (possible only if it was never fully
        // constructed here before retiring) are now stale; drop them.
        self.pending
            .retain(|message| message.dataflow != index || message.generation > generation);
    }

    /// Routes a received (already acknowledged) remote message: enqueues it for the
    /// current occupant of its slot, discards it if it is addressed to an earlier
    /// generation, or buffers it if this worker has not yet constructed the addressed
    /// slot or generation. Returns true unless the message was buffered.
    fn route_remote(&mut self, message: RemoteMessage) -> bool {
        match self.dataflows.get_mut(message.dataflow) {
            None => {
                // A slot this worker has not allocated yet: hold the message until the
                // worker's own construction catches up.
                self.pending.push(message);
                false
            }
            Some(instance) => {
                if message.generation < instance.generation
                    || (message.generation == instance.generation && instance.retired)
                {
                    // Addressed to a prior (or already retired) occupant of the slot:
                    // acknowledged by the caller, discarded here.
                    true
                } else if message.generation > instance.generation {
                    // Addressed to a future occupant this worker has not installed yet.
                    self.pending.push(message);
                    false
                } else {
                    let edge = &instance.graph.edges[message.edge];
                    instance.queues[edge.to.0].push_back((edge.port, message.payload));
                    instance.dirty[edge.to.0] = true;
                    true
                }
            }
        }
    }

    /// Runs operators locally until no more progress can be made without coordination.
    fn do_local_work(&mut self) -> bool {
        let mut did_anything = false;
        let mut emissions: Vec<Emission> = Vec::new();
        // Retry messages buffered for a slot or generation that had not been constructed
        // when they arrived; construction only happens between steps, so once per call
        // suffices.
        if !self.pending.is_empty() {
            let pending = std::mem::take(&mut self.pending);
            for message in pending {
                if self.route_remote(message) {
                    did_anything = true;
                }
            }
        }
        loop {
            let mut progress = false;

            // Drain the remote inbox into local queues, acknowledging the whole sweep
            // with one batched decrement. Messages addressed to a retired generation are
            // acknowledged (so in-flight accounting stays exact) and discarded; messages
            // ahead of this worker's construction are buffered. Acking after routing is
            // safe: the count can only be transiently over-stated, which delays
            // quiescence detection but never falsely declares it.
            let mut received = 0usize;
            while let Ok(message) = self.inbox.try_recv() {
                received += 1;
                self.route_remote(message);
                progress = true;
            }
            self.shared.fabric.acknowledge_n(received);

            // Deliver queued payloads and run dirty operators, visiting live slots only.
            for position in 0..self.live_slots.len() {
                let slot = self.live_slots[position];
                let instance = &mut self.dataflows[slot];
                let generation = instance.generation;
                let DataflowInstance {
                    graph,
                    operators,
                    node_outputs,
                    queues,
                    dirty,
                    ..
                } = instance;
                for node in 0..graph.nodes {
                    while let Some((port, payload)) = queues[node].pop_front() {
                        operators[node].recv(port, payload);
                        dirty[node] = true;
                        progress = true;
                    }
                    if dirty[node] {
                        dirty[node] = false;
                        let mut context = OutputContext {
                            worker_index: self.index,
                            peers: self.peers,
                            dataflow: slot,
                            generation,
                            node_outputs: &node_outputs[node],
                            emissions: &mut emissions,
                            fabric: &self.shared.fabric,
                        };
                        if operators[node].work(&mut context) {
                            progress = true;
                        }
                    }
                    // Deliver local emissions produced by this operator. Operators cannot
                    // retire dataflows mid-work, so the stamps always match; the check
                    // mirrors the remote path and keeps stale deliveries impossible if
                    // local delivery is ever deferred.
                    for emission in emissions.drain(..) {
                        debug_assert!(emission.worker.is_none());
                        if emission.dataflow != slot || emission.generation != generation {
                            continue;
                        }
                        let edge: &EdgeDesc = &graph.edges[emission.edge.0];
                        queues[edge.to.0].push_back((edge.port, emission.payload));
                        dirty[edge.to.0] = true;
                        progress = true;
                    }
                }
            }

            if !progress {
                break;
            }
            did_anything = true;
        }
        did_anything
    }

    /// Runs local work to quiescence and coordinates with the other workers until the
    /// entire computation is quiescent (no messages in flight, no operator did work).
    fn quiesce(&mut self) -> bool {
        let mut did_anything = false;
        loop {
            let did = self.do_local_work();
            did_anything |= did;
            self.shared.work_flags[self.index].store(did, Ordering::SeqCst);
            self.shared.barrier.wait();
            let any_work = self
                .shared
                .work_flags
                .iter()
                .any(|flag| flag.load(Ordering::SeqCst));
            let in_flight = self.shared.fabric.in_flight();
            let done = !any_work && in_flight == 0;
            self.shared.barrier.wait();
            if done {
                return did_anything;
            }
        }
    }

    /// Publishes capabilities, recomputes frontiers, and notifies operators of changes.
    fn advance_frontiers(&mut self) -> bool {
        // Publish this worker's capabilities for every live dataflow. Retired dataflows
        // withdrew their capabilities when they were dropped. The sweep reuses one
        // scratch row per dataflow (operators insert into caller-owned antichains), so
        // an idle step publishes nothing and allocates nothing.
        for &slot in self.live_slots.iter() {
            let instance = &mut self.dataflows[slot];
            let scratch = &mut instance.capability_scratch;
            scratch.resize_with(instance.operators.len(), Antichain::new);
            for (operator, capability) in instance.operators.iter().zip(scratch.iter_mut()) {
                capability.clear();
                operator.capabilities(capability);
            }
            instance.shared.publish_swap(self.index, scratch);
        }
        self.shared.barrier.wait();

        // Recompute frontiers (deterministically, from shared state) and deliver changes.
        // A dataflow whose capability table has not changed since the last delivery is
        // skipped: its frontiers are a pure function of that table, so they are exactly
        // the ones already delivered. Every worker sees the same version sequence at the
        // same step, so the skip decisions are identical across workers.
        let mut changed_any = false;
        for position in 0..self.live_slots.len() {
            let slot = self.live_slots[position];
            let instance = &mut self.dataflows[slot];
            let version = instance.shared.version();
            if version == instance.last_progress_version {
                continue;
            }
            let DataflowInstance {
                shared,
                operators,
                dirty,
                last_frontiers,
                frontier_buffer,
                frontier_scratch,
                ..
            } = instance;
            shared.input_frontiers_into(frontier_buffer, frontier_scratch);
            for (node, ports) in frontier_buffer.iter().enumerate() {
                for (port, new) in ports.iter().enumerate() {
                    if !last_frontiers[node][port].same_as(new) {
                        operators[node].set_frontier(port, new);
                        last_frontiers[node][port] = new.clone();
                        dirty[node] = true;
                        changed_any = true;
                    }
                }
            }
            instance.last_progress_version = version;
        }
        // Ensure all workers finish reading shared progress state before anyone starts
        // mutating it again in the next step.
        self.shared.barrier.wait();
        changed_any
    }

    /// Performs one synchronized scheduling step: run all operators to global quiescence,
    /// then advance frontiers. Returns true if any work was done or any frontier changed.
    ///
    /// All workers must call `step` in lockstep (they do, if they run the same program).
    pub fn step(&mut self) -> bool {
        // Give every operator a chance to run, even without fresh input: sources drain
        // their user-supplied buffers, arrangements make progress on amortized merges.
        // Only live dataflows are swept, so step cost tracks the live count, not the
        // total ever installed.
        for &slot in self.live_slots.iter() {
            for flag in self.dataflows[slot].dirty.iter_mut() {
                *flag = true;
            }
        }
        let worked = self.quiesce();
        let advanced = self.advance_frontiers();
        worked || advanced
    }

    /// Steps until `condition` returns false.
    ///
    /// The condition must be a function of globally consistent state (input handles and
    /// probe frontiers), so that every worker makes the same sequence of decisions.
    pub fn step_while(&mut self, mut condition: impl FnMut() -> bool) {
        while condition() {
            self.step();
        }
    }

    /// Test support: sends a raw, explicitly stamped message to `target`'s inbox through
    /// the fabric, exactly as an exchange operator would. Lets tests exercise the
    /// stale-generation and out-of-range delivery paths, which cannot arise through the
    /// lockstep stepping discipline.
    #[doc(hidden)]
    pub fn inject_remote(
        &self,
        target: usize,
        dataflow: usize,
        generation: u64,
        edge: usize,
        payload: BundleBox,
    ) {
        self.shared.fabric.send(
            target,
            RemoteMessage {
                dataflow,
                generation,
                edge,
                payload,
            },
        );
    }
}

/// The mutable interior of a [`DataflowBuilder`], shared by its clones.
#[derive(Default)]
struct BuilderInner {
    operators: Vec<Box<dyn Operator>>,
    names: Vec<String>,
    input_ports: Vec<usize>,
    output_transforms: Vec<EdgeTransform>,
    edges: Vec<EdgeDesc>,
    sealed: bool,
}

/// Builds one dataflow: operators plus the edges connecting them.
///
/// Builders are cheaply cloneable handles onto shared construction state, so higher-level
/// wrappers (collections, arrangements) can carry one around and extend the dataflow as
/// operators are chained. Once the `Worker::dataflow` closure returns, the builder is
/// sealed and further construction panics.
pub struct DataflowBuilder {
    worker_index: usize,
    peers: usize,
    dataflow_index: usize,
    inner: Rc<RefCell<BuilderInner>>,
}

impl Clone for DataflowBuilder {
    fn clone(&self) -> Self {
        DataflowBuilder {
            worker_index: self.worker_index,
            peers: self.peers,
            dataflow_index: self.dataflow_index,
            inner: Rc::clone(&self.inner),
        }
    }
}

impl DataflowBuilder {
    /// The index of the worker building this instance of the dataflow.
    pub fn worker_index(&self) -> usize {
        self.worker_index
    }

    /// The total number of workers.
    pub fn peers(&self) -> usize {
        self.peers
    }

    /// The index of this dataflow within the computation.
    pub fn dataflow_index(&self) -> usize {
        self.dataflow_index
    }

    /// Adds an operator with `inputs` input ports; returns its node id.
    pub fn add_operator(&mut self, operator: Box<dyn Operator>, inputs: usize) -> NodeId {
        self.add_operator_with_transform(operator, inputs, EdgeTransform::Identity)
    }

    /// Adds an operator whose outgoing edges carry the given timestamp transform.
    ///
    /// Feedback and leave nodes re-timestamp the data they forward; the matching edge
    /// transform tells the progress tracker how their output frontier maps onto the times
    /// their consumers may observe.
    pub fn add_operator_with_transform(
        &mut self,
        operator: Box<dyn Operator>,
        inputs: usize,
        transform: EdgeTransform,
    ) -> NodeId {
        let mut inner = self.inner.borrow_mut();
        assert!(
            !inner.sealed,
            "dataflow extended after construction finished"
        );
        let id = NodeId(inner.operators.len());
        inner.names.push(operator.name().to_string());
        inner.operators.push(operator);
        inner.input_ports.push(inputs);
        inner.output_transforms.push(transform);
        id
    }

    /// Connects `from`'s output to input `port` of `to`, using `from`'s output transform.
    pub fn connect(&mut self, from: NodeId, to: NodeId, port: usize) {
        let transform = self.inner.borrow().output_transforms[from.0];
        self.connect_with(from, to, port, transform);
    }

    /// Connects `from`'s output to input `port` of `to`, with an explicit transform.
    pub fn connect_with(
        &mut self,
        from: NodeId,
        to: NodeId,
        port: usize,
        transform: EdgeTransform,
    ) {
        let mut inner = self.inner.borrow_mut();
        assert!(
            !inner.sealed,
            "dataflow extended after construction finished"
        );
        inner.edges.push(EdgeDesc {
            from,
            to,
            port,
            transform,
        });
    }
}

/// Executes `logic` on `config.workers` worker threads and returns their results in
/// worker order.
///
/// This is the entry point mirroring `timely::execute`: the closure runs once per worker,
/// building dataflows, feeding inputs, and stepping the worker.
pub fn execute<T, F>(config: Config, logic: F) -> Vec<T>
where
    F: Fn(&mut Worker) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    let workers = config.workers.max(1);
    let (fabric, receivers) = Fabric::new(workers);
    let shared = Arc::new(Shared {
        workers,
        barrier: Barrier::new(workers),
        work_flags: (0..workers).map(|_| AtomicBool::new(false)).collect(),
        dataflows: Mutex::new(Vec::new()),
        fabric,
    });
    let logic = Arc::new(logic);

    let mut joins = Vec::with_capacity(workers);
    for (index, inbox) in receivers.into_iter().enumerate() {
        let shared = Arc::clone(&shared);
        let logic = Arc::clone(&logic);
        joins.push(
            kpg_sync::thread::Builder::new()
                .name(format!("kpg-worker-{index}"))
                .spawn(move || {
                    let mut worker = Worker::new(index, shared.workers, shared, inbox);
                    logic(&mut worker)
                })
                .expect("failed to spawn worker thread"),
        );
    }
    joins
        .into_iter()
        .map(|handle| handle.join().expect("worker thread panicked"))
        .collect()
}
