//! Install/uninstall churn at the runtime layer: retired dataflow slots are reused
//! under bumped generations, scheduling state stays O(live dataflows), and messages
//! stamped with a stale `(slot, generation)` address are discarded — while messages
//! ahead of a worker's own construction are buffered until it catches up.

use std::cell::RefCell;
use std::rc::Rc;

use kpg_dataflow::{
    downcast_payload, execute, BundleBox, Config, InputHandle, Operator, OutputContext,
    ProbeHandle, Time, Worker,
};
use kpg_timestamp::Antichain;

/// The payload type an input node emits.
type Updates = Vec<(u64, Time, isize)>;

/// A sink that records every value delivered to it.
struct Sink {
    received: Rc<RefCell<Vec<u64>>>,
}

impl Operator for Sink {
    fn name(&self) -> &str {
        "Sink"
    }
    fn recv(&mut self, _port: usize, payload: BundleBox) {
        let updates: Updates = downcast_payload(payload, "Sink");
        self.received
            .borrow_mut()
            .extend(updates.into_iter().map(|(data, _, _)| data));
    }
    fn work(&mut self, _output: &mut OutputContext<'_>) -> bool {
        false
    }
    fn set_frontier(&mut self, _port: usize, _frontier: &Antichain<Time>) {}
    fn capabilities(&self, _into: &mut Antichain<Time>) {}
}

/// Builds `input -> sink` (edge 0) and returns the input handle and the sink's log.
fn input_to_sink(
    builder: &mut kpg_dataflow::DataflowBuilder,
) -> (InputHandle<u64, isize>, Rc<RefCell<Vec<u64>>>) {
    let (input, node) = InputHandle::<u64, isize>::new(builder);
    let received = Rc::new(RefCell::new(Vec::new()));
    let sink = builder.add_operator(
        Box::new(Sink {
            received: Rc::clone(&received),
        }),
        1,
    );
    builder.connect(node, sink, 0);
    (input, received)
}

/// One install→feed→probe→uninstall cycle body shared by the churn tests.
fn churn_cycles(worker: &mut Worker, cycles: usize) -> u64 {
    let mut epoch = 0u64;
    let mut reused_slot = None;
    for cycle in 0..cycles {
        let name = format!("q{cycle}");
        let (mut input, probe) = worker.install(&name, |builder| {
            let (input, node) = InputHandle::<u64, isize>::new(builder);
            (input, ProbeHandle::new(builder, node))
        });
        let slot = worker.installed_index(&name).expect("just installed");
        if let Some(previous) = reused_slot {
            assert_eq!(slot, previous, "churn must reuse the freed slot");
        }
        reused_slot = Some(slot);
        input.insert(cycle as u64);
        epoch += 1;
        input.advance_to(epoch);
        worker.step_while(|| probe.less_than(&Time::from_epoch(epoch)));
        assert!(worker.uninstall(&name));
    }
    epoch
}

#[test]
fn churn_reuses_slots_and_bounds_state() {
    for workers in [1usize, 2] {
        let cycles = 100usize;
        let observations = execute(Config::new(workers), move |worker| {
            // A resident dataflow occupies slot 0 throughout the churn.
            let (mut base_in, base_probe) = worker.install("base", |builder| {
                let (input, node) = InputHandle::<u64, isize>::new(builder);
                (input, ProbeHandle::new(builder, node))
            });
            let epoch = churn_cycles(worker, cycles);

            // The resident dataflow still works after the churn.
            base_in.insert(7);
            base_in.advance_to(epoch + 1);
            worker.step_while(|| base_probe.less_than(&Time::from_epoch(epoch + 1)));

            (
                worker.dataflow_count(),
                worker.live_dataflow_count(),
                worker.dataflow_generation(1),
                worker.shared_dataflow_entries(),
            )
        });
        for (slots, live, generation, shared_entries) in observations {
            // 100 installs fit in two slots: the resident one plus one reused slot.
            assert_eq!(slots, 2, "workers = {workers}");
            assert_eq!(live, 1, "workers = {workers}");
            assert_eq!(generation, cycles as u64 - 1, "workers = {workers}");
            // Only the resident dataflow keeps a progress-registry entry.
            assert_eq!(shared_entries, 1, "workers = {workers}");
        }
    }
}

#[test]
fn stale_generation_messages_are_discarded_on_two_workers() {
    let observations = execute(Config::new(2), |worker| {
        // Generation 0 of slot 0: fed once, then retired.
        let (mut victim_in, victim_log) = worker.install("victim", input_to_sink);
        victim_in.insert(1);
        victim_in.advance_to(1);
        for _ in 0..3 {
            worker.step();
        }
        assert!(worker.uninstall("victim"));

        // Generation 1 reuses slot 0.
        let (_fresh_in, fresh_log) = worker.install("fresh", input_to_sink);
        assert_eq!(worker.installed_index("fresh"), Some(0));
        assert_eq!(worker.dataflow_generation(0), 1);

        // Every worker forges, to every inbox: a stale-generation message whose payload
        // would fail the sink's downcast if it were ever delivered, and a
        // current-generation message that must be delivered.
        for target in 0..worker.peers() {
            worker.inject_remote(target, 0, 0, 0, Box::new("poison".to_string()));
            let valid: Updates = vec![(7, Time::minimum(), 1)];
            worker.inject_remote(target, 0, 1, 0, Box::new(valid));
        }
        // A single step drains the fabric: quiescence waits for in-flight messages.
        worker.step();

        let victim = victim_log.borrow().clone();
        let fresh = fresh_log.borrow().clone();
        let pending = worker.pending_remote_count();
        (victim, fresh, pending)
    });
    for (victim, fresh, pending) in observations {
        // The retired generation saw only its own input; the stale injection vanished.
        assert_eq!(victim, vec![1]);
        // The new occupant received exactly the two current-generation messages.
        assert_eq!(fresh, vec![7, 7]);
        assert_eq!(pending, 0);
    }
}

#[test]
fn out_of_range_messages_are_buffered_until_construction() {
    let observations = execute(Config::new(1), |worker| {
        // Address slot 1 before any dataflow exists: out of range, must not panic.
        let early: Updates = vec![(42, Time::minimum(), 1)];
        worker.inject_remote(0, 1, 0, 0, Box::new(early));
        worker.step();
        let buffered = worker.pending_remote_count();

        // Construct slots 0 and 1; the buffered message is for slot 1, generation 0.
        let (_in_a, log_a) = worker.install("a", input_to_sink);
        let (_in_b, log_b) = worker.install("b", input_to_sink);
        worker.step();

        let pending_after = worker.pending_remote_count();
        let a_saw = log_a.borrow().clone();
        let b_saw = log_b.borrow().clone();
        (buffered, pending_after, a_saw, b_saw)
    });
    let (buffered, pending_after, log_a, log_b) = observations.into_iter().next().unwrap();
    assert_eq!(buffered, 1, "the early message is held, not dropped");
    assert_eq!(
        pending_after, 0,
        "construction releases the buffered message"
    );
    assert!(log_a.is_empty());
    assert_eq!(log_b, vec![42]);
}

#[test]
fn future_generation_messages_wait_for_slot_reuse() {
    let observations = execute(Config::new(1), |worker| {
        let (_in_x, log_x) = worker.install("x", input_to_sink);
        // Address generation 1 of slot 0 while generation 0 still occupies it.
        let future: Updates = vec![(9, Time::minimum(), 1)];
        worker.inject_remote(0, 0, 1, 0, Box::new(future));
        worker.step();
        let buffered = worker.pending_remote_count();
        let x_saw = log_x.borrow().clone();

        assert!(worker.uninstall("x"));
        let (_in_y, log_y) = worker.install("y", input_to_sink);
        assert_eq!(worker.dataflow_generation(0), 1);
        worker.step();

        let y_saw = log_y.borrow().clone();
        let pending_after = worker.pending_remote_count();
        (buffered, x_saw, y_saw, pending_after)
    });
    let (buffered, x_saw, y_saw, pending_after) = observations.into_iter().next().unwrap();
    assert_eq!(buffered, 1);
    assert!(x_saw.is_empty(), "generation 0 must not see the message");
    assert_eq!(y_saw, vec![9], "generation 1 receives it once installed");
    assert_eq!(pending_after, 0);
}
