//! Deterministic-schedule exploration of the capability-publication version
//! protocol ([`DataflowShared`]).
//!
//! Workers skip the frontier fixed point while [`DataflowShared::version`] stands
//! still (the steady-state fast path in `worker.rs`). That optimization is sound only
//! if a stable version implies a stable capability table: every mutation of the table
//! (install, publish-with-change, retire) must bump the version *before* the mutating
//! lock is released. These tests pin that implication — and the worker's read
//! protocol (version before table) — across every explored interleaving.
//!
//! Run with `cargo test -p kpg_dataflow --features model --test model_capability`.

#![cfg(feature = "model")]

use kpg_dataflow::progress::DataflowShared;
use kpg_dataflow::{DataflowGraph, EdgeDesc, EdgeTransform, NodeId};
use kpg_sync::model::{explore, Config};
use kpg_sync::{thread, Arc};
use kpg_timestamp::{Antichain, Time};

fn tiny_graph() -> DataflowGraph {
    DataflowGraph {
        nodes: 2,
        names: vec!["input".into(), "probe".into()],
        input_ports: vec![0, 1],
        edges: vec![EdgeDesc {
            from: NodeId(0),
            to: NodeId(1),
            port: 0,
            transform: EdgeTransform::Identity,
        }],
    }
}

fn caps_at(epoch: u64) -> Vec<Antichain<Time>> {
    vec![
        Antichain::from_elem(Time::from_epoch(epoch)),
        Antichain::new(),
    ]
}

/// The capability table, flattened for comparison across two reads.
fn snapshot(shared: &DataflowShared) -> Vec<Vec<Vec<Time>>> {
    shared
        .capabilities
        .lock()
        .expect("capability lock poisoned")
        .iter()
        .map(|row| row.iter().map(|cap| cap.elements().to_vec()).collect())
        .collect()
}

fn small_config() -> Config {
    Config {
        schedules: 64,
        exhaustive: Some(384),
        ..Config::default()
    }
}

/// The soundness of the steady-state skip: a version observed stable across two
/// table reads means the table did not change between them — in any interleaving
/// with a concurrently publishing (and retiring) peer. This is exactly the check
/// the worker's `last_progress_version` fast path relies on.
#[test]
fn stable_version_implies_stable_capabilities() {
    explore("stable_version", small_config(), || {
        let shared = Arc::new(DataflowShared::new());
        shared.install(tiny_graph(), 2);

        let publisher = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                shared.publish(0, caps_at(1));
                shared.publish(0, caps_at(2));
                shared.retire(0);
            })
        };
        let observer = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                // The worker's read protocol: version first, then the table.
                for _ in 0..2 {
                    let before = shared.version();
                    let first = snapshot(&shared);
                    let second = snapshot(&shared);
                    let after = shared.version();
                    if before == after {
                        assert_eq!(
                            first, second,
                            "version {before} stood still across a table change: \
                             the steady-state frontier skip would deliver stale \
                             frontiers forever"
                        );
                    }
                }
            })
        };
        publisher.join().unwrap();
        observer.join().unwrap();
    });
}

/// Re-publishing identical capabilities leaves the version untouched (that is the
/// whole point of the steady-state skip), while any actual change bumps it — so an
/// observer that saw the change's table state can never record the pre-change
/// version number.
#[test]
fn version_moves_exactly_with_content() {
    explore("version_tracks_content", small_config(), || {
        let shared = Arc::new(DataflowShared::new());
        shared.install(tiny_graph(), 1);
        shared.publish(0, caps_at(1));
        let settled = shared.version();

        let republisher = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                // Identical content: must not bump.
                shared.publish(0, caps_at(1));
            })
        };
        let observer = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || shared.version())
        };
        republisher.join().unwrap();
        let observed = observer.join().unwrap();
        assert_eq!(
            observed, settled,
            "an identical publication may never bump the version"
        );
        assert_eq!(shared.version(), settled);

        // An actual change must bump it, in every interleaving.
        shared.publish(0, caps_at(2));
        assert!(
            shared.version() > settled,
            "a content change must move the version"
        );
    });
}

/// Retirement interleaved with publication: the freeing retire (the last one) must
/// observe every peer's retire, and a version re-read after the table was freed can
/// never equal one recorded while rows were still present. Guards the historical
/// install/retire accounting race (`installed_workers` vs the table's length).
#[test]
fn concurrent_retires_free_exactly_once() {
    explore("retire_race", small_config(), || {
        let shared = Arc::new(DataflowShared::new());
        shared.install(tiny_graph(), 2);

        let retire_a = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || shared.retire(0))
        };
        let retire_b = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || shared.retire(1))
        };
        let freed_a = retire_a.join().unwrap();
        let freed_b = retire_b.join().unwrap();
        assert!(
            freed_a != freed_b,
            "exactly one retire frees the shared state (A={freed_a}, B={freed_b})"
        );
        assert!(
            shared.graph.lock().expect("graph lock poisoned").is_none(),
            "the freeing retire releases the graph"
        );
    });
}
