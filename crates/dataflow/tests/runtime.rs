//! Integration tests for the worker runtime: inputs, probes, frontier advancement, and a
//! hand-built operator exercising exchange across workers.

use kpg_dataflow::operator::{downcast_payload, BundleBox, Operator, OutputContext};
use kpg_dataflow::{execute, Config, InputHandle, ProbeHandle, Time};
use kpg_sync::atomic::{AtomicUsize, Ordering};
use kpg_sync::Arc;
use kpg_timestamp::Antichain;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A test operator that routes `(key, time, diff)` updates to the worker owning the key.
struct ExchangeByKey {
    pending: Vec<(u64, Time, isize)>,
}

impl Operator for ExchangeByKey {
    fn name(&self) -> &str {
        "TestExchange"
    }
    fn recv(&mut self, _port: usize, payload: BundleBox) {
        let updates: Vec<(u64, Time, isize)> = downcast_payload(payload, "TestExchange");
        self.pending.extend(updates);
    }
    fn work(&mut self, output: &mut OutputContext<'_>) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        let peers = output.peers();
        let mut buckets: Vec<Vec<(u64, Time, isize)>> = vec![Vec::new(); peers];
        for (key, time, diff) in self.pending.drain(..) {
            buckets[(key as usize) % peers].push((key, time, diff));
        }
        for (worker, bucket) in buckets.into_iter().enumerate() {
            if !bucket.is_empty() {
                output.send_to_worker(worker, Box::new(bucket));
            }
        }
        true
    }
    fn set_frontier(&mut self, _port: usize, _frontier: &Antichain<Time>) {}
    fn capabilities(&self, into: &mut Antichain<Time>) {
        for (_, time, _) in self.pending.iter() {
            into.insert(*time);
        }
    }
}

/// A test operator that counts the updates it receives, tagged by owning worker.
struct CountReceived {
    received: Rc<RefCell<Vec<(u64, Time, isize)>>>,
}

impl Operator for CountReceived {
    fn name(&self) -> &str {
        "CountReceived"
    }
    fn recv(&mut self, _port: usize, payload: BundleBox) {
        let updates: Vec<(u64, Time, isize)> = downcast_payload(payload, "CountReceived");
        self.received.borrow_mut().extend(updates);
    }
    fn work(&mut self, _output: &mut OutputContext<'_>) -> bool {
        false
    }
    fn set_frontier(&mut self, _port: usize, _frontier: &Antichain<Time>) {}
    fn capabilities(&self, _into: &mut Antichain<Time>) {}
}

#[test]
fn single_worker_probe_tracks_input() {
    let results = execute(Config::new(1), |worker| {
        let (mut input, probe) = worker.dataflow(|builder| {
            let (input, node) = InputHandle::<u64, isize>::new(builder);
            let probe = ProbeHandle::new(builder, node);
            (input, probe)
        });

        // Before anything happens the probe admits the minimum time.
        assert!(probe.less_equal(&Time::minimum()));

        input.insert(7);
        input.advance_to(1);
        worker.step_while(|| probe.less_than(&input.time()));
        assert!(!probe.less_than(&Time::from_epoch(1)));
        assert!(probe.less_equal(&Time::from_epoch(1)));

        input.advance_to(5);
        worker.step_while(|| probe.less_than(&input.time()));
        assert!(!probe.less_than(&Time::from_epoch(5)));

        input.close();
        worker.step_while(|| !probe.done());
        true
    });
    assert_eq!(results, vec![true]);
}

#[test]
fn multi_worker_exchange_routes_by_key() {
    let counts = execute(Config::new(2), |worker| {
        let received = Rc::new(RefCell::new(Vec::new()));
        let received_clone = Rc::clone(&received);
        let (mut input, probe) = worker.dataflow(move |builder| {
            let (input, node) = InputHandle::<u64, isize>::new(builder);
            let exchange = builder.add_operator(
                Box::new(ExchangeByKey {
                    pending: Vec::new(),
                }),
                1,
            );
            builder.connect(node, exchange, 0);
            let sink = builder.add_operator(
                Box::new(CountReceived {
                    received: received_clone,
                }),
                1,
            );
            builder.connect(exchange, sink, 0);
            let probe = ProbeHandle::new(builder, exchange);
            (input, probe)
        });

        // Each worker introduces the full range of keys; after exchange, every worker
        // should hold only the keys it owns, with one copy per producing worker.
        for key in 0..10u64 {
            input.insert(key);
        }
        input.advance_to(1);
        worker.step_while(|| probe.less_than(&input.time()));
        // A few extra steps deliver any in-flight remote messages.
        for _ in 0..3 {
            worker.step();
        }

        let received = received.borrow();
        let owned: Vec<u64> = received.iter().map(|(k, _, _)| *k).collect();
        assert!(
            owned.iter().all(|k| (*k as usize) % 2 == worker.index()),
            "worker {} received keys it does not own: {:?}",
            worker.index(),
            owned
        );
        received.len()
    });
    // 10 keys, each inserted by 2 workers: 20 updates split across the 2 workers.
    assert_eq!(counts.iter().sum::<usize>(), 20);
    assert!(counts.iter().all(|&c| c == 10));
}

#[test]
fn frontier_holds_until_all_workers_advance() {
    // Worker 1 lags behind worker 0; the probe must not pass epoch 1 until both advance.
    let results = execute(Config::new(2), |worker| {
        let (mut input, probe) = worker.dataflow(|builder| {
            let (input, node) = InputHandle::<u64, isize>::new(builder);
            let probe = ProbeHandle::new(builder, node);
            (input, probe)
        });

        input.insert(worker.index() as u64);
        if worker.index() == 0 {
            input.advance_to(10);
        } else {
            input.advance_to(1);
        }
        // Step a fixed number of times on all workers (keeps the barrier counts equal).
        for _ in 0..4 {
            worker.step();
        }
        let stalled_at_one = probe.less_than(&Time::from_epoch(2));
        // Now the laggard catches up.
        input.advance_to(10);
        for _ in 0..4 {
            worker.step();
        }
        let advanced = !probe.less_than(&Time::from_epoch(10));
        (stalled_at_one, advanced)
    });
    for (stalled, advanced) in results {
        assert!(stalled, "frontier advanced past a lagging worker");
        assert!(
            advanced,
            "frontier failed to advance once all workers caught up"
        );
    }
}

#[test]
fn multiple_dataflows_progress_independently() {
    let results = execute(Config::new(1), |worker| {
        let (mut input_a, probe_a) = worker.dataflow(|builder| {
            let (input, node) = InputHandle::<u64, isize>::new(builder);
            let probe = ProbeHandle::new(builder, node);
            (input, probe)
        });
        let (mut input_b, probe_b) = worker.dataflow(|builder| {
            let (input, node) = InputHandle::<String, isize>::new(builder);
            let probe = ProbeHandle::new(builder, node);
            (input, probe)
        });

        input_a.insert(1);
        input_a.advance_to(3);
        input_b.insert("hello".to_string());
        input_b.advance_to(1);
        worker.step_while(|| {
            probe_a.less_than(&input_a.time()) || probe_b.less_than(&input_b.time())
        });
        (
            !probe_a.less_than(&Time::from_epoch(3)),
            !probe_b.less_than(&Time::from_epoch(1)),
            probe_b.less_than(&Time::from_epoch(3)),
        )
    });
    assert_eq!(results, vec![(true, true, true)]);
}

#[test]
fn workers_observe_work_counts() {
    // `step` reports whether anything happened; once inputs are closed and drained the
    // computation goes fully idle.
    let quiet_steps = Arc::new(AtomicUsize::new(0));
    let quiet_clone = Arc::clone(&quiet_steps);
    execute(Config::new(1), move |worker| {
        let (mut input, probe) = worker.dataflow(|builder| {
            let (input, node) = InputHandle::<u64, isize>::new(builder);
            let probe = ProbeHandle::new(builder, node);
            (input, probe)
        });
        input.insert(1);
        input.close();
        worker.step_while(|| !probe.done());
        // Once done, further steps should report no activity.
        let mut quiet = 0;
        for _ in 0..3 {
            if !worker.step() {
                quiet += 1;
            }
        }
        quiet_clone.store(quiet, Ordering::SeqCst);
    });
    assert_eq!(quiet_steps.load(Ordering::SeqCst), 3);
}

#[test]
fn update_at_future_times_waits_for_epoch() {
    execute(Config::new(1), |worker| {
        let (mut input, probe) = worker.dataflow(|builder| {
            let (input, node) = InputHandle::<u64, isize>::new(builder);
            let probe = ProbeHandle::new(builder, node);
            (input, probe)
        });
        // Introduce data at epoch 5 while the handle is still at epoch 0.
        input.update_at(9, Time::from_epoch(5), 1);
        input.advance_to(1);
        worker.step_while(|| probe.less_than(&input.time()));
        // The frontier reflects the handle's epoch, not the future update.
        assert!(probe.less_equal(&Time::from_epoch(1)));
        input.advance_to(6);
        worker.step_while(|| probe.less_than(&input.time()));
        assert!(!probe.less_than(&Time::from_epoch(6)));
    });
}

#[test]
fn fan_out_to_multiple_consumers_clones_payloads() {
    execute(Config::new(1), |worker| {
        let left = Rc::new(RefCell::new(Vec::new()));
        let right = Rc::new(RefCell::new(Vec::new()));
        let (left_c, right_c) = (Rc::clone(&left), Rc::clone(&right));
        let (mut input, probe) = worker.dataflow(move |builder| {
            let (input, node) = InputHandle::<u64, isize>::new(builder);
            let sink_a = builder.add_operator(Box::new(CountReceived { received: left_c }), 1);
            builder.connect(node, sink_a, 0);
            let sink_b = builder.add_operator(Box::new(CountReceived { received: right_c }), 1);
            builder.connect(node, sink_b, 0);
            let probe = ProbeHandle::new(builder, node);
            (input, probe)
        });
        for k in 0..5u64 {
            input.insert(k);
        }
        input.advance_to(1);
        worker.step_while(|| probe.less_than(&input.time()));
        assert_eq!(left.borrow().len(), 5);
        assert_eq!(right.borrow().len(), 5);
        let keys: HashMap<u64, isize> = left.borrow().iter().map(|(k, _, r)| (*k, *r)).collect();
        assert_eq!(keys.len(), 5);
    });
}
