//! Synthetic inputs for the Datalog and program-analysis workloads.

use kpg_timestamp::rng::SmallRng;

use crate::Edge;

/// The tree, grid and random-graph inputs of Appendix D, re-exported from the graph crate
/// so that the Datalog harnesses use exactly the same shapes.
pub use kpg_graph::generate::{gnp, grid, tree};

/// A synthetic program graph for the Graspan-style analyses (substitution S4).
///
/// Variables `0..variables` are connected by `assignments` assignment edges biased toward
/// nearby variables (mimicking local dataflow), `dereferences` dereference edges, and
/// `null_sources` variables are seeded as null-assignment sources.
pub struct ProgramGraph {
    /// Assignment edges `a := b` as `(a, b)`.
    pub assignments: Vec<Edge>,
    /// Dereference edges `a = *b` as `(a, b)`.
    pub dereferences: Vec<Edge>,
    /// Allocation sites: `(variable, abstract_object)`.
    pub allocations: Vec<Edge>,
    /// Variables assigned `null` somewhere in the program.
    pub null_sources: Vec<u32>,
}

/// Generates a synthetic program graph with the given number of variables.
///
/// The three paper inputs (httpd, psql, linux) are modelled by calling this with
/// increasing sizes; see the bench harness for the exact parameters.
pub fn program_graph(variables: u32, seed: u64) -> ProgramGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let assignments = (0..variables as usize * 3)
        .map(|_| {
            let a = rng.gen_range(0..variables);
            // Bias toward nearby variables: local dataflow dominates real programs.
            let offset = rng.gen_range(0u32..64).min(variables - 1);
            let b = (a + offset) % variables;
            (a, b)
        })
        .filter(|(a, b)| a != b)
        .collect();
    let dereferences = (0..variables as usize / 2)
        .map(|_| (rng.gen_range(0..variables), rng.gen_range(0..variables)))
        .collect();
    let allocations = (0..variables as usize / 4)
        .map(|i| (rng.gen_range(0..variables), i as u32))
        .collect();
    let null_sources = (0..variables / 64)
        .map(|_| rng.gen_range(0..variables))
        .collect();
    ProgramGraph {
        assignments,
        dereferences,
        allocations,
        null_sources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_graph_is_deterministic_and_sized() {
        let a = program_graph(512, 9);
        let b = program_graph(512, 9);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.allocations.len(), 128);
        assert!(!a.null_sources.is_empty());
    }
}
