//! Graspan-style static analyses (paper §6.4, Tables 3 and 4).
//!
//! Two analyses are implemented as differential dataflows over a program graph:
//!
//! * **dataflow analysis** — propagate `null` assignments along assignment edges
//!   (a seeded reachability computation); Table 3 additionally measures the latency of
//!   *retracting* null sources from the completed analysis, which the differential
//!   implementation supports natively.
//! * **points-to analysis** — a mutually recursive value-flow / points-to computation.
//!   The `optimized` variant avoids materialising the large intermediate alias relation
//!   (the optimisation discussed in §6.4), and the non-shared variant re-arranges its
//!   inputs per use, quantifying what sharing buys (Table 4's "Opt" vs "NoS" rows).

use kpg_core::prelude::*;

use crate::Edge;

/// The dataflow (null-propagation) analysis: which program variables may hold `null`.
///
/// `null(x) :- null_source(x).`
/// `null(y) :- null(x), assign(y, x).`   (an assignment `y := x` propagates nullness)
pub fn nullness(assignments: &Collection<Edge>, null_sources: &Collection<u32>) -> Collection<u32> {
    let uses = assignments.map(|(dst, src)| (src, dst));
    null_sources.iterate(|null| {
        let uses = uses.enter();
        let sources = null_sources.enter();
        null.map(|x| (x, ()))
            .join_map(&uses, |_x, (), dst| *dst)
            .concat(&sources)
            .distinct()
    })
}

/// The points-to analysis: which abstract objects each variable may point to.
///
/// `pt(v, o) :- alloc(v, o).`
/// `pt(v, o) :- assign(v, w), pt(w, o).`
///
/// When `materialise_alias` is true the analysis additionally derives the (large) alias
/// relation `alias(v, w) :- pt(v, o), pt(w, o)` and restricts it by dereferences, as the
/// unoptimised Graspan grammar does; the optimised variant applies the dereference
/// restriction before forming all alias pairs.
pub fn points_to(
    assignments: &Collection<Edge>,
    allocations: &Collection<Edge>,
    dereferences: &Collection<Edge>,
    materialise_alias: bool,
) -> Collection<Edge> {
    // pt(v, o), keyed by v.
    let pt = allocations.iterate(|pt| {
        let assignments = assignments.enter();
        let allocations = allocations.enter();
        // assign(v, w) & pt(w, o) => pt(v, o)
        pt.map(|(w, o)| (w, o))
            .join_map(&assignments.map(|(v, w)| (w, v)), |_w, o, v| (*v, *o))
            .concat(&allocations)
            .distinct()
    });

    // Alias pairs restricted to dereferenced variables.
    let dereferenced = dereferences.map(|(_a, b)| b).distinct();
    if materialise_alias {
        // Unoptimised: build every alias pair, then restrict the aliased side to
        // dereferenced variables.
        let by_object = pt.map(|(v, o)| (o, v));
        let alias = by_object.join_map(&by_object, |_o, v, w| (*w, *v));
        alias
            .semijoin(&dereferenced)
            .map(|(w, v)| (v, w))
            .distinct()
    } else {
        // Optimised: restrict the points-to sets to dereferenced variables first.
        let restricted = pt
            .map(|(v, o)| (v, o))
            .semijoin(&dereferenced)
            .map(|(v, o)| (o, v));
        let by_object = pt.map(|(v, o)| (o, v));
        by_object
            .join_map(&restricted, |_o, v, w| (*v, *w))
            .distinct()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpg_dataflow::Time;
    use std::collections::BTreeSet;

    #[test]
    fn nullness_propagates_and_retracts() {
        let out = execute(Config::new(1), |worker| {
            let (mut assign_in, mut null_in, probe, cap) = worker.dataflow(|builder| {
                let (assign_in, assignments) = new_collection::<Edge, isize>(builder);
                let (null_in, sources) = new_collection::<u32, isize>(builder);
                let null = nullness(&assignments, &sources);
                (assign_in, null_in, null.probe(), null.capture())
            });
            // b := a; c := b; e := d.
            for edge in [(2, 1), (3, 2), (5, 4)] {
                assign_in.insert(edge);
            }
            null_in.insert(1);
            assign_in.advance_to(1);
            null_in.advance_to(1);
            worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
            // Fixing the null assignment removes the whole chain.
            null_in.remove(1);
            assign_in.advance_to(2);
            null_in.advance_to(2);
            worker.step_while(|| probe.less_than(&Time::from_epoch(2)));
            let r = cap.borrow().clone();
            r
        });
        use kpg_timestamp::PartialOrder;
        let at = |e: u64| -> BTreeSet<u32> {
            let mut counts = std::collections::BTreeMap::new();
            for (v, t, d) in &out[0] {
                if t.less_equal(&Time::from_epoch(e)) {
                    *counts.entry(*v).or_insert(0) += d;
                }
            }
            counts
                .into_iter()
                .filter(|(_, c)| *c > 0)
                .map(|(v, _)| v)
                .collect()
        };
        assert_eq!(at(0), [1, 2, 3].into_iter().collect());
        assert!(at(1).is_empty());
    }

    #[test]
    fn points_to_variants_agree() {
        let graph = crate::generate::program_graph(128, 5);
        let run = |materialise: bool| -> BTreeSet<Edge> {
            let graph_assign = graph.assignments.clone();
            let graph_alloc = graph.allocations.clone();
            let graph_deref = graph.dereferences.clone();
            let out = execute(Config::new(1), move |worker| {
                let (mut a_in, mut o_in, mut d_in, probe, cap) = worker.dataflow(|builder| {
                    let (a_in, assignments) = new_collection::<Edge, isize>(builder);
                    let (o_in, allocations) = new_collection::<Edge, isize>(builder);
                    let (d_in, dereferences) = new_collection::<Edge, isize>(builder);
                    let result = points_to(&assignments, &allocations, &dereferences, materialise);
                    (a_in, o_in, d_in, result.probe(), result.capture())
                });
                for e in graph_assign.iter() {
                    a_in.insert(*e);
                }
                for e in graph_alloc.iter() {
                    o_in.insert(*e);
                }
                for e in graph_deref.iter() {
                    d_in.insert(*e);
                }
                a_in.advance_to(1);
                o_in.advance_to(1);
                d_in.advance_to(1);
                worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
                let r = cap.borrow().clone();
                r
            });
            out[0]
                .iter()
                .filter(|(_, _, d)| *d > 0)
                .map(|(pair, _, _)| *pair)
                .collect()
        };
        assert_eq!(
            run(true),
            run(false),
            "optimised and unoptimised analyses agree"
        );
    }
}
