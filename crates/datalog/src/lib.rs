//! Datalog and program-analysis workloads (paper §6.3, §6.4, Appendix D).
//!
//! * [`programs`] — bottom-up transitive closure and same-generation, the two benchmark
//!   queries of Appendix D, plus their top-down (seeded, "magic set" style) variants used
//!   for the interactive experiments of Table 2.
//! * [`graspan`] — the two Graspan-style static analyses of §6.4: the dataflow (null
//!   propagation) analysis and a mutually recursive points-to analysis, each with the
//!   optimized and non-shared variants Table 4 compares.
//! * [`generate`] — synthetic program graphs standing in for the paper's linux/psql/httpd
//!   inputs (substitution S4 in DESIGN.md).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod generate;
pub mod graspan;
pub mod programs;

/// A directed edge in a base relation.
pub type Edge = (u32, u32);
