//! Transitive closure and same generation, bottom-up and top-down.

use kpg_core::prelude::*;

use crate::Edge;

/// Bottom-up transitive closure: all pairs `(x, y)` with a directed path from `x` to `y`.
///
/// `tc(x, y) :- edge(x, y).`
/// `tc(x, y) :- tc(x, z), edge(z, y).`
pub fn transitive_closure(edges: &Collection<Edge>) -> Collection<Edge> {
    edges.iterate(|tc| {
        let edges = edges.enter();
        // Key tc by its endpoint z, edges by their source z, and extend.
        tc.map(|(x, z)| (z, x))
            .join_map(&edges.clone(), |_z, x, y| (*x, *y))
            .concat(&edges)
            .distinct()
    })
}

/// Same generation: pairs `(x, y)` that sit at the same depth below a common ancestor.
///
/// `sg(x, y) :- parent(p, x), parent(p, y), x != y.`
/// `sg(x, y) :- parent(px, x), sg(px, py), parent(py, y).`
pub fn same_generation(parent: &Collection<Edge>) -> Collection<Edge> {
    // Base case: siblings.
    let siblings = parent
        .join_map(parent, |_p, x, y| (*x, *y))
        .filter(|(x, y)| x != y);
    siblings.iterate(|sg| {
        let parent = parent.enter();
        let siblings = siblings.enter();
        // sg(px, py), parent(px, x), parent(py, y) => sg(x, y)
        sg.join_map(&parent, |_px, py, x| (*py, *x))
            .join_map(&parent, |_py, x, y| (*x, *y))
            .concat(&siblings)
            .distinct()
    })
}

/// Top-down transitive closure from a set of interactively supplied sources:
/// `tc(x, ?)` for each `x` in `sources`. This is the "magic set" rewrite: the recursion is
/// seeded by the query arguments, so only facts reachable from a seed are derived.
/// Produces `(source, reached)` pairs.
pub fn tc_from(edges: &Collection<Edge>, sources: &Collection<u32>) -> Collection<Edge> {
    // Base case: one-step reachability from each seed; the recursion extends paths, so a
    // seed appears as reachable from itself exactly when it lies on a cycle.
    let base = sources
        .map(|x| (x, x))
        .join_map(edges, |seed, _, next| (*seed, *next));
    base.iterate(|reach| {
        let edges = edges.enter();
        let base = base.enter();
        reach
            .map(|(src, node)| (node, src))
            .join_map(&edges, |_node, src, next| (*src, *next))
            .concat(&base)
            .distinct()
    })
}

/// Top-down reverse transitive closure: `tc(?, x)` for each `x` in `targets`; produces
/// `(target, source)` pairs for every source that can reach the target.
pub fn tc_to(edges: &Collection<Edge>, targets: &Collection<u32>) -> Collection<Edge> {
    let reversed = edges.map(|(x, y)| (y, x));
    tc_from(&reversed, targets)
}

/// Top-down same generation `sg(x, ?)`: pairs `(seed, y)` in the same generation as a
/// seed. Seeding restricts the bottom-up evaluation to the part of the graph the queries
/// can observe.
pub fn sg_from(parent: &Collection<Edge>, seeds: &Collection<u32>) -> Collection<Edge> {
    // Work with (candidate_x, candidate_y) pairs whose first coordinate descends from a
    // seed's generation; the seed is carried along.
    // sg_seeded(s, y): y is in the same generation as s.
    let child_of = parent.map(|(p, c)| (c, p));
    // Base: the seed's siblings.
    let base = seeds
        .map(|s| (s, s))
        .map(|(s, x)| (x, s))
        .join_map(&child_of, |_x, s, p| (*p, *s))
        .join_map(parent, |_p, s, y| (*s, *y))
        .filter(|(s, y)| s != y);
    base.iterate(|sg| {
        let parent = parent.enter();
        let child_of = child_of.enter();
        let base = base.enter();
        // sg(s, py): go up from both sides and back down: sg(s, y) if parents are sg.
        sg.map(|(s, y)| (y, s))
            .join_map(&child_of, |_y, s, py| (*py, *s))
            .join_map(&parent, |_py, s, y2| (*s, *y2))
            .concat(&base)
            .distinct()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpg_dataflow::Time;
    use std::collections::BTreeSet;

    fn run_static<F>(edges: Vec<Edge>, logic: F) -> BTreeSet<Edge>
    where
        F: Fn(&Collection<Edge>) -> Collection<Edge> + Send + Sync + 'static,
    {
        let out = execute(Config::new(1), move |worker| {
            let edges = edges.clone();
            let (mut input, probe, cap) = worker.dataflow(|builder| {
                let (input, collection) = new_collection::<Edge, isize>(builder);
                let result = logic(&collection);
                (input, result.probe(), result.capture())
            });
            for e in edges {
                input.insert(e);
            }
            input.advance_to(1);
            worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
            let r = cap.borrow().clone();
            r
        });
        out[0]
            .iter()
            .filter(|(_, _, diff)| *diff > 0)
            .map(|(pair, _, _)| *pair)
            .collect()
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let tc = run_static(vec![(1, 2), (2, 3), (3, 4)], transitive_closure);
        let expected: BTreeSet<Edge> = [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
            .into_iter()
            .collect();
        assert_eq!(tc, expected);
    }

    #[test]
    fn same_generation_of_a_binary_tree() {
        // parent edges: 0 -> {1, 2}, 1 -> {3, 4}, 2 -> {5, 6}
        let parents = vec![(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)];
        let sg = run_static(parents, same_generation);
        // 1 and 2 are the same generation; 3,4,5,6 are all mutually same generation.
        assert!(sg.contains(&(1, 2)));
        assert!(sg.contains(&(3, 5)));
        assert!(sg.contains(&(4, 6)));
        assert!(!sg.contains(&(1, 3)));
        assert!(!sg.iter().any(|(x, y)| x == y));
    }

    #[test]
    fn seeded_tc_matches_full_tc_restricted_to_seed() {
        let edges = vec![(1, 2), (2, 3), (5, 6), (3, 1)];
        let full = run_static(edges.clone(), transitive_closure);
        let out = execute(Config::new(1), move |worker| {
            let edges = edges.clone();
            let (mut edges_in, mut seeds_in, probe, cap) = worker.dataflow(|builder| {
                let (edges_in, edge_coll) = new_collection::<Edge, isize>(builder);
                let (seeds_in, seeds) = new_collection::<u32, isize>(builder);
                let result = tc_from(&edge_coll, &seeds);
                (edges_in, seeds_in, result.probe(), result.capture())
            });
            for e in edges {
                edges_in.insert(e);
            }
            seeds_in.insert(1);
            edges_in.advance_to(1);
            seeds_in.advance_to(1);
            worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
            let r = cap.borrow().clone();
            r
        });
        let seeded: BTreeSet<Edge> = out[0]
            .iter()
            .filter(|(_, _, d)| *d > 0)
            .map(|(pair, _, _)| *pair)
            .collect();
        let expected: BTreeSet<Edge> = full.into_iter().filter(|(x, _)| *x == 1).collect();
        assert_eq!(seeded, expected);
    }

    #[test]
    fn reverse_tc_finds_ancestors() {
        let edges = vec![(1, 2), (2, 3), (4, 3)];
        let out = execute(Config::new(1), move |worker| {
            let edges = edges.clone();
            let (mut edges_in, mut targets_in, probe, cap) = worker.dataflow(|builder| {
                let (edges_in, edge_coll) = new_collection::<Edge, isize>(builder);
                let (targets_in, targets) = new_collection::<u32, isize>(builder);
                let result = tc_to(&edge_coll, &targets);
                (edges_in, targets_in, result.probe(), result.capture())
            });
            for e in edges {
                edges_in.insert(e);
            }
            targets_in.insert(3);
            edges_in.advance_to(1);
            targets_in.advance_to(1);
            worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
            let r = cap.borrow().clone();
            r
        });
        let sources: BTreeSet<u32> = out[0]
            .iter()
            .filter(|(_, _, d)| *d > 0)
            .map(|((_, src), _, _)| *src)
            .collect();
        assert_eq!(sources, [1, 2, 4].into_iter().collect());
    }
}
