//! Differential implementations of the batch graph computations of Appendix C:
//! single-source reachability, breadth-first distances, single-source shortest paths,
//! and undirected connectivity.
//!
//! Each function is a dataflow fragment: it takes collections that already live in a
//! dataflow under construction and returns the result collection. Because the inputs are
//! ordinary differential collections, every algorithm is automatically incremental: edge
//! and root changes flow through as updates.

use kpg_core::prelude::*;

use crate::Edge;

/// Nodes reachable from each root: produces `(node, root)` pairs.
pub fn reachability(edges: &Collection<Edge>, roots: &Collection<u32>) -> Collection<(u32, u32)> {
    let seeds = roots.map(|r| (r, r));
    seeds.iterate(|reach| {
        let edges = edges.enter();
        let seeds = seeds.enter();
        reach
            .join_map(&edges, |_node, root, next| (*next, *root))
            .concat(&seeds)
            .distinct()
    })
}

/// Breadth-first distances from each root: produces `(node, (root, distance))`, keeping
/// the minimum distance per `(node, root)`.
pub fn bfs_distances(
    edges: &Collection<Edge>,
    roots: &Collection<u32>,
) -> Collection<((u32, u32), u32)> {
    let seeds = roots.map(|r| ((r, r), 0u32));
    seeds.iterate(|dists| {
        let edges = edges.enter();
        let seeds = seeds.enter();
        // dists are keyed by (node, root); re-key by node to follow edges.
        let proposals = dists
            .map(|((node, root), dist)| (node, (root, dist)))
            .join_map(&edges, |_node, (root, dist), next| {
                ((*next, *root), dist + 1)
            });
        proposals.concat(&seeds).min_by_key()
    })
}

/// Single-source shortest paths over non-negatively weighted edges `(src, (dst, weight))`:
/// produces `(node, distance)` for every node reachable from `root`.
pub fn sssp(
    edges: &Collection<(u32, (u32, u32))>,
    roots: &Collection<u32>,
) -> Collection<(u32, u32)> {
    let seeds = roots.map(|r| (r, 0u32));
    seeds.iterate(|dists| {
        let edges = edges.enter();
        let seeds = seeds.enter();
        let proposals =
            dists.join_map(&edges, |_node, dist, (next, weight)| (*next, dist + weight));
        proposals.concat(&seeds).min_by_key()
    })
}

/// Undirected connected components by minimum-label propagation: produces
/// `(node, component_label)` where the label is the least node id in the component.
pub fn connected_components(edges: &Collection<Edge>) -> Collection<(u32, u32)> {
    // Symmetrize and collect the node set.
    let symmetric = edges.flat_map(|(a, b)| [(a, b), (b, a)]);
    let nodes = symmetric.map(|(a, _)| a).distinct().map(|n| (n, n));
    nodes.iterate(|labels| {
        let symmetric = symmetric.enter();
        let nodes = nodes.enter();
        let proposals = labels.join_map(&symmetric, |_node, label, next| (*next, *label));
        proposals.concat(&nodes).min_by_key()
    })
}

/// Out-degree distribution: produces `(degree, number_of_nodes_with_that_degree)`.
pub fn degree_distribution(edges: &Collection<Edge>) -> Collection<(isize, isize)> {
    edges
        .map(|(src, _)| src)
        .count()
        .map(|(_, degree)| degree)
        .count()
        .map(|(degree, nodes)| (degree, nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use kpg_dataflow::Time;
    use std::collections::BTreeMap;

    fn accumulate<D: Ord + Clone>(captured: &[(D, Time, isize)]) -> BTreeMap<D, isize> {
        let mut result = BTreeMap::new();
        for (d, _, r) in captured {
            *result.entry(d.clone()).or_insert(0) += *r;
        }
        result.retain(|_, r| *r != 0);
        result
    }

    #[test]
    fn reachability_on_a_chain() {
        let out = execute(Config::new(1), |worker| {
            let (mut edges_in, mut roots_in, probe, cap) = worker.dataflow(|builder| {
                let (edges_in, edges) = new_collection::<Edge, isize>(builder);
                let (roots_in, roots) = new_collection::<u32, isize>(builder);
                let reach = reachability(&edges, &roots);
                (edges_in, roots_in, reach.probe(), reach.capture())
            });
            for e in generate::chain(5) {
                edges_in.insert(e);
            }
            roots_in.insert(1);
            edges_in.advance_to(1);
            roots_in.advance_to(1);
            worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
            let r = cap.borrow().clone();
            r
        });
        let reach = accumulate(&out[0]);
        // From node 1 in the chain 0->1->2->3->4 we reach 1, 2, 3, 4.
        let expected: Vec<(u32, u32)> = vec![(1, 1), (2, 1), (3, 1), (4, 1)];
        assert_eq!(reach.keys().copied().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn bfs_distances_on_a_chain() {
        let out = execute(Config::new(1), |worker| {
            let (mut edges_in, mut roots_in, probe, cap) = worker.dataflow(|builder| {
                let (edges_in, edges) = new_collection::<Edge, isize>(builder);
                let (roots_in, roots) = new_collection::<u32, isize>(builder);
                let dists = bfs_distances(&edges, &roots);
                (edges_in, roots_in, dists.probe(), dists.capture())
            });
            for e in generate::chain(4) {
                edges_in.insert(e);
            }
            roots_in.insert(0);
            edges_in.advance_to(1);
            roots_in.advance_to(1);
            worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
            let r = cap.borrow().clone();
            r
        });
        let dists = accumulate(&out[0]);
        assert_eq!(dists.get(&((0, 0), 0)), Some(&1));
        assert_eq!(dists.get(&((3, 0), 3)), Some(&1));
        assert_eq!(dists.len(), 4);
    }

    #[test]
    fn sssp_prefers_cheaper_paths() {
        let out = execute(Config::new(1), |worker| {
            let (mut edges_in, mut roots_in, probe, cap) = worker.dataflow(|builder| {
                let (edges_in, edges) = new_collection::<(u32, (u32, u32)), isize>(builder);
                let (roots_in, roots) = new_collection::<u32, isize>(builder);
                let dists = sssp(&edges, &roots);
                (edges_in, roots_in, dists.probe(), dists.capture())
            });
            // 0 -> 1 (cost 10), 0 -> 2 (cost 1), 2 -> 1 (cost 2): best 0->1 costs 3.
            edges_in.insert((0, (1, 10)));
            edges_in.insert((0, (2, 1)));
            edges_in.insert((2, (1, 2)));
            roots_in.insert(0);
            edges_in.advance_to(1);
            roots_in.advance_to(1);
            worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
            let r = cap.borrow().clone();
            r
        });
        let dists = accumulate(&out[0]);
        assert_eq!(dists.get(&(1, 3)), Some(&1));
        assert_eq!(dists.get(&(2, 1)), Some(&1));
        assert_eq!(dists.get(&(0, 0)), Some(&1));
    }

    #[test]
    fn connected_components_matches_union_find() {
        let edges = generate::uniform(60, 80, 11);
        let expected = crate::baseline::union_find_components(&edges);
        let edges_for_dataflow = edges.clone();
        let out = execute(Config::new(1), move |worker| {
            let edges = edges_for_dataflow.clone();
            let (mut edges_in, probe, cap) = worker.dataflow(|builder| {
                let (edges_in, edge_coll) = new_collection::<Edge, isize>(builder);
                let components = connected_components(&edge_coll);
                (edges_in, components.probe(), components.capture())
            });
            for e in edges {
                edges_in.insert(e);
            }
            edges_in.advance_to(1);
            worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
            let r = cap.borrow().clone();
            r
        });
        let labels = accumulate(&out[0]);
        // Two nodes share a differential label iff they share a union-find component.
        let mut differential: BTreeMap<u32, u32> = BTreeMap::new();
        for ((node, label), _) in labels.iter() {
            differential.insert(*node, *label);
        }
        for (a, b) in edges.iter() {
            assert_eq!(
                differential[a] == differential[b],
                expected[a] == expected[b],
                "edge ({a}, {b}) must connect nodes consistently with union-find"
            );
            // Directly connected nodes are always in the same component.
            assert_eq!(differential[a], differential[b]);
        }
        let differential_components: std::collections::BTreeSet<u32> =
            differential.values().copied().collect();
        let union_find_components: std::collections::BTreeSet<u32> =
            expected.values().copied().collect();
        assert_eq!(differential_components.len(), union_find_components.len());
    }

    #[test]
    fn incremental_edge_insertion_extends_reachability() {
        let out = execute(Config::new(1), |worker| {
            let (mut edges_in, mut roots_in, probe, cap) = worker.dataflow(|builder| {
                let (edges_in, edges) = new_collection::<Edge, isize>(builder);
                let (roots_in, roots) = new_collection::<u32, isize>(builder);
                let reach = reachability(&edges, &roots);
                (edges_in, roots_in, reach.probe(), reach.capture())
            });
            edges_in.insert((1, 2));
            roots_in.insert(1);
            edges_in.advance_to(1);
            roots_in.advance_to(1);
            worker.step_while(|| probe.less_than(&Time::from_epoch(1)));

            edges_in.insert((2, 3));
            edges_in.advance_to(2);
            roots_in.advance_to(2);
            worker.step_while(|| probe.less_than(&Time::from_epoch(2)));

            edges_in.remove((1, 2));
            edges_in.advance_to(3);
            roots_in.advance_to(3);
            worker.step_while(|| probe.less_than(&Time::from_epoch(3)));
            let r = cap.borrow().clone();
            r
        });
        use kpg_timestamp::PartialOrder;
        let upto = |e: u64| {
            let mut map = BTreeMap::new();
            for (d, t, r) in &out[0] {
                if t.less_equal(&Time::from_epoch(e)) {
                    *map.entry(*d).or_insert(0) += r;
                }
            }
            map.retain(|_, r| *r != 0);
            map
        };
        assert_eq!(upto(0).len(), 2); // 1, 2 reachable
        assert_eq!(upto(1).len(), 3); // plus 3
        assert_eq!(upto(2).len(), 1); // only the root remains after removing 1->2
    }
}
