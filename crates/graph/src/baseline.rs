//! Purpose-written single-threaded baselines (Appendix C).
//!
//! The paper compares K-Pg against simple single-threaded implementations that are not
//! required to follow the same algorithms: array-indexed BFS, the same BFS with hash maps
//! (as one would need without pre-processed dense identifiers), and union-find for
//! undirected connectivity.

use std::collections::{HashMap, VecDeque};

use crate::Edge;

/// Breadth-first reachability using dense array adjacency; returns the reached nodes.
pub fn bfs_array(nodes: u32, edges: &[Edge], root: u32) -> Vec<u32> {
    let mut adjacency = vec![Vec::new(); nodes as usize];
    for (src, dst) in edges {
        adjacency[*src as usize].push(*dst);
    }
    let mut seen = vec![false; nodes as usize];
    let mut queue = VecDeque::new();
    let mut reached = Vec::new();
    seen[root as usize] = true;
    queue.push_back(root);
    while let Some(node) = queue.pop_front() {
        reached.push(node);
        for &next in &adjacency[node as usize] {
            if !seen[next as usize] {
                seen[next as usize] = true;
                queue.push_back(next);
            }
        }
    }
    reached
}

/// Breadth-first distances using dense arrays; unreachable nodes get `u32::MAX`.
pub fn bfs_distances_array(nodes: u32, edges: &[Edge], root: u32) -> Vec<u32> {
    let mut adjacency = vec![Vec::new(); nodes as usize];
    for (src, dst) in edges {
        adjacency[*src as usize].push(*dst);
    }
    let mut dist = vec![u32::MAX; nodes as usize];
    let mut queue = VecDeque::new();
    dist[root as usize] = 0;
    queue.push_back(root);
    while let Some(node) = queue.pop_front() {
        for &next in &adjacency[node as usize] {
            if dist[next as usize] == u32::MAX {
                dist[next as usize] = dist[node as usize] + 1;
                queue.push_back(next);
            }
        }
    }
    dist
}

/// Breadth-first reachability using hash maps for vertex state, as the paper's "w/ hash
/// map" baseline does when identifiers cannot be assumed dense.
pub fn bfs_hashmap(edges: &[Edge], root: u32) -> Vec<u32> {
    let mut adjacency: HashMap<u32, Vec<u32>> = HashMap::new();
    for (src, dst) in edges {
        adjacency.entry(*src).or_default().push(*dst);
    }
    let mut seen: HashMap<u32, bool> = HashMap::new();
    let mut queue = VecDeque::new();
    let mut reached = Vec::new();
    seen.insert(root, true);
    queue.push_back(root);
    while let Some(node) = queue.pop_front() {
        reached.push(node);
        if let Some(nexts) = adjacency.get(&node) {
            for &next in nexts {
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(next) {
                    e.insert(true);
                    queue.push_back(next);
                }
            }
        }
    }
    reached
}

/// Undirected connected components via union-find; returns each node's representative.
pub fn union_find_components(edges: &[Edge]) -> HashMap<u32, u32> {
    let mut parent: HashMap<u32, u32> = HashMap::new();
    fn find(parent: &mut HashMap<u32, u32>, x: u32) -> u32 {
        let p = *parent.entry(x).or_insert(x);
        if p == x {
            x
        } else {
            let root = find(parent, p);
            parent.insert(x, root);
            root
        }
    }
    for (a, b) in edges {
        let ra = find(&mut parent, *a);
        let rb = find(&mut parent, *b);
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent.insert(hi, lo);
        }
    }
    let nodes: Vec<u32> = parent.keys().copied().collect();
    nodes
        .into_iter()
        .map(|n| {
            let root = find(&mut parent, n);
            (n, root)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn array_and_hashmap_bfs_agree() {
        let edges = generate::uniform(200, 600, 3);
        let mut a = bfs_array(200, &edges, 0);
        let mut b = bfs_hashmap(&edges, 0);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn bfs_distances_on_chain_are_indices() {
        let edges = generate::chain(6);
        let dist = bfs_distances_array(6, &edges, 0);
        assert_eq!(dist, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn union_find_groups_connected_nodes() {
        let edges = vec![(1, 2), (2, 3), (10, 11)];
        let components = union_find_components(&edges);
        assert_eq!(components[&1], components[&3]);
        assert_ne!(components[&1], components[&10]);
    }
}
