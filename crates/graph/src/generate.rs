//! Seeded synthetic graph generators.
//!
//! The paper evaluates on LiveJournal (4.8M nodes / 68M edges), Orkut (3M / 117M) and
//! Twitter (42M / 1.4B). Those datasets cannot be shipped here, so the harnesses generate
//! random graphs with the same node/edge *ratios* at reduced scale: a uniform random
//! graph for the LiveJournal/Orkut stand-ins and a skewed (preferential-attachment-like)
//! graph for the Twitter stand-in, whose heavy-tailed degree distribution is the property
//! that matters for the workloads.

use kpg_timestamp::rng::SmallRng;

use crate::Edge;

/// A uniform random directed graph with `nodes` nodes and `edges` edges.
pub fn uniform(nodes: u32, edges: usize, seed: u64) -> Vec<Edge> {
    assert!(nodes > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..edges)
        .map(|_| (rng.gen_range(0..nodes), rng.gen_range(0..nodes)))
        .collect()
}

/// A skewed random graph: destinations are drawn with a preferential-attachment-like
/// bias so that a few nodes attract a large fraction of the edges (a stand-in for the
/// Twitter follower graph's heavy tail).
pub fn skewed(nodes: u32, edges: usize, seed: u64) -> Vec<Edge> {
    assert!(nodes > 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut result = Vec::with_capacity(edges);
    for _ in 0..edges {
        let src = rng.gen_range(0..nodes);
        // Square a uniform draw to bias toward low node identifiers.
        let draw: f64 = rng.gen_f64();
        let dst = ((draw * draw) * nodes as f64) as u32;
        result.push((src, dst.min(nodes - 1)));
    }
    result
}

/// A chain of `nodes` nodes: `0 -> 1 -> 2 -> ...`; useful for tests with known answers.
pub fn chain(nodes: u32) -> Vec<Edge> {
    (1..nodes).map(|n| (n - 1, n)).collect()
}

/// A complete binary tree of the given height, edges pointing from parent to child.
/// This mirrors the "tree" inputs of the Datalog benchmarks (Appendix D).
pub fn tree(height: u32) -> Vec<Edge> {
    let mut edges = Vec::new();
    let nodes = (1u32 << (height + 1)) - 1;
    for node in 1..nodes {
        edges.push(((node - 1) / 2, node));
    }
    edges
}

/// An `n × n` grid with edges rightward and downward, matching the Datalog "grid" inputs.
pub fn grid(n: u32) -> Vec<Edge> {
    let mut edges = Vec::new();
    let id = |x: u32, y: u32| y * n + x;
    for y in 0..n {
        for x in 0..n {
            if x + 1 < n {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < n {
                edges.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    edges
}

/// A G(n, m) random graph (the Datalog benchmarks' "gnp" inputs): `m` uniform edges.
pub fn gnp(nodes: u32, edges: usize, seed: u64) -> Vec<Edge> {
    uniform(nodes, edges, seed)
}

/// Update stream for an evolving graph: an initial edge set plus a sequence of
/// (additions, deletions) rounds, all seeded and deterministic.
pub struct EvolvingGraph {
    /// The initial edge set.
    pub initial: Vec<Edge>,
    /// Per-round changes: edges to add and edges to remove.
    pub rounds: Vec<(Vec<Edge>, Vec<Edge>)>,
}

/// Generates an evolving graph: `initial_edges` to start, then `rounds` rounds of
/// `changes_per_round` additions and the same number of deletions (drawn from previously
/// added edges), as the interactive experiments of §6.2 require.
pub fn evolving(
    nodes: u32,
    initial_edges: usize,
    rounds: usize,
    changes_per_round: usize,
    seed: u64,
) -> EvolvingGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let initial = uniform(nodes, initial_edges, seed.wrapping_add(1));
    let mut live = initial.clone();
    let mut round_changes = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let additions: Vec<Edge> = (0..changes_per_round)
            .map(|_| (rng.gen_range(0..nodes), rng.gen_range(0..nodes)))
            .collect();
        let mut deletions = Vec::with_capacity(changes_per_round);
        for _ in 0..changes_per_round {
            if live.is_empty() {
                break;
            }
            let index = rng.gen_range(0..live.len());
            deletions.push(live.swap_remove(index));
        }
        live.extend(additions.iter().copied());
        round_changes.push((additions, deletions));
    }
    EvolvingGraph {
        initial,
        rounds: round_changes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform(100, 500, 7), uniform(100, 500, 7));
        assert_ne!(uniform(100, 500, 7), uniform(100, 500, 8));
        assert_eq!(skewed(100, 500, 7), skewed(100, 500, 7));
    }

    #[test]
    fn structured_graphs_have_expected_sizes() {
        assert_eq!(chain(5).len(), 4);
        assert_eq!(tree(3).len(), 14); // 15 nodes, 14 edges
        assert_eq!(grid(4).len(), 2 * 4 * 3); // 24 edges in a 4x4 grid
        assert_eq!(gnp(10, 30, 1).len(), 30);
    }

    #[test]
    fn skewed_graph_is_skewed() {
        let edges = skewed(1000, 20_000, 3);
        let low: usize = edges.iter().filter(|(_, d)| *d < 100).count();
        // Far more than 10% of destinations fall in the lowest 10% of identifiers.
        assert!(low > edges.len() / 5, "low-id destinations: {low}");
    }

    #[test]
    fn evolving_graph_rounds_are_well_formed() {
        let evolving = evolving(100, 200, 5, 10, 42);
        assert_eq!(evolving.initial.len(), 200);
        assert_eq!(evolving.rounds.len(), 5);
        for (adds, dels) in &evolving.rounds {
            assert_eq!(adds.len(), 10);
            assert!(dels.len() <= 10);
        }
    }
}
