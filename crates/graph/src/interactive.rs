//! Interactive graph queries (paper §6.2, Figure 5 and Table 10).
//!
//! Four query classes are maintained as differential dataflows whose *query arguments*
//! are themselves interactively updatable collections — the paper's trick of treating
//! queries as stored procedures:
//!
//! * point look-up: the out-neighbours of a queried node,
//! * 1-hop: the same, re-using the shared arrangement,
//! * 2-hop: neighbours of neighbours,
//! * 4-hop path: pairs `(src, dst)` connected by a directed path of length at most four.
//!
//! Two entry points are provided:
//!
//! * [`InteractiveSession`] — the query-session API. The graph is ingested once and its
//!   arrangement is *published by name* into a [`Catalog`]; query classes are then
//!   installed (and uninstalled) one at a time as named dataflows that import the shared
//!   arrangement. This is the register→install→drop loop of the paper's interactive
//!   evaluation (§6.2), with reader-frontier hygiene on uninstall.
//! * [`interactive_queries`] — the legacy one-dataflow builder, kept as the measurement
//!   apparatus for the shared-vs-not-shared comparison behind Figures 5b and 5c: with
//!   `shared = false` each query class arranges the graph privately, as systems without
//!   inter-query sharing must.

use std::cell::RefCell;
use std::rc::Rc;

use kpg_core::arrange::ValBatch;
use kpg_core::prelude::*;
use kpg_dataflow::InputHandle;

use crate::Edge;

/// Handles onto one installed query class: its argument input, a probe on its output,
/// and the captured output updates.
pub struct QueryIo<Q, A> {
    /// The query-argument input: insert arguments to pose queries, remove to retract.
    pub input: InputHandle<Q, isize>,
    /// A probe on the query's output; passing it means all answers are current.
    pub probe: ProbeHandle,
    /// Every output update the query has produced, as `(answer, time, diff)`.
    pub results: Rc<RefCell<Vec<(A, Time, isize)>>>,
}

/// An interactive query session over a shared graph arrangement (paper §6.2).
///
/// The session owns the graph's edge input and the [`Catalog`] under which the edge
/// arrangement is published; query classes are installed against the catalog by name
/// and retired with [`Worker::uninstall`]-backed hygiene via
/// [`QueryLifecycle::uninstall_query`].
pub struct InteractiveSession {
    /// The catalog holding the published graph arrangement.
    pub catalog: Catalog,
    /// The graph's edge input.
    pub edges: InputHandle<Edge, isize>,
    /// A probe on the graph arrangement itself.
    pub graph_probe: ProbeHandle,
    graph_name: String,
}

#[allow(clippy::type_complexity)]
impl InteractiveSession {
    /// Installs the base graph dataflow: ingests edges, arranges them by source, and
    /// publishes the arrangement into `catalog` under `graph_name`.
    ///
    /// Every worker must call this (and subsequent installs) identically.
    pub fn install(worker: &mut Worker, catalog: &Catalog, graph_name: &str) -> Self {
        let catalog_for_closure = catalog.clone();
        let name_owned = graph_name.to_string();
        let (edges, graph_probe) = worker.install(graph_name, move |builder| {
            let (edges_in, edges) = new_collection::<Edge, isize>(builder);
            let arranged = edges.arrange_by_key_named("SharedEdges", MergeEffort::Default);
            catalog_for_closure
                .publish_if_absent(&name_owned, &arranged)
                .expect("graph arrangement name already taken");
            (edges_in, arranged.probe())
        });
        InteractiveSession {
            catalog: catalog.clone(),
            edges,
            graph_probe,
            graph_name: graph_name.to_string(),
        }
    }

    /// The name the graph arrangement is published under.
    pub fn graph_name(&self) -> &str {
        &self.graph_name
    }

    /// Installs a point look-up query: for every argument node, its out-neighbours.
    pub fn install_lookup(
        &self,
        worker: &mut Worker,
        name: &str,
    ) -> Result<QueryHandle<QueryIo<u32, (u32, u32)>>, CatalogError> {
        let graph = self.graph_name.clone();
        worker.install_query(name, &self.catalog, move |builder, catalog| {
            let edges = catalog
                .import::<ValBatch<u32, u32>>(&graph, builder)
                .expect("graph arrangement published before queries install");
            let (input, queries) = new_collection::<u32, isize>(builder);
            let answers = queries
                .map(|q| (q, ()))
                .arrange_by_key()
                .join_core(&edges, |q, (), dst| (*q, *dst));
            QueryIo {
                input,
                probe: answers.probe(),
                results: answers.capture(),
            }
        })
    }

    /// Installs a 2-hop query: for every argument node, the nodes two hops away.
    pub fn install_two_hop(
        &self,
        worker: &mut Worker,
        name: &str,
    ) -> Result<QueryHandle<QueryIo<u32, (u32, u32)>>, CatalogError> {
        let graph = self.graph_name.clone();
        worker.install_query(name, &self.catalog, move |builder, catalog| {
            let edges = catalog
                .import::<ValBatch<u32, u32>>(&graph, builder)
                .expect("graph arrangement published before queries install");
            let (input, queries) = new_collection::<u32, isize>(builder);
            let first_hop = queries
                .map(|q| (q, ()))
                .arrange_by_key()
                .join_core(&edges, |q, (), mid| (*mid, *q));
            let answers = first_hop
                .arrange_by_key()
                .join_core(&edges, |_mid, q, dst| (*q, *dst))
                .distinct();
            QueryIo {
                input,
                probe: answers.probe(),
                results: answers.capture(),
            }
        })
    }

    /// Installs a 4-hop path query: for every argument pair `(src, dst)`, the hop count
    /// of the shortest directed path of length at most four, if one exists.
    pub fn install_four_path(
        &self,
        worker: &mut Worker,
        name: &str,
    ) -> Result<QueryHandle<QueryIo<(u32, u32), ((u32, u32), u32)>>, CatalogError> {
        let graph = self.graph_name.clone();
        worker.install_query(name, &self.catalog, move |builder, catalog| {
            let edges = catalog
                .import::<ValBatch<u32, u32>>(&graph, builder)
                .expect("graph arrangement published before queries install");
            let (input, pairs) = new_collection::<(u32, u32), isize>(builder);
            let frontier0 = pairs.map(|(src, dst)| (src, (src, dst)));
            let mut reached_by_hops = Vec::new();
            let mut frontier = frontier0;
            for _hop in 1..=4u32 {
                let next = frontier
                    .arrange_by_key()
                    .join_core(&edges, |_node, (src, dst), next| (*next, (*src, *dst)));
                reached_by_hops.push(next.clone());
                frontier = next.distinct();
            }
            let answers = reached_by_hops
                .iter()
                .enumerate()
                .map(|(index, reached)| {
                    let hops = index as u32 + 1;
                    reached
                        .filter(|(node, (_src, dst))| node == dst)
                        .map(move |(_node, (src, dst))| ((src, dst), hops))
                })
                .reduce(|a, b| a.concat(&b))
                .expect("at least one hop level")
                .min_by_key();
            QueryIo {
                input,
                probe: answers.probe(),
                results: answers.capture(),
            }
        })
    }

    /// Retires an installed query, unpublishing anything it published and releasing its
    /// read frontiers so the shared arrangement can compact.
    pub fn uninstall(&self, worker: &mut Worker, name: &str) -> bool {
        worker.uninstall_query(name, &self.catalog)
    }

    /// The number of updates held by the shared graph arrangement (memory proxy).
    pub fn graph_size(&self) -> usize {
        self.catalog.arrangement_size(&self.graph_name).unwrap_or(0)
    }

    /// The number of live read handles on the shared graph arrangement. Installed
    /// queries hold readers; this must return to its baseline as queries are retired.
    pub fn graph_reader_count(&self) -> usize {
        self.catalog.reader_count(&self.graph_name).unwrap_or(0)
    }

    /// The reader-table slot high-water mark of the shared graph arrangement: under
    /// install/uninstall churn this stays bounded by the peak concurrent reader count.
    pub fn graph_reader_slots(&self) -> usize {
        self.catalog.reader_slots(&self.graph_name).unwrap_or(0)
    }
}

/// Handles for driving the legacy one-dataflow interactive query dataflow.
pub struct InteractiveQueries {
    /// The graph's edge input.
    pub edges: InputHandle<Edge, isize>,
    /// Point look-up query arguments (node ids).
    pub lookup: InputHandle<u32, isize>,
    /// 1-hop query arguments (node ids).
    pub one_hop: InputHandle<u32, isize>,
    /// 2-hop query arguments (node ids).
    pub two_hop: InputHandle<u32, isize>,
    /// 4-hop path query arguments (source, destination pairs).
    pub four_path: InputHandle<(u32, u32), isize>,
    /// A probe on every query output; passing it means all answers are current.
    pub probe: ProbeHandle,
    /// Trace handles for every arrangement the dataflow maintains, for memory accounting
    /// (the Figure 5c proxy: total updates held across arrangements).
    pub traces: Vec<TraceAgent<ValBatch<u32, u32>>>,
}

impl InteractiveQueries {
    /// Advances every input to `epoch`.
    pub fn advance_to(&mut self, epoch: u64) {
        self.edges.advance_to(epoch);
        self.lookup.advance_to(epoch);
        self.one_hop.advance_to(epoch);
        self.two_hop.advance_to(epoch);
        self.four_path.advance_to(epoch);
    }

    /// The total number of updates held across all graph arrangements (memory proxy).
    pub fn arrangement_size(&self) -> usize {
        self.traces.iter().map(|trace| trace.len()).sum()
    }
}

/// Builds the legacy one-dataflow interactive query dataflow.
///
/// With `shared = true` the four query classes read a single shared arrangement of the
/// edges; with `shared = false` each class pays for its own copy, as systems without
/// inter-query sharing must. New code should prefer [`InteractiveSession`], which adds
/// the install/uninstall lifecycle; this builder remains the apparatus for the
/// shared-vs-not comparison (Figures 5b and 5c).
pub fn interactive_queries(builder: &mut DataflowBuilder, shared: bool) -> InteractiveQueries {
    let (edges_in, edges) = new_collection::<Edge, isize>(builder);
    let (lookup_in, lookup) = new_collection::<u32, isize>(builder);
    let (one_hop_in, one_hop) = new_collection::<u32, isize>(builder);
    let (two_hop_in, two_hop) = new_collection::<u32, isize>(builder);
    let (four_path_in, four_path) = new_collection::<(u32, u32), isize>(builder);

    let mut traces = Vec::new();
    let mut arrange = |label: &'static str| {
        let arranged = edges.arrange_by_key_named(label, MergeEffort::Default);
        traces.push(arranged.trace.clone());
        arranged
    };

    let shared_arrangement = arrange("SharedEdges");
    let mut next_arrangement = |label: &'static str| {
        if shared {
            shared_arrangement.clone()
        } else {
            arrange(label)
        }
    };

    // Point look-up: neighbours of the queried node.
    let lookup_edges = next_arrangement("LookupEdges");
    let lookup_results = lookup
        .map(|q| (q, ()))
        .arrange_by_key()
        .join_core(&lookup_edges, |q, (), dst| (*q, *dst));

    // 1-hop: the same shape as look-up (kept separate to model a distinct query class).
    let one_hop_edges = next_arrangement("OneHopEdges");
    let one_hop_results = one_hop
        .map(|q| (q, ()))
        .arrange_by_key()
        .join_core(&one_hop_edges, |q, (), dst| (*q, *dst));

    // 2-hop: neighbours of neighbours.
    let two_hop_edges = next_arrangement("TwoHopEdges");
    let first_hop = two_hop
        .map(|q| (q, ()))
        .arrange_by_key()
        .join_core(&two_hop_edges, |q, (), mid| (*mid, *q));
    let two_hop_results = first_hop
        .arrange_by_key()
        .join_core(&two_hop_edges, |_mid, q, dst| (*q, *dst))
        .distinct();

    // 4-hop shortest path: (src, dst) pairs connected by a path of length <= 4, with the
    // hop count of the shortest such path.
    let path_edges = next_arrangement("PathEdges");
    let frontier0 = four_path.map(|(src, dst)| (src, (src, dst)));
    let mut reached_by_hops = Vec::new();
    let mut frontier = frontier0;
    for _hop in 1..=4u32 {
        let next = frontier
            .arrange_by_key()
            .join_core(&path_edges, |_node, (src, dst), next| (*next, (*src, *dst)));
        reached_by_hops.push(next.clone());
        frontier = next.distinct();
    }
    let four_path_results = reached_by_hops
        .iter()
        .enumerate()
        .map(|(index, reached)| {
            let hops = index as u32 + 1;
            reached
                .filter(|(node, (_src, dst))| node == dst)
                .map(move |(_node, (src, dst))| ((src, dst), hops))
        })
        .reduce(|a, b| a.concat(&b))
        .expect("at least one hop level")
        .min_by_key();

    // One probe over all four outputs.
    let all_outputs = lookup_results
        .map(|(q, dst)| (q, dst, 0u8))
        .concat(&one_hop_results.map(|(q, dst)| (q, dst, 1u8)))
        .concat(&two_hop_results.map(|(q, dst)| (q, dst, 2u8)))
        .concat(&four_path_results.map(|((src, dst), hops)| (src, dst, 10 + hops as u8)));
    let probe = all_outputs.probe();

    InteractiveQueries {
        edges: edges_in,
        lookup: lookup_in,
        one_hop: one_hop_in,
        two_hop: two_hop_in,
        four_path: four_path_in,
        probe,
        traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpg_dataflow::Time;

    fn run(shared: bool) -> (usize, usize) {
        let results = execute(Config::new(1), move |worker| {
            let mut queries = worker.dataflow(|builder| interactive_queries(builder, shared));
            // A small diamond: 1 -> 2 -> 4, 1 -> 3 -> 4, 4 -> 5.
            for edge in [(1, 2), (2, 4), (1, 3), (3, 4), (4, 5)] {
                queries.edges.insert(edge);
            }
            queries.lookup.insert(1);
            queries.two_hop.insert(1);
            queries.four_path.insert((1, 5));
            queries.four_path.insert((5, 1));
            queries.advance_to(1);
            let probe = queries.probe.clone();
            worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
            (queries.arrangement_size(), queries.traces.len())
        });
        results[0]
    }

    #[test]
    fn shared_mode_holds_one_copy_of_the_graph() {
        let (shared_size, shared_traces) = run(true);
        let (private_size, private_traces) = run(false);
        assert_eq!(shared_traces, 1);
        assert_eq!(private_traces, 5);
        // Not sharing multiplies the edge state held across arrangements.
        assert!(
            private_size >= 4 * shared_size,
            "{private_size} vs {shared_size}"
        );
    }

    #[test]
    fn queries_return_expected_answers() {
        let answers = execute(Config::new(1), |worker| {
            let mut queries = worker.dataflow(|builder| interactive_queries(builder, true));
            for edge in [(1, 2), (2, 4), (1, 3), (3, 4), (4, 5)] {
                queries.edges.insert(edge);
            }
            queries.lookup.insert(1);
            queries.two_hop.insert(1);
            queries.four_path.insert((1, 5));
            queries.four_path.insert((5, 1));
            queries.advance_to(1);
            let probe = queries.probe.clone();
            worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
            true
        });
        assert_eq!(answers, vec![true]);
    }

    /// Accumulates captured `(answer, time, diff)` updates up to and including `epoch`.
    fn accumulate<A: Ord + Clone>(
        updates: &[(A, Time, isize)],
        epoch: u64,
    ) -> std::collections::BTreeMap<A, isize> {
        use kpg_timestamp::PartialOrder;
        let mut map = std::collections::BTreeMap::new();
        for (answer, time, diff) in updates {
            if time.less_equal(&Time::from_epoch(epoch)) {
                *map.entry(answer.clone()).or_insert(0) += diff;
            }
        }
        map.retain(|_, v| *v != 0);
        map
    }

    #[test]
    fn session_installs_and_uninstalls_queries() {
        let results = execute(Config::new(1), |worker| {
            let catalog = Catalog::new();
            let mut session = InteractiveSession::install(worker, &catalog, "edges");
            for edge in [(1, 2), (2, 4), (1, 3), (3, 4), (4, 5)] {
                session.edges.insert(edge);
            }
            session.edges.advance_to(1);
            worker.step_while(|| session.graph_probe.less_than(&Time::from_epoch(1)));

            // Install two query classes mid-stream, against the published arrangement.
            let mut lookup = session.install_lookup(worker, "lookup").unwrap();
            let mut two_hop = session.install_two_hop(worker, "two-hop").unwrap();
            lookup.result.input.insert(1);
            two_hop.result.input.insert(1);
            lookup.result.input.advance_to(2);
            two_hop.result.input.advance_to(2);
            session.edges.advance_to(2);
            let (lp, tp) = (lookup.result.probe.clone(), two_hop.result.probe.clone());
            worker.step_while(|| {
                lp.less_than(&Time::from_epoch(2)) || tp.less_than(&Time::from_epoch(2))
            });
            let lookup_now = accumulate(&lookup.result.results.borrow(), 1);
            let two_hop_now = accumulate(&two_hop.result.results.borrow(), 1);

            // Retire the look-up query; the two-hop query keeps answering.
            assert!(session.uninstall(worker, "lookup"));
            session.edges.insert((4, 6));
            two_hop.result.input.insert(2);
            session.edges.advance_to(3);
            two_hop.result.input.advance_to(3);
            worker.step_while(|| tp.less_than(&Time::from_epoch(3)));
            let two_hop_after = accumulate(&two_hop.result.results.borrow(), 2);

            (lookup_now, two_hop_now, two_hop_after)
        });
        let (lookup_now, two_hop_now, two_hop_after) = results[0].clone();
        // Look-up of 1: direct neighbours 2 and 3.
        assert_eq!(
            lookup_now.keys().copied().collect::<Vec<_>>(),
            vec![(1, 2), (1, 3)]
        );
        // Two hops from 1: only 4 (via 2 and via 3, deduplicated).
        assert_eq!(
            two_hop_now.keys().copied().collect::<Vec<_>>(),
            vec![(1, 4)]
        );
        // After the update and a new argument, the survivor reflects both.
        assert_eq!(
            two_hop_after.keys().copied().collect::<Vec<_>>(),
            vec![(1, 4), (2, 5), (2, 6)]
        );
    }
}
