//! Interactive graph queries (paper §6.2, Figure 5 and Table 10).
//!
//! Four query classes are maintained as differential dataflows whose *query arguments*
//! are themselves interactively updatable collections — the paper's trick of treating
//! queries as stored procedures:
//!
//! * point look-up: the out-neighbours of a queried node,
//! * 1-hop: the same, re-using the shared arrangement,
//! * 2-hop: neighbours of neighbours,
//! * 4-hop path: pairs `(src, dst)` connected by a directed path of length at most four.
//!
//! The dataflow can be built in two modes: **shared**, where all query classes read one
//! arrangement of the graph, and **not shared**, where each query class arranges the
//! graph privately — the comparison behind Figures 5b and 5c.

use kpg_core::arrange::ValBatch;
use kpg_core::prelude::*;
use kpg_dataflow::InputHandle;

use crate::Edge;

/// Handles for driving the interactive query dataflow.
pub struct InteractiveQueries {
    /// The graph's edge input.
    pub edges: InputHandle<Edge, isize>,
    /// Point look-up query arguments (node ids).
    pub lookup: InputHandle<u32, isize>,
    /// 1-hop query arguments (node ids).
    pub one_hop: InputHandle<u32, isize>,
    /// 2-hop query arguments (node ids).
    pub two_hop: InputHandle<u32, isize>,
    /// 4-hop path query arguments (source, destination pairs).
    pub four_path: InputHandle<(u32, u32), isize>,
    /// A probe on every query output; passing it means all answers are current.
    pub probe: ProbeHandle,
    /// Trace handles for every arrangement the dataflow maintains, for memory accounting
    /// (the Figure 5c proxy: total updates held across arrangements).
    pub traces: Vec<TraceAgent<ValBatch<u32, u32>>>,
}

impl InteractiveQueries {
    /// Advances every input to `epoch`.
    pub fn advance_to(&mut self, epoch: u64) {
        self.edges.advance_to(epoch);
        self.lookup.advance_to(epoch);
        self.one_hop.advance_to(epoch);
        self.two_hop.advance_to(epoch);
        self.four_path.advance_to(epoch);
    }

    /// The total number of updates held across all graph arrangements (memory proxy).
    pub fn arrangement_size(&self) -> usize {
        self.traces.iter().map(|trace| trace.len()).sum()
    }
}

/// Builds the interactive query dataflow.
///
/// With `shared = true` the four query classes read a single shared arrangement of the
/// edges; with `shared = false` each class pays for its own copy, as systems without
/// inter-query sharing must.
pub fn interactive_queries(builder: &mut DataflowBuilder, shared: bool) -> InteractiveQueries {
    let (edges_in, edges) = new_collection::<Edge, isize>(builder);
    let (lookup_in, lookup) = new_collection::<u32, isize>(builder);
    let (one_hop_in, one_hop) = new_collection::<u32, isize>(builder);
    let (two_hop_in, two_hop) = new_collection::<u32, isize>(builder);
    let (four_path_in, four_path) = new_collection::<(u32, u32), isize>(builder);

    let mut traces = Vec::new();
    let mut arrange = |label: &'static str| {
        let arranged = edges.arrange_by_key_named(label, MergeEffort::Default);
        traces.push(arranged.trace.clone());
        arranged
    };

    let shared_arrangement = arrange("SharedEdges");
    let mut next_arrangement = |label: &'static str| {
        if shared {
            shared_arrangement.clone()
        } else {
            arrange(label)
        }
    };

    // Point look-up: neighbours of the queried node.
    let lookup_edges = next_arrangement("LookupEdges");
    let lookup_results = lookup
        .map(|q| (q, ()))
        .arrange_by_key()
        .join_core(&lookup_edges, |q, (), dst| (*q, *dst));

    // 1-hop: the same shape as look-up (kept separate to model a distinct query class).
    let one_hop_edges = next_arrangement("OneHopEdges");
    let one_hop_results = one_hop
        .map(|q| (q, ()))
        .arrange_by_key()
        .join_core(&one_hop_edges, |q, (), dst| (*q, *dst));

    // 2-hop: neighbours of neighbours.
    let two_hop_edges = next_arrangement("TwoHopEdges");
    let first_hop = two_hop
        .map(|q| (q, ()))
        .arrange_by_key()
        .join_core(&two_hop_edges, |q, (), mid| (*mid, *q));
    let two_hop_results = first_hop
        .arrange_by_key()
        .join_core(&two_hop_edges, |_mid, q, dst| (*q, *dst))
        .distinct();

    // 4-hop shortest path: (src, dst) pairs connected by a path of length <= 4, with the
    // hop count of the shortest such path.
    let path_edges = next_arrangement("PathEdges");
    let frontier0 = four_path.map(|(src, dst)| (src, (src, dst)));
    let mut reached_by_hops = Vec::new();
    let mut frontier = frontier0;
    for _hop in 1..=4u32 {
        let next = frontier
            .arrange_by_key()
            .join_core(&path_edges, |_node, (src, dst), next| (*next, (*src, *dst)));
        reached_by_hops.push(next.clone());
        frontier = next.distinct();
    }
    let four_path_results = reached_by_hops
        .iter()
        .enumerate()
        .map(|(index, reached)| {
            let hops = index as u32 + 1;
            reached
                .filter(|(node, (_src, dst))| node == dst)
                .map(move |(_node, (src, dst))| ((src, dst), hops))
        })
        .reduce(|a, b| a.concat(&b))
        .expect("at least one hop level")
        .min_by_key();

    // One probe over all four outputs.
    let all_outputs = lookup_results
        .map(|(q, dst)| (q, dst, 0u8))
        .concat(&one_hop_results.map(|(q, dst)| (q, dst, 1u8)))
        .concat(&two_hop_results.map(|(q, dst)| (q, dst, 2u8)))
        .concat(&four_path_results.map(|((src, dst), hops)| (src, dst, 10 + hops as u8)));
    let probe = all_outputs.probe();

    InteractiveQueries {
        edges: edges_in,
        lookup: lookup_in,
        one_hop: one_hop_in,
        two_hop: two_hop_in,
        four_path: four_path_in,
        probe,
        traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpg_dataflow::Time;

    fn run(shared: bool) -> (usize, usize) {
        let results = execute(Config::new(1), move |worker| {
            let mut queries = worker.dataflow(|builder| interactive_queries(builder, shared));
            // A small diamond: 1 -> 2 -> 4, 1 -> 3 -> 4, 4 -> 5.
            for edge in [(1, 2), (2, 4), (1, 3), (3, 4), (4, 5)] {
                queries.edges.insert(edge);
            }
            queries.lookup.insert(1);
            queries.two_hop.insert(1);
            queries.four_path.insert((1, 5));
            queries.four_path.insert((5, 1));
            queries.advance_to(1);
            let probe = queries.probe.clone();
            worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
            (queries.arrangement_size(), queries.traces.len())
        });
        results[0]
    }

    #[test]
    fn shared_mode_holds_one_copy_of_the_graph() {
        let (shared_size, shared_traces) = run(true);
        let (private_size, private_traces) = run(false);
        assert_eq!(shared_traces, 1);
        assert_eq!(private_traces, 5);
        // Not sharing multiplies the edge state held across arrangements.
        assert!(private_size >= 4 * shared_size, "{private_size} vs {shared_size}");
    }

    #[test]
    fn queries_return_expected_answers() {
        let answers = execute(Config::new(1), |worker| {
            let (mut queries, captured) = worker.dataflow(|builder| {
                let queries = interactive_queries(builder, true);
                (queries, ())
            });
            let _ = captured;
            for edge in [(1, 2), (2, 4), (1, 3), (3, 4), (4, 5)] {
                queries.edges.insert(edge);
            }
            queries.lookup.insert(1);
            queries.two_hop.insert(1);
            queries.four_path.insert((1, 5));
            queries.four_path.insert((5, 1));
            queries.advance_to(1);
            let probe = queries.probe.clone();
            worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
            true
        });
        assert_eq!(answers, vec![true]);
    }
}
