//! Graph workloads for the shared-arrangements evaluation (paper §6.2, Appendix C).
//!
//! * [`generate`] — seeded synthetic graph generators standing in for the paper's
//!   LiveJournal/Orkut/Twitter datasets (substitution S3 in DESIGN.md).
//! * [`algorithms`] — differential implementations of reachability, breadth-first
//!   distances, single-source shortest paths, and undirected connectivity.
//! * [`interactive`] — the four interactive query classes of Figure 5 / Table 10
//!   (point look-up, 1-hop, 2-hop, 4-hop shortest path), built either against a shared
//!   arrangement of the graph or against per-query private arrangements.
//! * [`plans`] — the same four query classes expressed as runtime [`kpg_plan::Plan`]
//!   values, installable from data through a [`kpg_plan::Manager`].
//! * [`baseline`] — the paper's "purpose-written single-threaded code" comparators
//!   (array- and hash-map-based BFS, union-find connectivity).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithms;
pub mod baseline;
pub mod generate;
pub mod interactive;
pub mod plans;

/// A directed edge between two node identifiers.
pub type Edge = (u32, u32);
