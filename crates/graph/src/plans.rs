//! The four interactive query classes of §6.2, *expressed as runtime plans*.
//!
//! [`interactive`](crate::interactive) builds these queries as closures compiled into
//! the binary; this module states the same queries as [`Plan`] values a
//! [`Manager`](kpg_plan::Manager) can install from data — the shape a query server
//! receives over the wire. `crates/graph/tests/plan_equivalence.rs` proves the two
//! formulations produce identical output updates; `churn --plan` measures the
//! plan-compilation overhead against the closure baseline.
//!
//! Row conventions: edges are `[src, dst]`, node arguments are `[node]`, pair arguments
//! are `[src, dst]` — all as [`Value::UInt`].

use kpg_plan::{Expr, Plan, ReduceKind, Row, Value};

use crate::Edge;

/// An edge as a plan row: `[src, dst]`.
pub fn edge_row(edge: Edge) -> Row {
    Row::from(vec![Value::from(edge.0), Value::from(edge.1)])
}

/// A node argument as a plan row: `[node]`.
pub fn node_row(node: u32) -> Row {
    Row::from(vec![Value::from(node)])
}

/// A `(src, dst)` argument as a plan row: `[src, dst]`.
pub fn pair_row(pair: (u32, u32)) -> Row {
    Row::from(vec![Value::from(pair.0), Value::from(pair.1)])
}

/// Reads column `index` of `row` back as a `u32` (panics on non-UInt columns — these
/// helpers are test/bench conversions for rows produced by the plans in this module).
pub fn row_u32(row: &Row, index: usize) -> u32 {
    match &row[index] {
        Value::UInt(value) => u32::try_from(*value).expect("node id fits u32"),
        other => panic!("expected UInt node id, found {other:?}"),
    }
}

/// Point look-up: for every argument node, its out-neighbours — `[q, dst]` rows.
///
/// The plan-IR rendering of
/// [`InteractiveSession::install_lookup`](crate::interactive::InteractiveSession::install_lookup).
pub fn lookup_plan(edges: &str, args: &str) -> Plan {
    // key [q] ++ left rest [] ++ right rest [dst]  =  [q, dst]
    Plan::source(args).join(Plan::source(edges), vec![(0, 0)])
}

/// 1-hop: the same dataflow shape as look-up, kept separate to model a distinct query
/// class (as the closure version does).
pub fn one_hop_plan(edges: &str, args: &str) -> Plan {
    lookup_plan(edges, args)
}

/// 2-hop: for every argument node, the nodes two hops away — `[q, dst]` rows, set
/// semantics.
pub fn two_hop_plan(edges: &str, args: &str) -> Plan {
    Plan::source(args)
        .join(Plan::source(edges), vec![(0, 0)]) // [q, mid]
        .join(Plan::source(edges), vec![(1, 0)]) // [mid, q, dst]
        .map(vec![Expr::col(1), Expr::col(2)]) // [q, dst]
        .distinct()
}

/// 4-hop path: for every argument pair `(src, dst)`, the hop count of the shortest
/// directed path of length at most four, if one exists — `[src, dst, hops]` rows.
pub fn four_path_plan(edges: &str, args: &str) -> Plan {
    // The frontier after 0 hops: [node, src, dst] with node = src.
    let mut frontier = Plan::source(args).map(vec![Expr::col(0), Expr::col(0), Expr::col(1)]);
    let mut per_hop = Vec::new();
    for hop in 1..=4u32 {
        // key [node] ++ left rest [src, dst] ++ right rest [next] = [node, src, dst, next]
        let reached = frontier
            .clone()
            .join(Plan::source(edges), vec![(0, 0)])
            .map(vec![Expr::col(3), Expr::col(1), Expr::col(2)]); // [next, src, dst]
                                                                  // Arrivals at the destination report their hop count: [src, dst, hop].
        per_hop.push(
            reached
                .clone()
                .filter(Expr::col(0).eq(Expr::col(2)))
                .map(vec![Expr::col(1), Expr::col(2), Expr::lit(hop)]),
        );
        frontier = reached.distinct();
    }
    // The least hop count per (src, dst) pair.
    Plan::Concat(per_hop).reduce(2, ReduceKind::Min(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_conversions_round_trip() {
        let row = edge_row((3, 9));
        assert_eq!(row_u32(&row, 0), 3);
        assert_eq!(row_u32(&row, 1), 9);
        assert_eq!(node_row(7), Row::from(vec![Value::UInt(7)]));
        assert_eq!(pair_row((1, 2)), edge_row((1, 2)));
    }

    #[test]
    fn query_class_plans_validate() {
        let known: std::collections::BTreeSet<String> =
            ["edges".to_string(), "args".to_string()].into();
        for plan in [
            lookup_plan("edges", "args"),
            one_hop_plan("edges", "args"),
            two_hop_plan("edges", "args"),
            four_path_plan("edges", "args"),
        ] {
            plan.validate(&known).unwrap();
        }
    }
}
