//! Plan/closure equivalence: the plan-IR formulations of the §6.2 query classes must
//! produce the *same output updates* as the closure-built `InteractiveSession` versions.
//!
//! Both formulations are driven with an identical seeded workload (same initial graph,
//! same per-epoch argument and edge churn, same epochs); every captured `(answer, time,
//! diff)` stream is consolidated (sorted, coalesced, zeros dropped) and the two sides
//! compared for equality — on 1 and 2 workers, with the multi-worker streams unioned
//! across workers first. Consolidation is the right equality: batching granularity
//! within an epoch is an implementation detail, the consolidated update set is the
//! semantics.

use kpg_core::prelude::*;
use kpg_dataflow::Time;
use kpg_graph::generate;
use kpg_graph::interactive::InteractiveSession;
use kpg_graph::plans::{
    edge_row, four_path_plan, lookup_plan, node_row, pair_row, row_u32, two_hop_plan,
};
use kpg_graph::Edge;
use kpg_plan::{Command, Manager, Row};
use kpg_timestamp::rng::SmallRng;

const NODES: u32 = 40;
const INITIAL_EDGES: usize = 150;
const EPOCHS: u64 = 6;
const SEED: u64 = 11;

/// One epoch's interactive activity, identical for both formulations.
struct Step {
    node_args: Vec<u32>,
    pair_args: Vec<(u32, u32)>,
    additions: Vec<Edge>,
    removals: Vec<Edge>,
}

fn workload() -> (Vec<Edge>, Vec<Step>) {
    let initial = generate::uniform(NODES, INITIAL_EDGES, SEED);
    let mut live = initial.clone();
    let mut rng = SmallRng::seed_from_u64(SEED ^ 0xfeed);
    let mut steps = Vec::new();
    for _ in 0..EPOCHS {
        let node_args = vec![rng.gen_range(0..NODES), rng.gen_range(0..NODES)];
        let pair_args = vec![(rng.gen_range(0..NODES), rng.gen_range(0..NODES))];
        let additions = vec![
            (rng.gen_range(0..NODES), rng.gen_range(0..NODES)),
            (rng.gen_range(0..NODES), rng.gen_range(0..NODES)),
        ];
        let victim = rng.gen_range(0..live.len() as u32) as usize;
        let removals = vec![live.swap_remove(victim)];
        live.extend(additions.iter().copied());
        steps.push(Step {
            node_args,
            pair_args,
            additions,
            removals,
        });
    }
    (initial, steps)
}

/// Sorts, coalesces, and drops zeros: the canonical form of an update stream.
fn consolidated<D: Ord + Clone>(streams: Vec<Vec<(D, Time, isize)>>) -> Vec<(D, Time, isize)> {
    let mut updates: Vec<(D, Time, isize)> = streams.into_iter().flatten().collect();
    updates.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
    let mut result: Vec<(D, Time, isize)> = Vec::new();
    for (data, time, diff) in updates {
        match result.last_mut() {
            Some((d, t, r)) if *d == data && *t == time => *r += diff,
            _ => result.push((data, time, diff)),
        }
    }
    result.retain(|(_, _, diff)| *diff != 0);
    result
}

type PairUpdates = Vec<((u32, u32), Time, isize)>;
type TripleUpdates = Vec<((u32, u32, u32), Time, isize)>;

/// The closure formulation: `InteractiveSession` with the three query classes installed
/// up front, driven through the shared workload.
fn run_closures(workers: usize) -> (PairUpdates, PairUpdates, TripleUpdates) {
    let per_worker = execute(Config::new(workers), move |worker| {
        let peers = worker.peers();
        let index = worker.index();
        let (initial, steps) = workload();

        let catalog = Catalog::new();
        let mut session = InteractiveSession::install(worker, &catalog, "edges");
        let mut lookup = session.install_lookup(worker, "lookup").unwrap();
        let mut two_hop = session.install_two_hop(worker, "two-hop").unwrap();
        let mut four_path = session.install_four_path(worker, "four-path").unwrap();

        for (i, edge) in initial.into_iter().enumerate() {
            if i % peers == index {
                session.edges.insert(edge);
            }
        }
        let mut epoch = 0u64;
        for step in steps {
            for (i, &arg) in step.node_args.iter().enumerate() {
                if i % peers == index {
                    lookup.result.input.insert(arg);
                    two_hop.result.input.insert(arg);
                }
            }
            for (i, &pair) in step.pair_args.iter().enumerate() {
                if i % peers == index {
                    four_path.result.input.insert(pair);
                }
            }
            for (i, &edge) in step.additions.iter().enumerate() {
                if i % peers == index {
                    session.edges.insert(edge);
                }
            }
            for (i, &edge) in step.removals.iter().enumerate() {
                if i % peers == index {
                    session.edges.remove(edge);
                }
            }
            epoch += 1;
            session.edges.advance_to(epoch);
            lookup.result.input.advance_to(epoch);
            two_hop.result.input.advance_to(epoch);
            four_path.result.input.advance_to(epoch);
            let target = Time::from_epoch(epoch);
            let probes = [
                lookup.result.probe.clone(),
                two_hop.result.probe.clone(),
                four_path.result.probe.clone(),
            ];
            worker.step_while(|| probes.iter().any(|probe| probe.less_than(&target)));
        }
        let four: TripleUpdates = four_path
            .result
            .results
            .borrow()
            .iter()
            .map(|&(((src, dst), hops), time, diff)| ((src, dst, hops), time, diff))
            .collect();
        let lookup_updates = lookup.result.results.borrow().clone();
        let two_hop_updates = two_hop.result.results.borrow().clone();
        (lookup_updates, two_hop_updates, four)
    });
    let mut lookups = Vec::new();
    let mut two_hops = Vec::new();
    let mut fours = Vec::new();
    for (lookup, two_hop, four) in per_worker {
        lookups.push(lookup);
        two_hops.push(two_hop);
        fours.push(four);
    }
    (
        consolidated(lookups),
        consolidated(two_hops),
        consolidated(fours),
    )
}

fn pair_updates(raw: Vec<(Row, Time, isize)>) -> Vec<((u32, u32), Time, isize)> {
    raw.into_iter()
        .map(|(row, time, diff)| ((row_u32(&row, 0), row_u32(&row, 1)), time, diff))
        .collect()
}

/// The plan formulation: the same workload executed as a `Manager` command stream.
/// `key_arity` selects the base-arrangement keying: `None` exercises the memoized
/// re-arrangement path, `Some(1)` the direct prefix-keyed import path.
fn run_plans(
    workers: usize,
    key_arity: Option<usize>,
) -> (PairUpdates, PairUpdates, TripleUpdates) {
    let per_worker = execute(Config::new(workers), move |worker| {
        let (initial, steps) = workload();
        let mut manager = Manager::new();
        let run = |manager: &mut Manager, worker: &mut Worker, command: Command| {
            manager.execute(worker, command).unwrap();
        };
        run(
            &mut manager,
            worker,
            Command::CreateInput {
                name: "edges".into(),
                key_arity,
            },
        );
        for (name, plan, locals) in [
            ("lookup", lookup_plan("edges", "lookup-args"), "lookup-args"),
            (
                "two-hop",
                two_hop_plan("edges", "two-hop-args"),
                "two-hop-args",
            ),
            (
                "four-path",
                four_path_plan("edges", "four-path-args"),
                "four-path-args",
            ),
        ] {
            run(
                &mut manager,
                worker,
                Command::Install {
                    name: name.into(),
                    plan,
                    locals: vec![locals.into()],
                },
            );
        }
        let update =
            |manager: &mut Manager, worker: &mut Worker, name: &str, row: Row, diff: isize| {
                manager
                    .execute(
                        worker,
                        Command::Update {
                            name: name.into(),
                            row,
                            diff,
                        },
                    )
                    .unwrap();
            };
        for edge in initial {
            update(&mut manager, worker, "edges", edge_row(edge), 1);
        }
        for (index, step) in steps.into_iter().enumerate() {
            for &arg in &step.node_args {
                update(&mut manager, worker, "lookup-args", node_row(arg), 1);
                update(&mut manager, worker, "two-hop-args", node_row(arg), 1);
            }
            for &pair in &step.pair_args {
                update(&mut manager, worker, "four-path-args", pair_row(pair), 1);
            }
            for &edge in &step.additions {
                update(&mut manager, worker, "edges", edge_row(edge), 1);
            }
            for &edge in &step.removals {
                update(&mut manager, worker, "edges", edge_row(edge), -1);
            }
            let epoch = index as u64 + 1;
            run(&mut manager, worker, Command::AdvanceTime { epoch });
            manager.settle(worker);
        }
        let four: TripleUpdates = manager
            .raw_results("four-path")
            .unwrap()
            .into_iter()
            .map(|(row, time, diff)| {
                (
                    (row_u32(&row, 0), row_u32(&row, 1), row_u32(&row, 2)),
                    time,
                    diff,
                )
            })
            .collect();
        (
            pair_updates(manager.raw_results("lookup").unwrap()),
            pair_updates(manager.raw_results("two-hop").unwrap()),
            four,
        )
    });
    let mut lookups = Vec::new();
    let mut two_hops = Vec::new();
    let mut fours = Vec::new();
    for (lookup, two_hop, four) in per_worker {
        lookups.push(lookup);
        two_hops.push(two_hop);
        fours.push(four);
    }
    (
        consolidated(lookups),
        consolidated(two_hops),
        consolidated(fours),
    )
}

fn assert_equivalent(workers: usize) {
    let (closure_lookup, closure_two_hop, closure_four) = run_closures(workers);
    assert!(
        !closure_two_hop.is_empty(),
        "the workload must exercise the queries"
    );
    for key_arity in [None, Some(1)] {
        let (plan_lookup, plan_two_hop, plan_four) = run_plans(workers, key_arity);
        assert_eq!(
            closure_lookup, plan_lookup,
            "lookup updates diverge on {workers} workers (key_arity {key_arity:?})"
        );
        assert_eq!(
            closure_two_hop, plan_two_hop,
            "2-hop updates diverge on {workers} workers (key_arity {key_arity:?})"
        );
        assert_eq!(
            closure_four, plan_four,
            "4-hop path updates diverge on {workers} workers (key_arity {key_arity:?})"
        );
    }
}

#[test]
fn plan_and_closure_two_hop_agree_on_one_worker() {
    assert_equivalent(1);
}

#[test]
fn plan_and_closure_two_hop_agree_on_two_workers() {
    assert_equivalent(2);
}
