//! The nonblocking connection state machine: incremental frame assembly on the way
//! in, a coalescing write queue with partial-write tracking on the way out.
//!
//! [`FrameStream`] wraps any nonblocking byte stream (a `TcpStream` in the server;
//! an in-memory fake in tests). It never blocks: reads drain whatever the kernel
//! has and stop at `WouldBlock`; writes push as much of the queued output as the
//! socket accepts and remember the rest. The caller drives it from readiness
//! events and uses the returned facts — frames completed, backlog remaining — to
//! manage poller interest.

use std::collections::VecDeque;
use std::io::{self, Read, Write};

use kpg_wire::{Frame, FrameAssembler};

/// What one [`FrameStream::fill`] pass learned about the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillOutcome {
    /// The kernel buffer was drained; more bytes may arrive later.
    Drained,
    /// The peer closed (EOF) or the stream errored; no more bytes will arrive.
    Closed,
}

/// Progress made by one [`FrameStream::flush`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushProgress {
    /// Queued frames whose final byte reached the socket during this pass.
    pub frames_completed: usize,
    /// Bytes still queued after the pass; nonzero means the socket blocked and the
    /// caller should arm write interest.
    pub backlog: usize,
}

/// A framed, nonblocking duplex stream. See the module docs.
pub struct FrameStream<S> {
    stream: S,
    assembler: FrameAssembler,
    /// Outgoing bytes: a contiguous buffer consumed from `out_pos`, compacted when
    /// fully drained so steady-state flushes never memmove.
    out: Vec<u8>,
    out_pos: usize,
    /// Byte length of each queued frame still (partially) unwritten, front first —
    /// how `flush` counts completed responses for backpressure accounting.
    out_frames: VecDeque<usize>,
    /// Bytes of the front queued frame already written in earlier passes.
    front_written: usize,
}

impl<S: Read + Write> FrameStream<S> {
    /// Wraps `stream` (which must already be in nonblocking mode) with a per-frame
    /// buffer limit of `limit` bytes.
    pub fn new(stream: S, limit: usize) -> FrameStream<S> {
        FrameStream {
            stream,
            assembler: FrameAssembler::new(limit),
            out: Vec::new(),
            out_pos: 0,
            out_frames: VecDeque::new(),
            front_written: 0,
        }
    }

    /// The wrapped stream (for poller registration and socket options).
    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// Reads until the kernel has nothing more (`WouldBlock`), feeding every chunk
    /// to the frame assembler. Call on read readiness; completed frames then pop
    /// from [`FrameStream::next_frame`].
    pub fn fill(&mut self, scratch: &mut [u8]) -> FillOutcome {
        loop {
            match self.stream.read(scratch) {
                Ok(0) => return FillOutcome::Closed,
                Ok(read) => self.assembler.ingest(&scratch[..read]),
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                    return FillOutcome::Drained
                }
                Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return FillOutcome::Closed,
            }
        }
    }

    /// The next fully assembled incoming frame, in stream order.
    pub fn next_frame(&mut self) -> Option<Frame> {
        self.assembler.next_frame()
    }

    /// Whether assembled-but-unpopped frames remain (bytes already read off the
    /// socket — no readiness event will re-announce them, so a caller that stopped
    /// popping for backpressure must come back for these on its own).
    pub fn has_pending_frames(&self) -> bool {
        self.assembler.pending_frames() > 0
    }

    /// Whether the peer can still be owed nothing: the assembler sits at a frame
    /// boundary with nothing buffered. False at EOF means the peer truncated a
    /// frame mid-stream.
    pub fn is_clean(&self) -> bool {
        self.assembler.is_idle()
    }

    /// Queues one outgoing frame (4-byte big-endian length prefix + payload).
    /// Nothing is written until [`FrameStream::flush`] — callers coalesce several
    /// responses per flush.
    ///
    /// # Panics
    ///
    /// If `payload` exceeds `u32::MAX` bytes (unrepresentable in the header).
    pub fn queue_frame(&mut self, payload: &[u8]) {
        let length = u32::try_from(payload.len()).expect("frame payload exceeds u32::MAX bytes");
        self.out.extend_from_slice(&length.to_be_bytes());
        self.out.extend_from_slice(payload);
        self.out_frames.push_back(4 + payload.len());
    }

    /// Bytes queued and not yet accepted by the socket.
    pub fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Writes as much queued output as the socket accepts. Returns the frames
    /// completed and the remaining backlog; `Err` means the connection is dead.
    pub fn flush(&mut self) -> io::Result<FlushProgress> {
        let mut progress = FlushProgress::default();
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(written) => {
                    self.out_pos += written;
                    // Attribute the written bytes to queued frames, counting each
                    // frame whose final byte just left.
                    let mut credited = written + self.front_written;
                    self.front_written = 0;
                    while let Some(&front) = self.out_frames.front() {
                        if credited >= front {
                            credited -= front;
                            self.out_frames.pop_front();
                            progress.frames_completed += 1;
                        } else {
                            self.front_written = credited;
                            break;
                        }
                    }
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => break,
                Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
                Err(error) => return Err(error),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        progress.backlog = self.backlog();
        Ok(progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpg_wire::write_frame;

    /// An in-memory nonblocking stream: reads deliver scripted chunks (then
    /// WouldBlock), writes accept a capped number of bytes per call.
    struct FakeStream {
        incoming: VecDeque<Vec<u8>>,
        written: Vec<u8>,
        write_cap: usize,
        eof_after_script: bool,
    }

    impl Read for FakeStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.incoming.pop_front() {
                Some(chunk) => {
                    let take = chunk.len().min(buf.len());
                    buf[..take].copy_from_slice(&chunk[..take]);
                    if take < chunk.len() {
                        self.incoming.push_front(chunk[take..].to_vec());
                    }
                    Ok(take)
                }
                None if self.eof_after_script => Ok(0),
                None => Err(io::Error::from(io::ErrorKind::WouldBlock)),
            }
        }
    }

    impl Write for FakeStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let take = buf.len().min(self.write_cap);
            if take == 0 {
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            self.written.extend_from_slice(&buf[..take]);
            Ok(take)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frames_assemble_across_single_byte_chunks() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"world").unwrap();
        let stream = FakeStream {
            incoming: wire.iter().map(|byte| vec![*byte]).collect(),
            written: Vec::new(),
            write_cap: usize::MAX,
            eof_after_script: false,
        };
        let mut conn = FrameStream::new(stream, 64);
        let mut scratch = [0u8; 8];
        assert_eq!(conn.fill(&mut scratch), FillOutcome::Drained);
        assert_eq!(conn.next_frame(), Some(Frame::Payload(b"hello".to_vec())));
        assert_eq!(conn.next_frame(), Some(Frame::Payload(b"world".to_vec())));
        assert_eq!(conn.next_frame(), None);
        assert!(conn.is_clean());
    }

    #[test]
    fn partial_writes_complete_frames_across_flushes() {
        let stream = FakeStream {
            incoming: VecDeque::new(),
            written: Vec::new(),
            write_cap: 3,
            eof_after_script: false,
        };
        let mut conn = FrameStream::new(stream, 64);
        conn.queue_frame(b"abcdef");
        conn.queue_frame(b"gh");
        // 4+6 + 4+2 = 16 bytes at 3 per write: several passes, frames credited
        // exactly when their last byte leaves.
        let mut completed = 0;
        while conn.backlog() > 0 {
            completed += conn.flush().unwrap().frames_completed;
        }
        assert_eq!(completed, 2);
        let mut expected = Vec::new();
        write_frame(&mut expected, b"abcdef").unwrap();
        write_frame(&mut expected, b"gh").unwrap();
        assert_eq!(conn.stream.written, expected);
    }

    #[test]
    fn eof_mid_frame_is_not_clean() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        wire.truncate(wire.len() - 2);
        let stream = FakeStream {
            incoming: VecDeque::from([wire]),
            written: Vec::new(),
            write_cap: usize::MAX,
            eof_after_script: true,
        };
        let mut conn = FrameStream::new(stream, 64);
        let mut scratch = [0u8; 32];
        assert_eq!(conn.fill(&mut scratch), FillOutcome::Closed);
        assert_eq!(conn.next_frame(), None);
        assert!(!conn.is_clean(), "a truncated frame is not a clean EOF");
    }
}
