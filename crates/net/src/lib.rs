//! A dependency-free readiness reactor: the event-driven I/O layer under
//! `kpg_server`.
//!
//! The crate has exactly three layers, from bottom to top:
//!
//! * [`sys`] (private) — the platform selector: epoll on Linux, kqueue on the
//!   BSDs and macOS, reached through hand-written `extern "C"` declarations.
//!   This module is the workspace's **third sanctioned unsafe site** (after the
//!   server binary's signal-handler registration and the recovery test's
//!   `kill`): every `unsafe` block carries a SAFETY comment and the module is
//!   enumerated in `lint_unsafe_allow.txt`, which the `lint_sync` scanner
//!   enforces. Everything above it — including everything this crate exports —
//!   is safe Rust.
//! * [`poller`] — the safe readiness surface: [`Poller`] multiplexes any number
//!   of fds on one thread, [`Interest`] mutes and unmutes directions (the
//!   backpressure lever), and [`Waker`] lets any thread pop a parked
//!   [`Poller::wait`].
//! * [`conn`] — the per-connection state machine: [`FrameStream`] does
//!   incremental frame assembly (via `kpg_wire`'s [`FrameAssembler`]) on reads
//!   and coalesced, partial-write-safe frame emission on writes, never
//!   blocking in either direction.
//!
//! What this crate deliberately does *not* contain: threads, locks, protocol
//! knowledge, or server policy. The reactor loop itself — accept handling,
//! batched sequencing, response routing — lives in `kpg_server::net`, built
//! from these parts.
//!
//! [`FrameAssembler`]: kpg_wire::FrameAssembler

#![deny(missing_docs)]
// `forbid` would be unoverridable; `sys` opts back in with `allow(unsafe_code)`
// and is the only module permitted to (see the unsafe-audit inventory in the
// README).
#![deny(unsafe_code)]

pub mod conn;
pub mod poller;
mod sys;

pub use conn::{FillOutcome, FlushProgress, FrameStream};
pub use poller::{Event, Interest, Poller, Waker};
