//! The safe readiness surface: [`Poller`], [`Interest`], [`Event`], and the
//! cross-thread [`Waker`].
//!
//! Everything here is safe Rust; the platform syscalls live in [`crate::sys`]. The
//! poller is level-triggered on both backends: an fd with unconsumed readiness is
//! reported again on the next wait, so a consumer that processes only part of what
//! is available stays correct (if not maximally efficient) — the property the
//! server's read-interest backpressure relies on.

use std::io;
use std::os::fd::AsRawFd;
use std::time::Duration;

use kpg_sync::atomic::{AtomicBool, Ordering};

use crate::sys;

/// What a registration wants to hear about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Readiness to read (incoming bytes, pending accepts, peer hangup).
    pub read: bool,
    /// Readiness to write (socket send buffer has room).
    pub write: bool,
}

impl Interest {
    /// Read interest only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write interest only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
    /// Registered but currently muted (backpressure): hangups still surface as
    /// read readiness on the next unmute or write attempt.
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One decoded readiness event. Error and hangup conditions are folded into
/// `readable`/`writable` — a read or write on the fd observes the actual state,
/// which is the only robust way to learn *what* happened.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd will not block on read (data, accept, EOF, or error pending).
    pub readable: bool,
    /// The fd will not block on write (or is in an error state a write reports).
    pub writable: bool,
}

/// A readiness selector: epoll on Linux, kqueue on the BSDs. One instance serves
/// any number of registered fds; [`Poller::wait`] parks the calling thread until
/// something is ready, a timeout passes, or a [`Waker`] is rung.
pub struct Poller {
    selector: sys::Selector,
    scratch: std::cell::RefCell<Vec<sys::RawEvent>>,
}

impl Poller {
    /// Creates a poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            selector: sys::Selector::new()?,
            scratch: std::cell::RefCell::new(Vec::with_capacity(256)),
        })
    }

    /// Registers `fd` under `token` with the given interest. The fd must stay open
    /// until [`Poller::deregister`]; the caller keeps ownership.
    pub fn register(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.selector
            .register(fd.as_raw_fd(), token, interest.read, interest.write)
    }

    /// Replaces the interest set of an already registered fd.
    pub fn reregister(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.selector
            .modify(fd.as_raw_fd(), token, interest.read, interest.write)
    }

    /// Removes a registration. (Closing an fd deregisters it implicitly on both
    /// backends, but doing it explicitly keeps the bookkeeping honest.)
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.selector.deregister(fd.as_raw_fd())
    }

    /// Blocks until at least one registered fd is ready (or `timeout` elapses, or a
    /// registered [`Waker`] is rung), appending the events to `events`. `None`
    /// blocks indefinitely. Returns the number of events appended; zero means the
    /// timeout elapsed.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let mut scratch = self.scratch.borrow_mut();
        scratch.clear();
        self.selector.wait(&mut scratch, timeout)?;
        let count = scratch.len();
        events.extend(scratch.drain(..).map(|raw| Event {
            token: raw.token,
            readable: raw.readable,
            writable: raw.writable,
        }));
        Ok(count)
    }
}

/// Wakes a thread parked in [`Poller::wait`] from any other thread.
///
/// A pipe-based doorbell in the eventfd mold: ringing writes one byte the poller
/// sees as read readiness on the waker's token. An [`AtomicBool`] keeps at most one
/// byte in flight no matter how many threads ring concurrently, so ringing is a
/// single atomic swap (plus one 1-byte write for the first ringer) and can never
/// block — the pipe never holds more than one byte.
pub struct Waker {
    reader: std::io::PipeReader,
    writer: std::io::PipeWriter,
    rung: AtomicBool,
}

impl Waker {
    /// Creates a waker and registers its read side with `poller` under `token`.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        let (reader, writer) = std::io::pipe()?;
        // Nonblocking on both ends: a drain with nothing pending must not park the
        // reactor, and a ring must never park the ringer (the flag already bounds
        // the pipe to one byte, this is belt and braces).
        sys::set_nonblocking(reader.as_raw_fd())?;
        sys::set_nonblocking(writer.as_raw_fd())?;
        let waker = Waker {
            reader,
            writer,
            rung: AtomicBool::new(false),
        };
        poller.register(&waker.reader, token, Interest::READ)?;
        Ok(waker)
    }

    /// Rings the doorbell: the poller's current (or next) wait returns with a
    /// readable event on the waker's token. Idempotent until drained.
    pub fn wake(&self) {
        use std::io::Write;
        if !self.rung.swap(true, Ordering::SeqCst) {
            // One byte; the flag guarantees the pipe was empty, so this cannot
            // block and a failure (unreachable in practice) only costs a wakeup
            // that the next ring re-attempts.
            let _ = (&self.writer).write(&[1u8]);
        }
    }

    /// Consumes the pending wakeup. Call after the poller reports the waker's
    /// token, *before* draining whatever queue the ring advertised: a ring that
    /// arrives after this reset writes a fresh byte and re-wakes the poller, so no
    /// notification is lost.
    pub fn drain(&self) {
        use std::io::Read;
        let mut sink = [0u8; 16];
        let _ = (&self.reader).read(&mut sink);
        self.rung.store(false, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waker").finish_non_exhaustive()
    }
}
