//! The platform readiness syscalls: the crate's (and, with the signal-handler
//! registration in the server binary and the test-only SIGTERM in the recovery
//! suite, the workspace's third) sanctioned unsafe site.
//!
//! Everything unsafe in `kpg_net` lives in this module, and all of it is FFI onto
//! libc symbols the platform always links: `epoll` on Linux/Android, `kqueue` on the
//! BSD family and macOS, plus one `fcntl` to make the waker pipe nonblocking. The
//! declarations are written out by hand instead of pulling in the `libc` crate — the
//! workspace is dependency-free — and every call site carries a SAFETY comment. The
//! `lint_sync`-style unsafe scanner (`cargo run -p kpg_bench --bin lint_sync`)
//! enforces that no unsafe appears anywhere above this module: its allowlist names
//! exactly this file and the two historical sites.
//!
//! The surface exported to the rest of the crate is entirely safe:
//! [`Selector`] (create/register/modify/deregister fds, wait for events) and
//! [`set_nonblocking`]. Events come back as the portable [`RawEvent`].

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

/// One readiness event, decoded out of the platform representation.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RawEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept), or hung up / errored — both
    /// of which a read observes, so they are folded into readability.
    pub readable: bool,
    /// The fd can accept more bytes.
    pub writable: bool,
}

/// Marks an fd nonblocking (`fcntl(F_SETFL, O_NONBLOCK)`). Used for the waker pipe,
/// whose `std::io` handles expose no `set_nonblocking` of their own.
pub(crate) fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    extern "C" {
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    }
    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    #[cfg(any(target_os = "linux", target_os = "android"))]
    const O_NONBLOCK: i32 = 0o4000;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    const O_NONBLOCK: i32 = 0x4;
    // SAFETY: `fcntl` is declared with the variadic-collapsed signature every unix
    // libc exports for the F_GETFL/F_SETFL forms (the third argument is a plain
    // int). `fd` is a live descriptor owned by the caller; the call mutates only
    // that descriptor's flag word inside the kernel.
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: same declaration as above; setting O_NONBLOCK on a pipe fd is always
    // permitted and affects no memory on our side.
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(any(target_os = "linux", target_os = "android"))]
pub(crate) use epoll::Selector;

/// The Linux backend: level-triggered `epoll`.
#[cfg(any(target_os = "linux", target_os = "android"))]
mod epoll {
    use super::RawEvent;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    // The kernel packs `epoll_event` on x86-64 (and only there); mirroring the
    // layout exactly is what makes the `epoll_wait` writes below sound.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// An epoll instance. Closed on drop.
    pub(crate) struct Selector {
        epfd: RawFd,
    }

    impl Selector {
        pub(crate) fn new() -> io::Result<Selector> {
            // SAFETY: `epoll_create1` takes a flag word and touches no caller
            // memory; the returned fd (checked below) is owned by this Selector,
            // which closes it exactly once on drop.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Selector { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            let mut events = EPOLLRDHUP;
            if read {
                events |= EPOLLIN;
            }
            if write {
                events |= EPOLLOUT;
            }
            let mut event = EpollEvent {
                events,
                data: token,
            };
            // SAFETY: `event` is a live, exactly kernel-layout `epoll_event` for the
            // duration of the call (the kernel reads it, never retains the pointer),
            // and `fd`/`epfd` are live descriptors. EPOLL_CTL_DEL ignores the event
            // pointer on every kernel this code targets, but passing a valid one is
            // sound regardless.
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut event) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(crate) fn register(
            &self,
            fd: RawFd,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, read, write)
        }

        pub(crate) fn modify(
            &self,
            fd: RawFd,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, read, write)
        }

        pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, false, false)
        }

        /// Waits for readiness, appending decoded events to `out`. `None` blocks
        /// indefinitely; `Some(d)` returns after at most `d` (rounded up to a
        /// millisecond so a nonzero timeout cannot spin at zero).
        pub(crate) fn wait(
            &self,
            out: &mut Vec<RawEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let timeout_ms = timeout.map_or(-1i32, |duration| {
                i32::try_from(
                    duration
                        .as_millis()
                        .max(u128::from(u32::from(!duration.is_zero()))),
                )
                .unwrap_or(i32::MAX)
            });
            let mut buffer = [EpollEvent { events: 0, data: 0 }; 256];
            let count = loop {
                // SAFETY: `buffer` is a stack array of `maxevents` kernel-layout
                // events, valid for writes for the whole call; the kernel fills at
                // most `maxevents` entries and returns how many.
                let count = unsafe {
                    epoll_wait(
                        self.epfd,
                        buffer.as_mut_ptr(),
                        buffer.len() as i32,
                        timeout_ms,
                    )
                };
                if count >= 0 {
                    break count as usize;
                }
                let error = io::Error::last_os_error();
                if error.kind() != io::ErrorKind::Interrupted {
                    return Err(error);
                }
            };
            for event in &buffer[..count] {
                // Copy out of the (possibly packed) struct before using the fields.
                let bits = { event.events };
                let data = { event.data };
                out.push(RawEvent {
                    token: data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            // SAFETY: `epfd` was returned by `epoll_create1` and is closed exactly
            // here, once.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(any(
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "openbsd",
    target_os = "dragonfly"
))]
pub(crate) use kqueue::Selector;

/// The BSD/macOS backend: `kqueue` with level-triggered read/write filters.
#[cfg(any(
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "openbsd",
    target_os = "dragonfly"
))]
mod kqueue {
    use super::RawEvent;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    // The 64-bit layout shared by macOS, FreeBSD, OpenBSD, and DragonFly. (NetBSD
    // widens `data`/`udata` differently and is not targeted here.)
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Kevent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: usize,
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    extern "C" {
        fn kqueue() -> i32;
        fn kevent(
            kq: i32,
            changelist: *const Kevent,
            nchanges: i32,
            eventlist: *mut Kevent,
            nevents: i32,
            timeout: *const Timespec,
        ) -> i32;
        fn close(fd: i32) -> i32;
    }

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x1;
    const EV_DELETE: u16 = 0x2;
    const EV_EOF: u16 = 0x8000;
    const EV_ERROR: u16 = 0x4000;

    /// A kqueue instance. Closed on drop.
    pub(crate) struct Selector {
        kq: RawFd,
    }

    impl Selector {
        pub(crate) fn new() -> io::Result<Selector> {
            // SAFETY: `kqueue` takes nothing and touches no caller memory; the
            // returned fd is owned by this Selector and closed once on drop.
            let kq = unsafe { kqueue() };
            if kq < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Selector { kq })
        }

        fn change(&self, fd: RawFd, filter: i16, flags: u16, token: u64) -> io::Result<()> {
            let change = Kevent {
                ident: fd as usize,
                filter,
                flags,
                fflags: 0,
                data: 0,
                udata: token as usize,
            };
            // SAFETY: the changelist is one live, correctly laid out `struct
            // kevent`; the kernel reads it during the call only. A NULL eventlist
            // with zero nevents is the documented register-only form.
            if unsafe {
                kevent(
                    self.kq,
                    &change,
                    1,
                    std::ptr::null_mut(),
                    0,
                    std::ptr::null(),
                )
            } < 0
            {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(crate) fn register(
            &self,
            fd: RawFd,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            self.modify(fd, token, read, write)
        }

        pub(crate) fn modify(
            &self,
            fd: RawFd,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            // kqueue filters are independent registrations: add the wanted ones,
            // delete the unwanted (ignoring "was not registered" errors).
            if read {
                self.change(fd, EVFILT_READ, EV_ADD, token)?;
            } else {
                let _ = self.change(fd, EVFILT_READ, EV_DELETE, token);
            }
            if write {
                self.change(fd, EVFILT_WRITE, EV_ADD, token)?;
            } else {
                let _ = self.change(fd, EVFILT_WRITE, EV_DELETE, token);
            }
            Ok(())
        }

        pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let _ = self.change(fd, EVFILT_READ, EV_DELETE, 0);
            let _ = self.change(fd, EVFILT_WRITE, EV_DELETE, 0);
            Ok(())
        }

        /// Waits for readiness, appending decoded events to `out`.
        pub(crate) fn wait(
            &self,
            out: &mut Vec<RawEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let timespec = timeout.map(|duration| Timespec {
                tv_sec: duration.as_secs() as i64,
                tv_nsec: i64::from(duration.subsec_nanos()),
            });
            let timeout_ptr = timespec
                .as_ref()
                .map_or(std::ptr::null(), std::ptr::from_ref);
            let mut buffer = [Kevent {
                ident: 0,
                filter: 0,
                flags: 0,
                fflags: 0,
                data: 0,
                udata: 0,
            }; 256];
            let count = loop {
                // SAFETY: the eventlist is a stack array valid for `nevents` writes
                // for the duration of the call; the timeout pointer is either NULL
                // or a live `timespec` borrowed for the call.
                let count = unsafe {
                    kevent(
                        self.kq,
                        std::ptr::null(),
                        0,
                        buffer.as_mut_ptr(),
                        buffer.len() as i32,
                        timeout_ptr,
                    )
                };
                if count >= 0 {
                    break count as usize;
                }
                let error = io::Error::last_os_error();
                if error.kind() != io::ErrorKind::Interrupted {
                    return Err(error);
                }
            };
            for event in &buffer[..count] {
                let eof = event.flags & (EV_EOF | EV_ERROR) != 0;
                out.push(RawEvent {
                    token: event.udata as u64,
                    readable: event.filter == EVFILT_READ || eof,
                    writable: event.filter == EVFILT_WRITE || eof,
                });
            }
            Ok(())
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            // SAFETY: `kq` was returned by `kqueue` and is closed exactly here, once.
            unsafe {
                close(self.kq);
            }
        }
    }
}

#[cfg(not(any(
    target_os = "linux",
    target_os = "android",
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "openbsd",
    target_os = "dragonfly"
)))]
compile_error!(
    "kpg_net supports epoll (Linux/Android) and kqueue (macOS/iOS/FreeBSD/OpenBSD/\
     DragonFly) targets only"
);
