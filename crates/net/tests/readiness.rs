//! End-to-end readiness tests against real kernel objects: pipes, TCP sockets,
//! and the waker. These are the ground-truth checks for the `sys` FFI layer —
//! if the struct layouts or constants were wrong, these would hang or report
//! garbage tokens.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use kpg_net::{Event, FillOutcome, FrameStream, Interest, Poller, Waker};
use kpg_wire::Frame;

const TICK: Option<Duration> = Some(Duration::from_millis(50));

fn wait_for(poller: &Poller, token: u64) -> Vec<Event> {
    let mut events = Vec::new();
    for _ in 0..100 {
        poller.wait(&mut events, TICK).unwrap();
        if events.iter().any(|event| event.token == token) {
            return events;
        }
        events.clear();
    }
    panic!("no event for token {token} within 5s");
}

#[test]
fn pipe_read_readiness() {
    let poller = Poller::new().unwrap();
    let (reader, mut writer) = std::io::pipe().unwrap();
    poller.register(&reader, 7, Interest::READ).unwrap();

    // Nothing written: a short wait times out with zero events.
    let mut events = Vec::new();
    let count = poller
        .wait(&mut events, Some(Duration::from_millis(10)))
        .unwrap();
    assert_eq!(count, 0, "readiness reported on an empty pipe");

    writer.write_all(b"x").unwrap();
    let events = wait_for(&poller, 7);
    let event = events.iter().find(|event| event.token == 7).unwrap();
    assert!(event.readable);
    poller.deregister(&reader).unwrap();
}

#[test]
fn level_triggered_readiness_repeats_until_consumed() {
    let poller = Poller::new().unwrap();
    let (mut reader, mut writer) = std::io::pipe().unwrap();
    poller.register(&reader, 3, Interest::READ).unwrap();
    writer.write_all(b"ab").unwrap();

    // Unconsumed bytes must be re-announced on every wait (level-triggered).
    wait_for(&poller, 3);
    wait_for(&poller, 3);

    let mut sink = [0u8; 8];
    let got = reader.read(&mut sink).unwrap();
    assert_eq!(got, 2);
    let mut events = Vec::new();
    let count = poller
        .wait(&mut events, Some(Duration::from_millis(10)))
        .unwrap();
    assert_eq!(count, 0, "readiness persisted after the pipe was drained");
}

#[test]
fn interest_none_mutes_and_reregister_unmutes() {
    let poller = Poller::new().unwrap();
    let (reader, mut writer) = std::io::pipe().unwrap();
    poller.register(&reader, 9, Interest::READ).unwrap();
    writer.write_all(b"x").unwrap();
    wait_for(&poller, 9);

    // Mute: pending readable data no longer surfaces.
    poller.reregister(&reader, 9, Interest::NONE).unwrap();
    let mut events = Vec::new();
    let count = poller
        .wait(&mut events, Some(Duration::from_millis(10)))
        .unwrap();
    assert_eq!(count, 0, "muted registration still reported events");

    // Unmute: the same unconsumed byte surfaces again.
    poller.reregister(&reader, 9, Interest::READ).unwrap();
    wait_for(&poller, 9);
}

#[test]
fn waker_rings_and_drains() {
    let poller = Poller::new().unwrap();
    let waker = kpg_sync::Arc::new(Waker::new(&poller, 1).unwrap());

    // Ring from another thread while this one is parked in wait().
    let remote = kpg_sync::Arc::clone(&waker);
    let ringer = kpg_sync::thread::spawn(move || {
        kpg_sync::thread::sleep(Duration::from_millis(20));
        remote.wake();
    });
    let events = wait_for(&poller, 1);
    assert!(events
        .iter()
        .any(|event| event.token == 1 && event.readable));
    ringer.join().unwrap();

    // Multiple rings coalesce into one byte; drain clears it fully.
    waker.wake();
    waker.wake();
    waker.drain();
    let mut events = Vec::new();
    let count = poller
        .wait(&mut events, Some(Duration::from_millis(10)))
        .unwrap();
    assert_eq!(count, 0, "waker still readable after drain");

    // And a post-drain ring wakes again.
    waker.wake();
    wait_for(&poller, 1);
}

#[test]
fn tcp_accept_and_frame_roundtrip() {
    let poller = Poller::new().unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.set_nonblocking(true).unwrap();
    poller.register(&listener, 0, Interest::READ).unwrap();

    let addr = listener.local_addr().unwrap();
    let mut client = TcpStream::connect(addr).unwrap();

    // Accept readiness surfaces on the listener token.
    wait_for(&poller, 0);
    let (stream, _) = listener.accept().unwrap();
    stream.set_nonblocking(true).unwrap();
    let mut conn = FrameStream::new(stream, 1024);
    poller.register(conn.stream(), 2, Interest::READ).unwrap();

    // A frame written by the client assembles on readiness, even split in two.
    let mut wire = Vec::new();
    kpg_wire::write_frame(&mut wire, b"ping").unwrap();
    let (first, second) = wire.split_at(3);
    client.write_all(first).unwrap();
    client.flush().unwrap();
    kpg_sync::thread::sleep(Duration::from_millis(10));
    client.write_all(second).unwrap();

    let mut scratch = [0u8; 4096];
    let frame = loop {
        wait_for(&poller, 2);
        assert_eq!(conn.fill(&mut scratch), FillOutcome::Drained);
        if let Some(frame) = conn.next_frame() {
            break frame;
        }
    };
    assert_eq!(frame, Frame::Payload(b"ping".to_vec()));

    // Response path: queue + flush, client reads it back with the blocking reader.
    conn.queue_frame(b"pong");
    let progress = conn.flush().unwrap();
    assert_eq!(progress.frames_completed, 1);
    assert_eq!(progress.backlog, 0);
    let reply = kpg_wire::read_frame(&mut client, 1024).unwrap();
    assert_eq!(reply, Some(Frame::Payload(b"pong".to_vec())));

    // Client hangup surfaces as read readiness and then a Closed fill.
    drop(client);
    wait_for(&poller, 2);
    assert_eq!(conn.fill(&mut scratch), FillOutcome::Closed);
    assert!(conn.is_clean());
}
