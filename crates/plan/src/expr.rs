//! The data-described expression language used by `Map` and `Filter`.
//!
//! An [`Expr`] is a small tree over row columns and literals. It exists so that the
//! per-record logic of a runtime query is *data* — constructible from a wire message,
//! hashable for sub-plan memoization, comparable for plan equality — where the
//! closure-compiled operators take arbitrary Rust functions.

use crate::value::{Row, Value};

/// A scalar expression over a [`Row`].
///
/// Arithmetic follows [`Value::as_i64`] coercion unless both operands share a numeric
/// variant (`UInt + UInt` stays `UInt`; `Add` on two strings concatenates), and panics
/// on overflow — in release builds too, matching the crate's panic-on-misuse
/// evaluation semantics. Comparisons between two numbers compare numerically across
/// variants; any comparison involving a string compares [`Value`]s structurally.
/// Boolean results use [`Value::bool`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Expr {
    /// The value of the row's `i`-th column (panics at evaluation if out of range).
    Column(usize),
    /// A constant.
    Literal(Value),
    /// Addition (string concatenation when both operands are strings).
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Equality.
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality.
    Ne(Box<Expr>, Box<Expr>),
    /// Strictly less than.
    Lt(Box<Expr>, Box<Expr>),
    /// Less than or equal.
    Le(Box<Expr>, Box<Expr>),
    /// Strictly greater than.
    Gt(Box<Expr>, Box<Expr>),
    /// Greater than or equal.
    Ge(Box<Expr>, Box<Expr>),
    /// Logical conjunction of truthiness.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction of truthiness.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation of truthiness.
    Not(Box<Expr>),
}

impl Expr {
    /// The `i`-th column.
    pub fn col(index: usize) -> Expr {
        Expr::Column(index)
    }

    /// A literal.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// `self == other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Eq(Box::new(self), Box::new(other))
    }

    /// `self != other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Ne(Box::new(self), Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Lt(Box::new(self), Box::new(other))
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Le(Box::new(self), Box::new(other))
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Gt(Box::new(self), Box::new(other))
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Ge(Box::new(self), Box::new(other))
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(other))
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(other))
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(other))
    }

    /// `self && other` (truthiness).
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self || other` (truthiness).
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `!self` (truthiness).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Evaluates the expression against `row`.
    pub fn eval(&self, row: &[Value]) -> Value {
        match self {
            Expr::Column(index) => row
                .get(*index)
                .unwrap_or_else(|| {
                    panic!("column {index} out of range for row of arity {}", row.len())
                })
                .clone(),
            Expr::Literal(value) => value.clone(),
            Expr::Add(lhs, rhs) => match (lhs.eval(row), rhs.eval(row)) {
                (Value::UInt(a), Value::UInt(b)) => {
                    Value::UInt(a.checked_add(b).expect("Add overflow"))
                }
                (Value::String(mut a), Value::String(b)) => {
                    a.push_str(&b);
                    Value::String(a)
                }
                (a, b) => Value::Int(a.as_i64().checked_add(b.as_i64()).expect("Add overflow")),
            },
            Expr::Sub(lhs, rhs) => match (lhs.eval(row), rhs.eval(row)) {
                (Value::UInt(a), Value::UInt(b)) if a >= b => Value::UInt(a - b),
                (a, b) => Value::Int(a.as_i64().checked_sub(b.as_i64()).expect("Sub overflow")),
            },
            Expr::Mul(lhs, rhs) => match (lhs.eval(row), rhs.eval(row)) {
                (Value::UInt(a), Value::UInt(b)) => {
                    Value::UInt(a.checked_mul(b).expect("Mul overflow"))
                }
                (a, b) => Value::Int(a.as_i64().checked_mul(b.as_i64()).expect("Mul overflow")),
            },
            Expr::Eq(lhs, rhs) => Value::bool(compare(&lhs.eval(row), &rhs.eval(row)).is_eq()),
            Expr::Ne(lhs, rhs) => Value::bool(compare(&lhs.eval(row), &rhs.eval(row)).is_ne()),
            Expr::Lt(lhs, rhs) => Value::bool(compare(&lhs.eval(row), &rhs.eval(row)).is_lt()),
            Expr::Le(lhs, rhs) => Value::bool(compare(&lhs.eval(row), &rhs.eval(row)).is_le()),
            Expr::Gt(lhs, rhs) => Value::bool(compare(&lhs.eval(row), &rhs.eval(row)).is_gt()),
            Expr::Ge(lhs, rhs) => Value::bool(compare(&lhs.eval(row), &rhs.eval(row)).is_ge()),
            Expr::And(lhs, rhs) => Value::bool(lhs.eval(row).truthy() && rhs.eval(row).truthy()),
            Expr::Or(lhs, rhs) => Value::bool(lhs.eval(row).truthy() || rhs.eval(row).truthy()),
            Expr::Not(inner) => Value::bool(!inner.eval(row).truthy()),
        }
    }

    /// Evaluates the expression as a predicate (truthiness of [`Expr::eval`]).
    pub fn test(&self, row: &[Value]) -> bool {
        self.eval(row).truthy()
    }

    /// The greatest column index the expression reads, if it reads any.
    pub fn max_column(&self) -> Option<usize> {
        match self {
            Expr::Column(index) => Some(*index),
            Expr::Literal(_) => None,
            Expr::Add(lhs, rhs)
            | Expr::Sub(lhs, rhs)
            | Expr::Mul(lhs, rhs)
            | Expr::Eq(lhs, rhs)
            | Expr::Ne(lhs, rhs)
            | Expr::Lt(lhs, rhs)
            | Expr::Le(lhs, rhs)
            | Expr::Gt(lhs, rhs)
            | Expr::Ge(lhs, rhs)
            | Expr::And(lhs, rhs)
            | Expr::Or(lhs, rhs) => lhs.max_column().max(rhs.max_column()),
            Expr::Not(inner) => inner.max_column(),
        }
    }
}

/// Evaluates a projection list against `row`, producing the output row.
pub fn project(exprs: &[Expr], row: &Row) -> Row {
    exprs.iter().map(|expr| expr.eval(row)).collect()
}

/// Comparison used by the relational operators: numeric across `Int`/`UInt` when both
/// sides are numeric, structural otherwise.
fn compare(lhs: &Value, rhs: &Value) -> std::cmp::Ordering {
    match (lhs, rhs) {
        (Value::String(_), _) | (_, Value::String(_)) => lhs.cmp(rhs),
        (a, b) => {
            let a = match a {
                Value::Int(v) => i128::from(*v),
                Value::UInt(v) => i128::from(*v),
                Value::String(_) => unreachable!(),
            };
            let b = match b {
                Value::Int(v) => i128::from(*v),
                Value::UInt(v) => i128::from(*v),
                Value::String(_) => unreachable!(),
            };
            a.cmp(&b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_projection() {
        let row: Row = Row::from(vec![Value::UInt(4), Value::UInt(10), Value::Int(-2)]);
        assert_eq!(
            Expr::col(0).add(Expr::col(1)).eval(&row),
            Value::UInt(14),
            "UInt + UInt stays UInt"
        );
        assert_eq!(Expr::col(1).sub(Expr::col(0)).eval(&row), Value::UInt(6));
        assert_eq!(Expr::col(2).mul(Expr::lit(3i64)).eval(&row), Value::Int(-6));
        assert_eq!(
            project(&[Expr::col(2), Expr::lit("tag")], &row),
            Row::from(vec![Value::Int(-2), Value::from("tag")])
        );
    }

    #[test]
    fn comparisons_cross_numeric_variants() {
        let row: Row = Row::from(vec![Value::Int(3), Value::UInt(3), Value::UInt(5)]);
        assert!(Expr::col(0).eq(Expr::col(1)).test(&row));
        assert!(Expr::col(0).lt(Expr::col(2)).test(&row));
        assert!(Expr::col(2).ge(Expr::lit(5u64)).test(&row));
        assert!(Expr::col(0).ne(Expr::col(2)).test(&row));
    }

    #[test]
    fn boolean_connectives() {
        let row: Row = Row::from(vec![Value::UInt(1), Value::UInt(0)]);
        assert!(Expr::col(0).and(Expr::col(1).not()).test(&row));
        assert!(Expr::col(1).or(Expr::col(0)).test(&row));
        assert!(!Expr::col(1).and(Expr::col(0)).test(&row));
    }

    #[test]
    fn max_column_bounds_arity_requirements() {
        assert_eq!(Expr::lit(1u64).max_column(), None);
        assert_eq!(
            Expr::col(4).eq(Expr::col(1).add(Expr::col(7))).max_column(),
            Some(7)
        );
    }
}
