//! Runtime query plans: install dataflows from *data*, not closures.
//!
//! Everything else in this workspace builds queries by running Rust closures against a
//! [`DataflowBuilder`](kpg_dataflow::DataflowBuilder) — which means every query class is
//! compiled into the binary. The paper's interactive evaluation (§6.2) instead treats
//! queries as things that *arrive at runtime* against shared arrangements. This crate is
//! that gateway:
//!
//! * [`Value`] / [`Row`] — the uniform dynamic row type every plan-rendered collection
//!   carries, so one render pass serves every query shape.
//! * [`Expr`] — a data-described scalar language for `Map` and `Filter` (columns,
//!   literals, arithmetic, comparisons, boolean connectives).
//! * [`Plan`] — the IR: `Source`, `Map`, `Filter`, `Join { keys }`,
//!   `Reduce { Count | Sum | Min | Top }`, `Distinct`, `Concat`, `Negate`, and
//!   `Iterate`/`Recur` for fixed points. Plans are plain values (`Eq + Hash`), which is
//!   what makes sub-plan sharing *recognisable*.
//! * [`Renderer`] — the render pass compiling a validated plan into a dataflow against
//!   the existing [`Catalog`](kpg_core::Catalog) / `install_query` lifecycle. Sub-trees
//!   reading only shared state are imported from memoized shared arrangements;
//!   plan-identical subtrees across queries import the *same* trace.
//! * [`Manager`] — the per-worker engine: named inputs, the plan→trace memo registry,
//!   and [`Command`] execution (`CreateInput`, `Update`, `AdvanceTime`, `Install`,
//!   `Uninstall`, `Query`), so a driver loop can run a recorded command stream today and
//!   a network server can feed the same loop tomorrow.
//!
//! ```no_run
//! use kpg_core::prelude::*;
//! use kpg_plan::{Command, Manager, Plan, Row, Value};
//!
//! execute(Config::new(1), |worker| {
//!     let mut manager = Manager::new();
//!     let edges = |src: u32, dst: u32| -> Row { Row::from(vec![src.into(), dst.into()]) };
//!     manager
//!         .execute(worker, Command::CreateInput { name: "edges".into(), key_arity: Some(1) })
//!         .unwrap();
//!     manager
//!         .execute(
//!             worker,
//!             Command::Update { name: "edges".into(), row: edges(1, 2), diff: 1 },
//!         )
//!         .unwrap();
//!     // Degree count per source node, described as data:
//!     let plan = Plan::source("edges").reduce(1, kpg_plan::ReduceKind::Count);
//!     manager
//!         .execute(worker, Command::Install { name: "degrees".into(), plan, locals: vec![] })
//!         .unwrap();
//!     manager.execute(worker, Command::AdvanceTime { epoch: 1 }).unwrap();
//!     manager.settle(worker);
//!     let rows = manager.execute(worker, Command::Query { name: "degrees".into() }).unwrap();
//!     let _ = (rows, Value::UInt(1));
//! });
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod expr;
pub mod manager;
pub mod plan;
pub mod render;
pub mod value;

pub use expr::{project, Expr};
pub use manager::{Command, Manager, PlanError, Response};
pub use plan::{ArrangeKey, KeySpec, Plan, PlanValidity, ReduceKind};
pub use render::{Renderer, RowBatch, SourceBinding};
pub use value::{Row, Value};
