//! The per-worker [`Manager`]: named inputs, a plan→trace registry, and the command
//! loop that installs dataflows from data.
//!
//! This is the engine a server loop drives: every worker constructs one `Manager` and
//! executes the *same* [`Command`] stream against it (exactly as closure-built dataflows
//! must be installed identically on every worker). Commands are plain data, so the
//! stream can come from a recorded log today and a network socket tomorrow.
//!
//! **Sub-plan memoization.** Installing a plan first ensures an arrangement exists for
//! every `(sub-plan, key)` pair the render pass will import, installing small "memo"
//! dataflows for the missing ones and publishing their traces in the manager's catalog.
//! Plan-identical subtrees therefore *share one arrangement across queries* — the
//! paper's inter-query sharing applied between queries that arrive at runtime. Memo
//! entries are reference-counted by their dependants but are **retained** when the count
//! reaches zero (arrangements outlive the queries that prompted them, so the next
//! arriving query attaches in milliseconds); they are evicted when their underlying
//! input is removed, or explicitly via [`Manager::evict_unused`].

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use kpg_core::prelude::*;
use kpg_dataflow::Time;
use kpg_timestamp::{Antichain, PartialOrder};

use crate::plan::{ArrangeKey, KeySpec, Plan, PlanValidity};
use crate::render::{Renderer, SourceBinding};
use crate::value::Row;

/// One instruction of the runtime query protocol.
///
/// All workers must execute identical command streams; [`Command::Update`] is sharded
/// internally (by a deterministic row hash), so replaying one log on every worker
/// introduces each update exactly once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Creates a named, globally shared input collection (with a published base
    /// arrangement any plan can import).
    CreateInput {
        /// The input's name.
        name: String,
        /// How the base arrangement is keyed: `Some(k)` keys rows by their first `k`
        /// columns (so plans joining or reducing on that prefix import the base
        /// directly, with no re-arrangement); `None` keys rows by themselves.
        key_arity: Option<usize>,
    },
    /// Introduces one update to a named input at the current epoch.
    Update {
        /// The input to update (global, or local to an installed query).
        name: String,
        /// The row.
        row: Row,
        /// The multiplicity change.
        diff: isize,
    },
    /// Advances every input (and the catalog's read frontiers) to `epoch`.
    AdvanceTime {
        /// The new epoch; must not regress.
        epoch: u64,
    },
    /// Installs `plan` as a standing query named `name`. Sources listed in `locals` are
    /// created as inputs private to this query's dataflow (removed again on uninstall)
    /// rather than resolved against the shared inputs.
    Install {
        /// The query name (also its dataflow name).
        name: String,
        /// The plan to render.
        plan: Plan,
        /// Query-local input names.
        locals: Vec<String>,
    },
    /// Retires the named query (releasing its imports so shared traces can compact), or
    /// removes the named shared input (evicting memo arrangements built on it).
    Uninstall {
        /// The query or input name.
        name: String,
    },
    /// Reads the named query's current accumulated output: consolidated rows with
    /// multiplicities, over every time *strictly before* the current epoch — exactly
    /// the times [`Manager::settle`] seals, so a settled query's answer is
    /// deterministic. To observe an `Update`, advance time past its epoch and settle
    /// first; updates at the still-open current epoch are never reported.
    Query {
        /// The query name.
        name: String,
    },
}

/// What a successfully executed [`Command`] produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Nothing beyond success.
    Done,
    /// An `Install` completed; `new_dataflows` counts the dataflows constructed (the
    /// query itself plus any memo dataflows that were not already shared).
    Installed {
        /// Dataflows constructed by this install.
        new_dataflows: usize,
    },
    /// An `Uninstall` completed; false if nothing by that name existed.
    Uninstalled {
        /// Whether a query or input was actually removed.
        existed: bool,
    },
    /// A `Query`'s consolidated output rows.
    Rows(Vec<(Row, isize)>),
}

/// Why a command failed. The manager's state is unchanged by a failed command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The plan failed structural validation.
    Invalid(PlanValidity),
    /// A `CreateInput` (or `Install` local) reused an existing input name.
    DuplicateInput(String),
    /// An `Update` or plan source named an input that does not exist.
    UnknownInput(String),
    /// An `Install` reused the name of a live query.
    DuplicateQuery(String),
    /// A `Query` named no installed query.
    UnknownQuery(String),
    /// An `Uninstall` targeted an input still read by a live query (or a query-local
    /// input, which only its owning query's uninstall may remove).
    InputInUse {
        /// The input.
        input: String,
        /// The query keeping it alive.
        user: String,
    },
    /// Time may only advance.
    TimeRegression {
        /// The current epoch.
        from: u64,
        /// The requested epoch.
        to: u64,
    },
    /// An underlying catalog operation failed.
    Catalog(CatalogError),
    /// The server cannot currently make mutations durable (its log is failing) and
    /// is refusing state-defining commands; queries still answer from memory. Issued
    /// by the server's sequencer, never by a manager itself.
    DegradedReadOnly,
}

impl Command {
    /// A short, stable label for the command's variant — what a server logs and keys
    /// metrics on.
    pub fn kind(&self) -> &'static str {
        match self {
            Command::CreateInput { .. } => "create-input",
            Command::Update { .. } => "update",
            Command::AdvanceTime { .. } => "advance-time",
            Command::Install { .. } => "install",
            Command::Uninstall { .. } => "uninstall",
            Command::Query { .. } => "query",
        }
    }
}

impl PlanError {
    /// A short, stable machine-readable code for the error class. The wire protocol
    /// sends it alongside the human-readable message, so remote clients can match on
    /// failures without parsing display text.
    pub fn code(&self) -> &'static str {
        match self {
            PlanError::Invalid(_) => "invalid-plan",
            PlanError::DuplicateInput(_) => "duplicate-input",
            PlanError::UnknownInput(_) => "unknown-input",
            PlanError::DuplicateQuery(_) => "duplicate-query",
            PlanError::UnknownQuery(_) => "unknown-query",
            PlanError::InputInUse { .. } => "input-in-use",
            PlanError::TimeRegression { .. } => "time-regression",
            PlanError::Catalog(_) => "catalog",
            PlanError::DegradedReadOnly => "degraded-read-only",
        }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Invalid(validity) => write!(f, "invalid plan: {validity}"),
            PlanError::DuplicateInput(name) => write!(f, "an input named {name:?} exists"),
            PlanError::UnknownInput(name) => write!(f, "no input named {name:?}"),
            PlanError::DuplicateQuery(name) => write!(f, "a query named {name:?} is installed"),
            PlanError::UnknownQuery(name) => write!(f, "no query named {name:?} is installed"),
            PlanError::InputInUse { input, user } => {
                write!(f, "input {input:?} is still used by query {user:?}")
            }
            PlanError::TimeRegression { from, to } => {
                write!(f, "cannot advance time from epoch {from} back to {to}")
            }
            PlanError::Catalog(error) => write!(f, "catalog: {error}"),
            PlanError::DegradedReadOnly => {
                write!(
                    f,
                    "the server cannot write its log and is in degraded read-only mode; \
                     mutations are rejected until writes succeed again"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl From<CatalogError> for PlanError {
    fn from(error: CatalogError) -> Self {
        PlanError::Catalog(error)
    }
}

struct InputEntry {
    handle: InputHandle<Row, isize>,
    /// The catalog name of the base arrangement (None for query-local inputs, which are
    /// not importable by other queries).
    arrangement: Option<String>,
    /// How the base arrangement is keyed (always a prefix `Columns(0..k)` or
    /// `SelfRow`, so the original row is reconstructible as key ++ rest).
    keys: KeySpec,
    /// The base dataflow's probe (None for query-local inputs).
    probe: Option<ProbeHandle>,
    /// The owning query, for query-local inputs.
    owner: Option<String>,
}

struct MemoEntry {
    arrangement: String,
    dataflow: String,
    probe: ProbeHandle,
    /// Direct dependants: installed queries plus memo entries rendered on top of this
    /// one. Zero means cached-but-unused (retained until eviction).
    uses: usize,
    /// The memo keys this entry's own rendering imports.
    requirements: Vec<ArrangeKey>,
    /// Every source name the memoized sub-plan mentions (for input-removal eviction).
    sources: BTreeSet<String>,
}

struct InstalledPlan {
    probe: ProbeHandle,
    results: Rc<RefCell<Vec<(Row, Time, isize)>>>,
    requirements: Vec<ArrangeKey>,
    locals: Vec<String>,
    sources: BTreeSet<String>,
}

/// The per-worker runtime-plan engine. See the module docs for the protocol.
pub struct Manager {
    catalog: Catalog,
    epoch: u64,
    counter: u64,
    inputs: HashMap<String, InputEntry>,
    memo: HashMap<ArrangeKey, MemoEntry>,
    installed: HashMap<String, InstalledPlan>,
}

impl Default for Manager {
    fn default() -> Self {
        Self::new()
    }
}

impl Manager {
    /// A fresh manager with its own (empty) catalog, at epoch 0.
    pub fn new() -> Self {
        Manager {
            catalog: Catalog::new(),
            epoch: 0,
            counter: 0,
            inputs: HashMap::new(),
            memo: HashMap::new(),
            installed: HashMap::new(),
        }
    }

    /// Executes one command. See [`Command`] for per-variant semantics.
    pub fn execute(
        &mut self,
        worker: &mut Worker,
        command: Command,
    ) -> Result<Response, PlanError> {
        match command {
            Command::CreateInput { name, key_arity } => {
                self.create_input_keyed(worker, &name, key_arity)?;
                Ok(Response::Done)
            }
            Command::Update { name, row, diff } => {
                // Identical command streams on every worker: the update is introduced
                // only by the worker the row hashes to.
                if !self.inputs.contains_key(&name) {
                    return Err(PlanError::UnknownInput(name));
                }
                if shard_of(&row, worker.peers()) == worker.index() {
                    self.update(&name, row, diff)?;
                }
                Ok(Response::Done)
            }
            Command::AdvanceTime { epoch } => {
                self.advance_to(epoch)?;
                Ok(Response::Done)
            }
            Command::Install { name, plan, locals } => {
                let new_dataflows = self.install(worker, &name, plan, locals)?;
                Ok(Response::Installed { new_dataflows })
            }
            Command::Uninstall { name } => {
                let existed = self.uninstall(worker, &name)?;
                Ok(Response::Uninstalled { existed })
            }
            Command::Query { name } => Ok(Response::Rows(self.query(&name)?)),
        }
    }

    /// Creates a shared input whose base arrangement keys rows by themselves. See
    /// [`Manager::create_input_keyed`] for prefix-keyed bases.
    pub fn create_input(&mut self, worker: &mut Worker, name: &str) -> Result<(), PlanError> {
        self.create_input_keyed(worker, name, None)
    }

    /// Creates a shared input: a dataflow holding the input operator and a published
    /// base arrangement any plan can import. With `key_arity: Some(k)` the base keys
    /// rows by their first `k` columns — the hot-path option: plans that join or reduce
    /// on that prefix import the base arrangement directly, paying no re-arrangement
    /// (exactly what a closure-built session does when it arranges its graph by source
    /// node once). With `None` the base keys rows by themselves.
    pub fn create_input_keyed(
        &mut self,
        worker: &mut Worker,
        name: &str,
        key_arity: Option<usize>,
    ) -> Result<(), PlanError> {
        if self.inputs.contains_key(name) {
            return Err(PlanError::DuplicateInput(name.to_string()));
        }
        let keys = match key_arity {
            None => KeySpec::SelfRow,
            Some(arity) => KeySpec::Columns((0..arity).collect()),
        };
        let arrangement = format!("plan-source-{name}");
        let dataflow = format!("plan-input-{name}");
        let catalog = self.catalog.clone();
        let published = arrangement.clone();
        let split = keys.clone();
        let handle = worker
            .install_query(&dataflow, &catalog, move |builder, catalog| {
                let (handle, rows) = new_collection::<Row, isize>(builder);
                let probe = match &split {
                    KeySpec::SelfRow => {
                        let arranged =
                            rows.arrange_by_self_named("PlanSource", MergeEffort::Default);
                        catalog
                            .publish_if_absent(&published, &arranged)
                            .expect("fresh source arrangement name");
                        arranged.probe()
                    }
                    KeySpec::Columns(_) => {
                        let split = split.clone();
                        let arranged = rows
                            .map(move |row| split.split(row))
                            .arrange_by_key_named("PlanSource", MergeEffort::Default);
                        catalog
                            .publish_if_absent(&published, &arranged)
                            .expect("fresh source arrangement name");
                        arranged.probe()
                    }
                };
                (handle, probe)
            })
            .map_err(PlanError::Catalog)?;
        let (mut input, probe) = handle.result;
        input.advance_to(self.epoch);
        self.inputs.insert(
            name.to_string(),
            InputEntry {
                handle: input,
                arrangement: Some(arrangement),
                keys,
                probe: Some(probe),
                owner: None,
            },
        );
        Ok(())
    }

    /// Introduces one update to a named input at the current epoch. Unlike
    /// [`Command::Update`], this applies unconditionally: callers that use it directly
    /// are responsible for sharding updates across workers.
    pub fn update(&mut self, name: &str, row: Row, diff: isize) -> Result<(), PlanError> {
        let entry = self
            .inputs
            .get_mut(name)
            .ok_or_else(|| PlanError::UnknownInput(name.to_string()))?;
        entry.handle.update(row, diff);
        Ok(())
    }

    /// Advances every input to `epoch` and lets the catalog's arrangements consolidate
    /// history no longer distinguishable by queries installed from now on.
    pub fn advance_to(&mut self, epoch: u64) -> Result<(), PlanError> {
        if epoch < self.epoch {
            return Err(PlanError::TimeRegression {
                from: self.epoch,
                to: epoch,
            });
        }
        self.epoch = epoch;
        for entry in self.inputs.values_mut() {
            entry.handle.advance_to(epoch);
        }
        self.catalog
            .advance_all(Antichain::from_elem(Time::from_epoch(epoch)).borrow());
        Ok(())
    }

    /// Installs `plan` as a standing query. Returns the number of dataflows constructed:
    /// 1 for the query itself plus one per memo arrangement that did not already exist.
    pub fn install(
        &mut self,
        worker: &mut Worker,
        name: &str,
        plan: Plan,
        locals: Vec<String>,
    ) -> Result<usize, PlanError> {
        // Check the worker's dataflow namespace too (it also holds the manager's
        // "plan-input-…"/"plan-memo-…" dataflows): name failures are detected before
        // any memo dataflow is ensured, and later failures roll the ensured ones back,
        // so a failed command leaves no state either way.
        if self.installed.contains_key(name) || worker.installed_index(name).is_some() {
            return Err(PlanError::DuplicateQuery(name.to_string()));
        }
        let locals_set: BTreeSet<String> = locals.iter().cloned().collect();
        for local in &locals_set {
            if self.inputs.contains_key(local) {
                return Err(PlanError::DuplicateInput(local.clone()));
            }
        }
        let mut known: BTreeSet<String> = self
            .inputs
            .iter()
            .filter(|(_, entry)| entry.owner.is_none())
            .map(|(name, _)| name.clone())
            .collect();
        known.extend(locals_set.iter().cloned());
        plan.validate(&known).map_err(PlanError::Invalid)?;
        let mut sources = BTreeSet::new();
        plan.sources(&mut sources);

        // Ensure every arrangement the render pass will import exists (installing memo
        // dataflows for the missing ones), then install the query itself. A failure in
        // either part rolls back the memo dataflows this install created, so a failed
        // command still leaves no state.
        let mut requirements = Vec::new();
        plan.arrangement_requirements(&locals_set, &mut requirements);
        let mut new_dataflows = 1;
        let mut arrangements = HashMap::new();
        let mut created = Vec::new();
        for requirement in &requirements {
            match self.ensure_arranged(worker, requirement, &mut created) {
                Ok((installs, arrangement)) => {
                    new_dataflows += installs;
                    arrangements.insert(requirement.clone(), arrangement);
                }
                Err(error) => {
                    self.roll_back_created(worker, &created);
                    return Err(error);
                }
            }
        }

        let catalog = self.catalog.clone();
        let sources_map = self.source_arrangements();
        let locals_for_render = locals.clone();
        let handle = match worker.install_query(name, &catalog, move |builder, catalog| {
            let mut local_map = HashMap::new();
            let mut handles = Vec::new();
            for local in &locals_for_render {
                let (handle, collection) = new_collection::<Row, isize>(builder);
                handles.push((local.clone(), handle));
                local_map.insert(local.clone(), collection);
            }
            let renderer = Renderer::new(arrangements, sources_map, local_map);
            let output = renderer.render(builder, catalog, &plan);
            (handles, output.probe(), output.capture())
        }) {
            Ok(handle) => handle,
            Err(error) => {
                self.roll_back_created(worker, &created);
                return Err(PlanError::Catalog(error));
            }
        };
        for requirement in &requirements {
            if let Some(entry) = self.memo.get_mut(requirement) {
                entry.uses += 1;
            }
        }
        let (handles, probe, results) = handle.result;
        for (local, mut input) in handles {
            input.advance_to(self.epoch);
            self.inputs.insert(
                local,
                InputEntry {
                    handle: input,
                    arrangement: None,
                    keys: KeySpec::SelfRow,
                    probe: None,
                    owner: Some(name.to_string()),
                },
            );
        }
        self.installed.insert(
            name.to_string(),
            InstalledPlan {
                probe,
                results,
                requirements,
                locals,
                sources,
            },
        );
        Ok(new_dataflows)
    }

    /// Retires the named query, or removes the named shared input. Returns false if
    /// nothing by that name exists.
    pub fn uninstall(&mut self, worker: &mut Worker, name: &str) -> Result<bool, PlanError> {
        if let Some(query) = self.installed.remove(name) {
            for requirement in &query.requirements {
                if let Some(entry) = self.memo.get_mut(requirement) {
                    entry.uses -= 1;
                }
            }
            for local in &query.locals {
                self.inputs.remove(local);
            }
            let removed = worker.uninstall_query(name, &self.catalog);
            debug_assert!(removed, "installed query had no dataflow");
            return Ok(true);
        }
        match self.inputs.get(name) {
            None => Ok(false),
            Some(entry) => match &entry.owner {
                Some(owner) => Err(PlanError::InputInUse {
                    input: name.to_string(),
                    user: owner.clone(),
                }),
                None => {
                    self.remove_input(worker, name)?;
                    Ok(true)
                }
            },
        }
    }

    fn remove_input(&mut self, worker: &mut Worker, name: &str) -> Result<(), PlanError> {
        for (query, installed) in self.installed.iter() {
            if installed.sources.contains(name) {
                return Err(PlanError::InputInUse {
                    input: name.to_string(),
                    user: query.clone(),
                });
            }
        }
        // Evict memo arrangements built on the departing input, leaves first. With no
        // live query on the input, every such entry's dependants also mention the input,
        // so the loop drains them all.
        loop {
            let victim = self
                .memo
                .iter()
                .find(|(_, entry)| entry.sources.contains(name) && entry.uses == 0)
                .map(|(key, _)| key.clone());
            let Some(key) = victim else { break };
            self.evict(worker, &key);
        }
        debug_assert!(
            !self.memo.values().any(|entry| entry.sources.contains(name)),
            "memo entries on a removed input survived eviction"
        );
        self.inputs.remove(name);
        worker.uninstall_query(&format!("plan-input-{name}"), &self.catalog);
        Ok(())
    }

    /// Evicts every memo arrangement with no current dependant, returning how many were
    /// removed. The cache-trim operation for long sessions; newly arriving plans will
    /// rebuild (and re-share) what they need.
    pub fn evict_unused(&mut self, worker: &mut Worker) -> usize {
        let mut evicted = 0;
        loop {
            let victim = self
                .memo
                .iter()
                .find(|(_, entry)| entry.uses == 0)
                .map(|(key, _)| key.clone());
            let Some(key) = victim else { break };
            self.evict(worker, &key);
            evicted += 1;
        }
        evicted
    }

    fn evict(&mut self, worker: &mut Worker, key: &ArrangeKey) {
        let entry = self.memo.remove(key).expect("evicting a present entry");
        debug_assert_eq!(entry.uses, 0, "evicting a memo entry that is in use");
        for requirement in &entry.requirements {
            if let Some(dependency) = self.memo.get_mut(requirement) {
                dependency.uses -= 1;
            }
        }
        worker.uninstall_query(&entry.dataflow, &self.catalog);
    }

    /// Ensures an arrangement for `key` exists, installing (recursively) the memo
    /// dataflows needed. Returns `(dataflows installed, catalog arrangement name)`.
    /// Every memo entry this call creates is appended to `created` (dependencies before
    /// dependants), so a caller whose later steps fail can roll them back.
    fn ensure_arranged(
        &mut self,
        worker: &mut Worker,
        key: &ArrangeKey,
        created: &mut Vec<ArrangeKey>,
    ) -> Result<(usize, String), PlanError> {
        // A source keyed the way its base arrangement is keyed *is* the base
        // arrangement; only other keyings need a memoized re-arrangement.
        if let Plan::Source(source) = &key.plan {
            let entry = self
                .inputs
                .get(source)
                .filter(|entry| entry.owner.is_none())
                .ok_or_else(|| PlanError::UnknownInput(source.clone()))?;
            if entry.keys == key.keys {
                return Ok((0, entry.arrangement.clone().expect("global input")));
            }
        }
        if let Some(entry) = self.memo.get(key) {
            return Ok((0, entry.arrangement.clone()));
        }

        let no_locals = BTreeSet::new();
        let mut requirements = Vec::new();
        key.plan
            .arrangement_requirements(&no_locals, &mut requirements);
        let mut installs = 0;
        let mut arrangements = HashMap::new();
        for requirement in &requirements {
            let (nested, arrangement) = self.ensure_arranged(worker, requirement, created)?;
            installs += nested;
            arrangements.insert(requirement.clone(), arrangement);
        }

        self.counter += 1;
        let dataflow = format!("plan-memo-{}", self.counter);
        let arrangement = format!("plan-arr-{}", self.counter);
        let catalog = self.catalog.clone();
        let sources_map = self.source_arrangements();
        let plan = key.plan.clone();
        let keys = key.keys.clone();
        let published = arrangement.clone();
        let handle = worker
            .install_query(&dataflow, &catalog, move |builder, catalog| {
                let renderer = Renderer::new(arrangements, sources_map, HashMap::new());
                match &keys {
                    KeySpec::Columns(columns) => {
                        let arranged = renderer.render_arranged(builder, catalog, &plan, columns);
                        catalog
                            .publish_if_absent(&published, &arranged)
                            .expect("fresh memo arrangement name");
                        arranged.probe()
                    }
                    KeySpec::SelfRow => {
                        let arranged = renderer.render_arranged_self(builder, catalog, &plan);
                        catalog
                            .publish_if_absent(&published, &arranged)
                            .expect("fresh memo arrangement name");
                        arranged.probe()
                    }
                }
            })
            .map_err(PlanError::Catalog)?;
        for requirement in &requirements {
            if let Some(entry) = self.memo.get_mut(requirement) {
                entry.uses += 1;
            }
        }
        let mut sources = BTreeSet::new();
        key.plan.sources(&mut sources);
        self.memo.insert(
            key.clone(),
            MemoEntry {
                arrangement: arrangement.clone(),
                dataflow,
                probe: handle.result,
                uses: 0,
                requirements,
                sources,
            },
        );
        created.push(key.clone());
        Ok((installs + 1, arrangement))
    }

    /// Undoes a partially completed install: evicts the memo entries it `created`,
    /// newest first, so each dependant releases its dependencies before they go.
    fn roll_back_created(&mut self, worker: &mut Worker, created: &[ArrangeKey]) {
        for key in created.iter().rev() {
            self.evict(worker, key);
        }
    }

    /// The named query's consolidated output: every `(row, multiplicity)` accumulated
    /// over times *strictly before* the current epoch, sorted by row. That bound is
    /// exactly what [`Manager::settle`] waits for ([`Manager::behind`] at the current
    /// epoch), so a settled query's answer is deterministic; updates introduced at the
    /// still-open current epoch become visible after the next [`Manager::advance_to`]
    /// seals it.
    pub fn query(&self, name: &str) -> Result<Vec<(Row, isize)>, PlanError> {
        let installed = self
            .installed
            .get(name)
            .ok_or_else(|| PlanError::UnknownQuery(name.to_string()))?;
        let bound = Time::from_epoch(self.epoch);
        let mut accumulated: BTreeMap<Row, isize> = BTreeMap::new();
        for (row, time, diff) in installed.results.borrow().iter() {
            if time.less_than(&bound) {
                *accumulated.entry(row.clone()).or_insert(0) += diff;
            }
        }
        Ok(accumulated
            .into_iter()
            .filter(|(_, diff)| *diff != 0)
            .collect())
    }

    /// Every output update the named query has produced, as captured `(row, time,
    /// diff)` triples (the raw stream behind [`Manager::query`]).
    pub fn raw_results(&self, name: &str) -> Result<Vec<(Row, Time, isize)>, PlanError> {
        self.installed
            .get(name)
            .map(|installed| installed.results.borrow().clone())
            .ok_or_else(|| PlanError::UnknownQuery(name.to_string()))
    }

    /// True iff any managed dataflow (input, memo, or query) has not yet caught up to
    /// `time`.
    pub fn behind(&self, time: &Time) -> bool {
        self.inputs
            .values()
            .filter_map(|entry| entry.probe.as_ref())
            .chain(self.memo.values().map(|entry| &entry.probe))
            .chain(self.installed.values().map(|entry| &entry.probe))
            .any(|probe| probe.less_than(time))
    }

    /// Steps `worker` until everything managed is current at the manager's epoch,
    /// sealing every time strictly before it — the bound [`Manager::query`] answers
    /// over.
    pub fn settle(&self, worker: &mut Worker) {
        let target = Time::from_epoch(self.epoch);
        worker.step_while(|| self.behind(&target));
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The manager's catalog (for introspection: reader counts, arrangement sizes).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The probe of an installed query's output.
    pub fn query_probe(&self, name: &str) -> Option<ProbeHandle> {
        self.installed.get(name).map(|entry| entry.probe.clone())
    }

    /// The names of the installed queries, sorted.
    pub fn installed_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.installed.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// The names of the live inputs (shared and query-local), sorted.
    pub fn input_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inputs.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// The number of memoized sub-plan arrangements currently held.
    pub fn memo_count(&self) -> usize {
        self.memo.len()
    }

    /// The catalog name of the arrangement serving `key`, if one exists (the base
    /// arrangement for sources keyed the way their base is, a memo arrangement
    /// otherwise).
    pub fn arrangement_name(&self, key: &ArrangeKey) -> Option<String> {
        if let Plan::Source(source) = &key.plan {
            if let Some(entry) = self.inputs.get(source) {
                if entry.keys == key.keys {
                    return entry.arrangement.clone();
                }
            }
        }
        self.memo.get(key).map(|entry| entry.arrangement.clone())
    }

    /// The number of live read handles on the arrangement serving `key` — the sharing
    /// introspection: each importing dataflow holds readers, so two queries sharing a
    /// subtree are visible here.
    pub fn arrangement_reader_count(&self, key: &ArrangeKey) -> Option<usize> {
        let name = self.arrangement_name(key)?;
        self.catalog.reader_count(&name).ok()
    }

    /// The number of current dependants of the memo arrangement for `key` (0 =
    /// retained-but-unused).
    pub fn memo_uses(&self, key: &ArrangeKey) -> Option<usize> {
        self.memo.get(key).map(|entry| entry.uses)
    }

    fn source_arrangements(&self) -> HashMap<String, SourceBinding> {
        self.inputs
            .iter()
            .filter_map(|(name, entry)| {
                entry.arrangement.clone().map(|arrangement| {
                    (
                        name.clone(),
                        SourceBinding {
                            arrangement,
                            keys: entry.keys.clone(),
                        },
                    )
                })
            })
            .collect()
    }
}

/// Deterministic update sharding: the worker index that introduces `row`.
fn shard_of(row: &Row, peers: usize) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    row.hash(&mut hasher);
    (hasher.finish() % peers.max(1) as u64) as usize
}
