//! The Plan IR: dataflow-shaped query descriptions that are *data*, not closures.
//!
//! A [`Plan`] is a tree of relational operators over [`Row`](crate::Row) collections.
//! Because plans are plain values (`Eq + Hash`), the render layer can recognise when two
//! queries contain the same subtree and hand both the *same* shared arrangement — the
//! paper's inter-query sharing applied between queries that arrive at runtime.

use std::collections::BTreeSet;

use crate::expr::Expr;

/// How an aggregation reduces each key's rows (the `Reduce` plan operator).
///
/// Grouping is by the first `key_arity` columns; aggregate column indices refer to the
/// *full* input row and must address non-key columns.
///
/// `Min` and `Top` rank values by [`Value`](crate::Value)'s structural ordering —
/// variant order then payload, the same total order every arrangement sorts by — *not*
/// by the expression language's numeric cross-variant comparison: on a mixed-variant
/// column every `Int` precedes every `UInt` (so `Min` can pick `Int(7)` over `UInt(3)`
/// where `Expr::Lt` would say the opposite). Per `Value`'s contract, plans that rank a
/// column should produce it with a consistent variant.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ReduceKind {
    /// The number of rows in the group (sum of multiplicities), as one `Int` column.
    Count,
    /// The sum of the named column across the group (weighted by multiplicity), as one
    /// `Int` column.
    Sum(usize),
    /// The structurally least value of the named column among rows present in the
    /// group, as one column.
    Min(usize),
    /// The greatest-ranked row of the group by the named column (top-1, structural
    /// order): the entire non-key remainder of that row is kept.
    Top(usize),
}

/// A runtime query plan over row collections.
///
/// Every variant describes its operator with data only; [`crate::Renderer`] compiles a
/// validated plan into a live dataflow against the catalog of shared arrangements.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Plan {
    /// A named input collection (resolved against the manager's catalog, or against the
    /// query's local inputs).
    Source(String),
    /// The loop variable of the innermost enclosing [`Plan::Iterate`].
    Recur,
    /// Projects each row through a list of expressions (one per output column).
    Map {
        /// The input plan.
        input: Box<Plan>,
        /// The output columns, each an expression over the input row.
        exprs: Vec<Expr>,
    },
    /// Keeps rows whose predicate evaluates truthy.
    Filter {
        /// The input plan.
        input: Box<Plan>,
        /// The predicate expression.
        predicate: Expr,
    },
    /// Equi-joins two plans. `keys` pairs a left column with a right column; the output
    /// row is the key columns (in `keys` order) followed by the remaining left columns
    /// and then the remaining right columns, each in their original order.
    Join {
        /// The left input plan.
        left: Box<Plan>,
        /// The right input plan.
        right: Box<Plan>,
        /// Pairs of `(left column, right column)` equated by the join.
        keys: Vec<(usize, usize)>,
    },
    /// Groups by the first `key_arity` columns and aggregates each group. The output row
    /// is the key columns followed by the aggregate's columns.
    Reduce {
        /// The input plan.
        input: Box<Plan>,
        /// The number of leading columns forming the grouping key.
        key_arity: usize,
        /// The aggregation applied to each group.
        kind: ReduceKind,
    },
    /// Reduces the collection to set semantics (each present row once).
    Distinct(Box<Plan>),
    /// The multiset union of several plans.
    Concat(Vec<Plan>),
    /// Negates every multiplicity.
    Negate(Box<Plan>),
    /// The fixed point of `body` seeded with `seed`: inside `body`, [`Plan::Recur`]
    /// names the loop variable (initially `seed`, then the previous round's `body`).
    Iterate {
        /// The initial value of the loop variable (must not mention `Recur`).
        seed: Box<Plan>,
        /// The loop body, re-evaluated until no further changes circulate.
        body: Box<Plan>,
    },
}

/// How a sub-plan's rows are keyed for arrangement.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum KeySpec {
    /// Key on the listed columns (in order); the value is the remaining columns.
    Columns(Vec<usize>),
    /// Key on the entire row; the value is empty. Used by `Distinct` and by base inputs.
    SelfRow,
}

impl KeySpec {
    /// Splits `row` into `(key, value)` per this spec.
    pub fn split(&self, row: crate::Row) -> (crate::Row, crate::Row) {
        match self {
            KeySpec::SelfRow => (row, crate::Row::new()),
            KeySpec::Columns(columns) => {
                // Prefix keys (the common shape: joins and reduces on leading columns)
                // split into two contiguous slices — straight-line single-allocation
                // collects, no membership tests.
                let prefix = columns.len() <= row.len()
                    && columns
                        .iter()
                        .enumerate()
                        .all(|(slot, &index)| slot == index);
                if prefix {
                    let key: crate::Row = row[..columns.len()].iter().cloned().collect();
                    let rest: crate::Row = row[columns.len()..].iter().cloned().collect();
                    return (key, rest);
                }
                let key: crate::Row = columns.iter().map(|&index| row[index].clone()).collect();
                let rest: crate::Row = row
                    .iter()
                    .enumerate()
                    .filter(|(index, _)| !columns.contains(index))
                    .map(|(_, value)| value.clone())
                    .collect();
                (key, rest)
            }
        }
    }
}

/// A sub-plan arrangement identity: *this* subtree, keyed *this* way. The unit of
/// memoization — plan-identical subtrees with the same key spec import the same trace.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ArrangeKey {
    /// The sub-plan whose output is arranged.
    pub plan: Plan,
    /// How its rows are keyed.
    pub keys: KeySpec,
}

/// Why a plan was rejected at install time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanValidity {
    /// `Recur` appeared outside any `Iterate` body.
    RecurOutsideIterate,
    /// An `Iterate` seed mentioned `Recur`.
    RecurInSeed,
    /// A `Reduce` aggregate column indexed into the grouping key (or `Map`/`Join`
    /// columns were structurally impossible, e.g. an aggregate column below the key).
    AggregateColumnInKey {
        /// The offending aggregate column.
        column: usize,
        /// The reduce's key arity.
        key_arity: usize,
    },
    /// A column index (in an expression, a join key, or an aggregate) is out of range
    /// for its input's rows, where that input's arity is derivable at install time.
    /// Sources are dynamically shaped, so plans straight over them are not checkable —
    /// but any sub-plan whose shape an operator pins (`Map` produces exactly its
    /// expression count, `Reduce` its key plus aggregate) is.
    ColumnOutOfRange {
        /// The offending column index.
        column: usize,
        /// The input's derived row arity.
        arity: usize,
    },
    /// A `Concat` had no input plans (rendering requires at least one).
    EmptyConcat,
    /// A `Source` named an input that neither the manager nor the query defines.
    UnknownSource(String),
}

impl std::fmt::Display for PlanValidity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanValidity::RecurOutsideIterate => {
                write!(f, "Recur used outside an Iterate body")
            }
            PlanValidity::RecurInSeed => write!(f, "an Iterate seed must not mention Recur"),
            PlanValidity::AggregateColumnInKey { column, key_arity } => write!(
                f,
                "aggregate column {column} lies inside the grouping key (key_arity {key_arity})"
            ),
            PlanValidity::ColumnOutOfRange { column, arity } => write!(
                f,
                "column {column} is out of range for input rows of arity {arity}"
            ),
            PlanValidity::EmptyConcat => write!(f, "Concat requires at least one input plan"),
            PlanValidity::UnknownSource(name) => {
                write!(f, "plan names source {name:?}, which is not a known input")
            }
        }
    }
}

impl Plan {
    /// A named source.
    pub fn source(name: &str) -> Plan {
        Plan::Source(name.to_string())
    }

    /// Projects through `exprs`.
    pub fn map(self, exprs: Vec<Expr>) -> Plan {
        Plan::Map {
            input: Box::new(self),
            exprs,
        }
    }

    /// Filters by `predicate`.
    pub fn filter(self, predicate: Expr) -> Plan {
        Plan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Equi-joins with `other` on `keys`.
    pub fn join(self, other: Plan, keys: Vec<(usize, usize)>) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(other),
            keys,
        }
    }

    /// Groups by the first `key_arity` columns and aggregates with `kind`.
    pub fn reduce(self, key_arity: usize, kind: ReduceKind) -> Plan {
        Plan::Reduce {
            input: Box::new(self),
            key_arity,
            kind,
        }
    }

    /// Set semantics.
    pub fn distinct(self) -> Plan {
        Plan::Distinct(Box::new(self))
    }

    /// Multiset union with `other`.
    pub fn concat(self, other: Plan) -> Plan {
        match self {
            Plan::Concat(mut plans) => {
                plans.push(other);
                Plan::Concat(plans)
            }
            plan => Plan::Concat(vec![plan, other]),
        }
    }

    /// Negates multiplicities.
    pub fn negate(self) -> Plan {
        Plan::Negate(Box::new(self))
    }

    /// The fixed point of `body` seeded with `self`.
    pub fn iterate(self, body: Plan) -> Plan {
        Plan::Iterate {
            seed: Box::new(self),
            body: Box::new(body),
        }
    }

    /// Collects the names of every `Source` the plan mentions.
    pub fn sources(&self, into: &mut BTreeSet<String>) {
        match self {
            Plan::Source(name) => {
                into.insert(name.clone());
            }
            Plan::Recur => {}
            Plan::Map { input, .. }
            | Plan::Filter { input, .. }
            | Plan::Reduce { input, .. }
            | Plan::Distinct(input)
            | Plan::Negate(input) => input.sources(into),
            Plan::Join { left, right, .. } => {
                left.sources(into);
                right.sources(into);
            }
            Plan::Concat(plans) => {
                for plan in plans {
                    plan.sources(into);
                }
            }
            Plan::Iterate { seed, body } => {
                seed.sources(into);
                body.sources(into);
            }
        }
    }

    /// True iff the plan mentions `Recur` (is bound to an enclosing loop variable).
    pub fn mentions_recur(&self) -> bool {
        match self {
            Plan::Recur => true,
            Plan::Source(_) => false,
            Plan::Map { input, .. }
            | Plan::Filter { input, .. }
            | Plan::Reduce { input, .. }
            | Plan::Distinct(input)
            | Plan::Negate(input) => input.mentions_recur(),
            Plan::Join { left, right, .. } => left.mentions_recur() || right.mentions_recur(),
            Plan::Concat(plans) => plans.iter().any(Plan::mentions_recur),
            // An inner Iterate rebinds Recur: occurrences inside its body belong to it.
            Plan::Iterate { seed, .. } => seed.mentions_recur(),
        }
    }

    /// True iff the plan mentions any source in `names`.
    pub fn mentions_source(&self, names: &BTreeSet<String>) -> bool {
        let mut sources = BTreeSet::new();
        self.sources(&mut sources);
        sources.iter().any(|name| names.contains(name))
    }

    /// True iff this subtree must be rendered inline in the enclosing dataflow (and so
    /// cannot be memoized as a shared arrangement): it reads the loop variable or a
    /// query-local input.
    pub fn is_inline(&self, locals: &BTreeSet<String>) -> bool {
        self.mentions_recur() || self.mentions_source(locals)
    }

    /// The shared arrangements this plan's rendering will import *directly*: one entry
    /// per `Join`/`Reduce`/`Distinct` input that is not forced inline. Requirements of
    /// the sub-plans behind those arrangements are *not* included — the manager ensures
    /// them recursively when it installs each memo dataflow.
    pub fn arrangement_requirements(&self, locals: &BTreeSet<String>, into: &mut Vec<ArrangeKey>) {
        let require = |side: &Plan, keys: KeySpec, into: &mut Vec<ArrangeKey>| {
            if side.is_inline(locals) {
                // Rendered inline here; its own arrangement points become ours.
                side.arrangement_requirements(locals, into);
            } else {
                let key = ArrangeKey {
                    plan: side.clone(),
                    keys,
                };
                if !into.contains(&key) {
                    into.push(key);
                }
            }
        };
        match self {
            Plan::Source(_) | Plan::Recur => {}
            Plan::Map { input, .. } | Plan::Filter { input, .. } | Plan::Negate(input) => {
                input.arrangement_requirements(locals, into);
            }
            Plan::Concat(plans) => {
                for plan in plans {
                    plan.arrangement_requirements(locals, into);
                }
            }
            Plan::Join { left, right, keys } => {
                let left_columns: Vec<usize> = keys.iter().map(|&(l, _)| l).collect();
                let right_columns: Vec<usize> = keys.iter().map(|&(_, r)| r).collect();
                require(left, KeySpec::Columns(left_columns), into);
                require(right, KeySpec::Columns(right_columns), into);
            }
            Plan::Reduce {
                input, key_arity, ..
            } => require(input, KeySpec::Columns((0..*key_arity).collect()), into),
            Plan::Distinct(input) => require(input, KeySpec::SelfRow, into),
            Plan::Iterate { seed, body } => {
                // The seed is rendered inline (then entered); the body renders inside the
                // loop, importing its recur-free arrangements from outside it (§5.4).
                seed.arrangement_requirements(locals, into);
                body.arrangement_requirements(locals, into);
            }
        }
    }

    /// Structural validation: `Recur` placement, seed purity, non-empty `Concat`,
    /// source resolution against `known` inputs (global and query-local), and column
    /// bounds. Column bounds are checked against each operator's *derivable* row arity:
    /// sources are dynamically shaped (arity unknown), but `Map` pins its output to the
    /// expression count, `Reduce` to key-plus-aggregate, and `Join`/`Filter` propagate
    /// their inputs' — so any out-of-range expression, join-key, or aggregate column
    /// downstream of a shape-pinning operator is rejected at install time rather than
    /// panicking the worker when data arrives.
    pub fn validate(&self, known: &BTreeSet<String>) -> Result<(), PlanValidity> {
        self.validate_at(known, None).map(|_| ())
    }

    /// Validates the subtree and returns the arity of its output rows, where derivable.
    /// `loop_arity` is `Some(arity)` inside an `Iterate` body (the loop variable's
    /// derived arity, itself optional), `None` outside any loop.
    fn validate_at(
        &self,
        known: &BTreeSet<String>,
        loop_arity: Option<Option<usize>>,
    ) -> Result<Option<usize>, PlanValidity> {
        /// Rejects `column` when the input arity is derivable and the index exceeds it.
        fn check_column(column: Option<usize>, arity: Option<usize>) -> Result<(), PlanValidity> {
            match (column, arity) {
                (Some(column), Some(arity)) if column >= arity => {
                    Err(PlanValidity::ColumnOutOfRange { column, arity })
                }
                _ => Ok(()),
            }
        }
        match self {
            Plan::Source(name) => {
                if known.contains(name) {
                    // Rows of an input are whatever updates carried: arity unknown.
                    Ok(None)
                } else {
                    Err(PlanValidity::UnknownSource(name.clone()))
                }
            }
            Plan::Recur => loop_arity.ok_or(PlanValidity::RecurOutsideIterate),
            Plan::Map { input, exprs } => {
                let arity = input.validate_at(known, loop_arity)?;
                for expr in exprs {
                    check_column(expr.max_column(), arity)?;
                }
                Ok(Some(exprs.len()))
            }
            Plan::Filter { input, predicate } => {
                let arity = input.validate_at(known, loop_arity)?;
                check_column(predicate.max_column(), arity)?;
                Ok(arity)
            }
            Plan::Negate(input) | Plan::Distinct(input) => input.validate_at(known, loop_arity),
            Plan::Concat(plans) => {
                if plans.is_empty() {
                    return Err(PlanValidity::EmptyConcat);
                }
                // The union's arity is derivable only when every member agrees.
                let mut arity: Option<Option<usize>> = None;
                for plan in plans {
                    let member = plan.validate_at(known, loop_arity)?;
                    arity = Some(match arity {
                        None => member,
                        Some(previous) if previous == member => previous,
                        Some(_) => None,
                    });
                }
                Ok(arity.flatten())
            }
            Plan::Join { left, right, keys } => {
                let left_arity = left.validate_at(known, loop_arity)?;
                let right_arity = right.validate_at(known, loop_arity)?;
                for &(left_column, right_column) in keys {
                    check_column(Some(left_column), left_arity)?;
                    check_column(Some(right_column), right_arity)?;
                }
                // Output: key columns (in `keys` order) ++ remaining left ++ remaining
                // right, where "remaining" excludes the distinct key columns.
                match (left_arity, right_arity) {
                    (Some(left), Some(right)) => {
                        let distinct = |side: fn(&(usize, usize)) -> usize| {
                            keys.iter().map(side).collect::<BTreeSet<usize>>().len()
                        };
                        let remaining =
                            (left - distinct(|&(l, _)| l)) + (right - distinct(|&(_, r)| r));
                        Ok(Some(keys.len() + remaining))
                    }
                    _ => Ok(None),
                }
            }
            Plan::Reduce {
                input,
                key_arity,
                kind,
            } => {
                let arity = input.validate_at(known, loop_arity)?;
                if let Some(arity) = arity {
                    if *key_arity > arity {
                        return Err(PlanValidity::ColumnOutOfRange {
                            column: key_arity - 1,
                            arity,
                        });
                    }
                }
                let column = match kind {
                    ReduceKind::Count => None,
                    ReduceKind::Sum(column) | ReduceKind::Min(column) | ReduceKind::Top(column) => {
                        Some(*column)
                    }
                };
                if let Some(column) = column {
                    if column < *key_arity {
                        return Err(PlanValidity::AggregateColumnInKey {
                            column,
                            key_arity: *key_arity,
                        });
                    }
                    check_column(Some(column), arity)?;
                }
                match kind {
                    // Key columns plus the one aggregate column.
                    ReduceKind::Count | ReduceKind::Sum(_) | ReduceKind::Min(_) => {
                        Ok(Some(key_arity + 1))
                    }
                    // Key columns plus the winning row's whole non-key remainder.
                    ReduceKind::Top(_) => Ok(arity),
                }
            }
            Plan::Iterate { seed, body } => {
                if seed.mentions_recur() {
                    return Err(PlanValidity::RecurInSeed);
                }
                let seed_arity = seed.validate_at(known, loop_arity)?;
                // The body may change the row shape round to round, so `Recur`
                // validates with unknown arity rather than inheriting the seed's; the
                // fixed point's arity is derivable only when seed and body agree.
                let body_arity = body.validate_at(known, Some(None))?;
                Ok(seed_arity.filter(|&arity| body_arity == Some(arity)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn known(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn key_spec_splits_rows() {
        let row = crate::Row::from(vec![Value::UInt(1), Value::UInt(2), Value::UInt(3)]);
        let (key, rest) = KeySpec::Columns(vec![1]).split(row.clone());
        assert_eq!(key, crate::Row::from(vec![Value::UInt(2)]));
        assert_eq!(rest, crate::Row::from(vec![Value::UInt(1), Value::UInt(3)]));
        let (key, rest) = KeySpec::SelfRow.split(row.clone());
        assert_eq!(key, row);
        assert!(rest.is_empty());
    }

    #[test]
    fn validation_places_recur_and_checks_sources() {
        let known = known(&["edges"]);
        assert_eq!(
            Plan::Recur.validate(&known),
            Err(PlanValidity::RecurOutsideIterate)
        );
        assert_eq!(
            Plan::source("nodes").validate(&known),
            Err(PlanValidity::UnknownSource("nodes".to_string()))
        );
        let loop_plan = Plan::source("edges").iterate(
            Plan::Recur
                .join(Plan::source("edges"), vec![(1, 0)])
                .distinct(),
        );
        assert_eq!(loop_plan.validate(&known), Ok(()));
        let bad_seed = Plan::Recur.iterate(Plan::Recur);
        assert_eq!(bad_seed.validate(&known), Err(PlanValidity::RecurInSeed));
        let bad_reduce = Plan::source("edges").reduce(2, ReduceKind::Min(1));
        assert_eq!(
            bad_reduce.validate(&known),
            Err(PlanValidity::AggregateColumnInKey {
                column: 1,
                key_arity: 2
            })
        );
    }

    /// An empty `Concat` is rejected at validation (install time), not at render time:
    /// plans arrive over the wire, and validate is the boundary where `PlanError`
    /// exists — rendering would panic the worker.
    #[test]
    fn validation_rejects_empty_concat() {
        let known = known(&["edges"]);
        assert_eq!(
            Plan::Concat(vec![]).validate(&known),
            Err(PlanValidity::EmptyConcat)
        );
        // Nested inside other operators too.
        assert_eq!(
            Plan::source("edges")
                .join(Plan::Concat(vec![]).distinct(), vec![(0, 0)])
                .validate(&known),
            Err(PlanValidity::EmptyConcat)
        );
    }

    /// Column bounds are enforced wherever the input's row arity is derivable, so an
    /// out-of-range expression, join-key, or aggregate index fails at install instead
    /// of panicking the worker when data arrives.
    #[test]
    fn validation_bounds_columns_against_derivable_arity() {
        let known = known(&["edges"]);
        // `Map` pins its output arity; everything downstream is checkable.
        let two_wide = Plan::source("edges").map(vec![Expr::col(0), Expr::col(1)]);
        assert_eq!(
            two_wide.clone().map(vec![Expr::col(2)]).validate(&known),
            Err(PlanValidity::ColumnOutOfRange {
                column: 2,
                arity: 2
            })
        );
        assert_eq!(
            two_wide
                .clone()
                .filter(Expr::col(5).gt(Expr::lit(0u64)))
                .validate(&known),
            Err(PlanValidity::ColumnOutOfRange {
                column: 5,
                arity: 2
            })
        );
        assert_eq!(
            two_wide
                .clone()
                .reduce(1, ReduceKind::Sum(3))
                .validate(&known),
            Err(PlanValidity::ColumnOutOfRange {
                column: 3,
                arity: 2
            })
        );
        assert_eq!(
            two_wide
                .clone()
                .reduce(3, ReduceKind::Count)
                .validate(&known),
            Err(PlanValidity::ColumnOutOfRange {
                column: 2,
                arity: 2
            }),
            "a grouping key wider than the row is out of range"
        );
        assert_eq!(
            two_wide
                .clone()
                .join(Plan::source("edges"), vec![(2, 0)])
                .validate(&known),
            Err(PlanValidity::ColumnOutOfRange {
                column: 2,
                arity: 2
            })
        );
        // Join output arity: key columns plus both remainders (2 + 2 - 1 key = 3).
        let joined = two_wide.clone().join(two_wide, vec![(0, 0)]);
        assert_eq!(
            joined.clone().map(vec![Expr::col(3)]).validate(&known),
            Err(PlanValidity::ColumnOutOfRange {
                column: 3,
                arity: 3
            })
        );
        assert_eq!(joined.map(vec![Expr::col(2)]).validate(&known), Ok(()));
        // Sources are dynamically shaped: nothing derivable, nothing rejected.
        assert_eq!(
            Plan::source("edges")
                .map(vec![Expr::col(9)])
                .validate(&known),
            Ok(())
        );
    }

    #[test]
    fn requirements_memoize_identical_subtrees_once() {
        let locals = BTreeSet::new();
        // Two joins against the same arranged side: one requirement entry.
        let edges_by_src = ArrangeKey {
            plan: Plan::source("edges"),
            keys: KeySpec::Columns(vec![0]),
        };
        let hop1 = Plan::source("args").join(Plan::source("edges"), vec![(0, 0)]);
        let hop2 = hop1.join(Plan::source("edges"), vec![(1, 0)]);
        let mut reqs = Vec::new();
        hop2.arrangement_requirements(&locals, &mut reqs);
        assert_eq!(
            reqs.iter().filter(|key| **key == edges_by_src).count(),
            1,
            "identical (subtree, keys) pairs collapse: {reqs:?}"
        );
    }

    #[test]
    fn local_sources_force_inline_rendering() {
        let locals: BTreeSet<String> = ["args".to_string()].into();
        let plan = Plan::source("args").join(Plan::source("edges"), vec![(0, 0)]);
        let mut reqs = Vec::new();
        plan.arrangement_requirements(&locals, &mut reqs);
        // The local side is inline; only the shared side is a requirement.
        assert_eq!(
            reqs,
            vec![ArrangeKey {
                plan: Plan::source("edges"),
                keys: KeySpec::Columns(vec![0]),
            }]
        );
    }

    #[test]
    fn recur_containing_subtrees_are_inline_but_free_subtrees_are_not() {
        let locals = BTreeSet::new();
        let body = Plan::Recur
            .join(Plan::source("edges"), vec![(1, 0)])
            .concat(Plan::source("roots"))
            .distinct();
        let plan = Plan::source("roots").iterate(body);
        let mut reqs = Vec::new();
        plan.arrangement_requirements(&locals, &mut reqs);
        // The Recur side of the join is inline; the edges side and the distinct over the
        // (recur-containing) union are handled inline, so only edges-by-dst remains.
        assert_eq!(
            reqs,
            vec![ArrangeKey {
                plan: Plan::source("edges"),
                keys: KeySpec::Columns(vec![0]),
            }]
        );
    }
}
