//! The render pass: compiling a validated [`Plan`] into a live dataflow.
//!
//! Rendering happens *inside* an `install_query` closure: the [`Renderer`] is a snapshot
//! of everything the plan needs that lives outside the dataflow under construction —
//! the catalog names of base-input arrangements and of every memoized sub-plan
//! arrangement the manager pre-installed. Sub-trees that read only shared state are
//! **imported** (one shared arrangement, any number of reading queries — the paper's
//! economy applied between runtime queries); sub-trees bound to the loop variable or to
//! a query-local input are rendered inline, arranged privately within this dataflow.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};

use kpg_core::arrange::{KeyBatch, ValBatch};
use kpg_core::prelude::*;

use crate::expr::project;
use crate::plan::{ArrangeKey, KeySpec, Plan, ReduceKind};
use crate::value::{Row, Value};

/// Builds the row `head ++ mid ++ tail` (any part may be empty) in one allocation: the
/// chained slice iterators are `TrustedLen`, so the collect writes straight into the
/// row's shared storage — this runs once per join emission, the hottest row path.
fn concat_rows(head: &[Value], mid: &[Value], tail: &[Value]) -> Row {
    head.iter()
        .chain(mid.iter())
        .chain(tail.iter())
        .cloned()
        .collect()
}

/// Reads position `index` of the virtual join-output row `key ++ left ++ right`
/// without materializing it.
fn segment<'a>(key: &'a [Value], left: &'a [Value], right: &'a [Value], index: usize) -> &'a Value {
    if index < key.len() {
        &key[index]
    } else if index < key.len() + left.len() {
        &left[index - key.len()]
    } else {
        &right[index - key.len() - left.len()]
    }
}

/// If picking `indices` out of the virtual row `key ++ left ++ right` reproduces one of
/// the three segments whole and in order, that segment's row is reused (a reference
/// bump) instead of building a new one.
fn whole_segment(indices: &[usize], key: &Row, left: &Row, right: &Row) -> Option<Row> {
    let matches = |row: &Row, base: usize| {
        indices.len() == row.len()
            && indices
                .iter()
                .enumerate()
                .all(|(slot, &index)| index == base + slot)
    };
    if matches(key, 0) {
        Some(key.clone())
    } else if matches(left, key.len()) {
        Some(left.clone())
    } else if matches(right, key.len() + left.len()) {
        Some(right.clone())
    } else {
        None
    }
}

/// The column indices of a pure projection (`exprs` all `Expr::Column`), if it is one.
fn column_indices(exprs: &[crate::Expr]) -> Option<Vec<usize>> {
    exprs
        .iter()
        .map(|expr| match expr {
            crate::Expr::Column(index) => Some(*index),
            _ => None,
        })
        .collect()
}

/// The batch type of column-keyed plan arrangements: rows keyed by rows.
pub type RowBatch = ValBatch<Row, Row>;

/// The batch type of self-keyed plan arrangements (`KeySpec::SelfRow`): a key-only
/// layout with no value arrays, matching what `Distinct` and whole-row base inputs
/// actually need. Half the batch-building and cursor work of carrying empty value rows.
pub type RowKeyBatch = KeyBatch<Row>;

/// How a global input's base arrangement is published: its catalog name and key spec.
///
/// Base keyings are always row prefixes (or the whole row), so the original row is
/// reconstructible as key ++ rest when the source is read at collection position.
#[derive(Clone, Debug)]
pub struct SourceBinding {
    /// The catalog name of the base arrangement.
    pub arrangement: String,
    /// How its rows are keyed (a prefix `Columns(0..k)` or `SelfRow`).
    pub keys: KeySpec,
}

/// Loop-scope bookkeeping threaded through rendering.
struct Scope<'a> {
    /// The innermost loop variable, if rendering inside an `Iterate` body.
    recur: Option<&'a Collection<Row>>,
    /// Iteration nesting depth (0 = the streaming scope).
    depth: usize,
}

/// A plan compiler bound to one dataflow installation.
///
/// The maps are snapshots taken by the manager immediately before installing: rendering
/// panics if the plan was not validated or a required arrangement was not pre-installed,
/// both of which the manager guarantees.
pub struct Renderer {
    /// Catalog names of the memoized sub-plan arrangements this plan imports.
    pub arrangements: HashMap<ArrangeKey, String>,
    /// Base-arrangement bindings of the global inputs, by input name.
    pub sources: HashMap<String, SourceBinding>,
    /// Query-local input collections, created inside the dataflow being built.
    pub locals: HashMap<String, Collection<Row>>,
    /// Arrangements already imported into this dataflow, per catalog name and loop
    /// depth: a plan that reads the same shared arrangement at several operator sites
    /// (a 2-hop query joins the edge index twice) pays one import operator, not one per
    /// site. Column-keyed and self-keyed arrangements have distinct batch types, so
    /// they cache separately.
    imported: RefCell<HashMap<(String, usize), Arranged<RowBatch>>>,
    imported_self: RefCell<HashMap<(String, usize), Arranged<RowKeyBatch>>>,
}

impl Renderer {
    /// A renderer over the given snapshots, with an empty import cache.
    pub fn new(
        arrangements: HashMap<ArrangeKey, String>,
        sources: HashMap<String, SourceBinding>,
        locals: HashMap<String, Collection<Row>>,
    ) -> Self {
        Renderer {
            arrangements,
            sources,
            locals,
            imported: RefCell::new(HashMap::new()),
            imported_self: RefCell::new(HashMap::new()),
        }
    }

    /// Imports the named column-keyed catalog arrangement at `depth`, reusing a
    /// previous import of the same name at the same depth.
    fn import(
        &self,
        builder: &mut DataflowBuilder,
        catalog: &Catalog,
        name: &str,
        depth: usize,
    ) -> Arranged<RowBatch> {
        let key = (name.to_string(), depth);
        if let Some(imported) = self.imported.borrow().get(&key) {
            return imported.clone();
        }
        let mut imported = catalog
            .import::<RowBatch>(name, builder)
            .expect("arrangement published before plan install");
        for _ in 0..depth {
            imported = imported.enter();
        }
        self.imported.borrow_mut().insert(key, imported.clone());
        imported
    }

    /// Imports the named self-keyed catalog arrangement at `depth`, with the same
    /// per-dataflow reuse as [`Renderer::import`].
    fn import_self(
        &self,
        builder: &mut DataflowBuilder,
        catalog: &Catalog,
        name: &str,
        depth: usize,
    ) -> Arranged<RowKeyBatch> {
        let key = (name.to_string(), depth);
        if let Some(imported) = self.imported_self.borrow().get(&key) {
            return imported.clone();
        }
        let mut imported = catalog
            .import::<RowKeyBatch>(name, builder)
            .expect("arrangement published before plan install");
        for _ in 0..depth {
            imported = imported.enter();
        }
        self.imported_self
            .borrow_mut()
            .insert(key, imported.clone());
        imported
    }
}

impl Renderer {
    /// Compiles `plan` into a collection in `builder`'s dataflow.
    pub fn render(
        &self,
        builder: &mut DataflowBuilder,
        catalog: &Catalog,
        plan: &Plan,
    ) -> Collection<Row> {
        self.collection(
            builder,
            catalog,
            plan,
            &Scope {
                recur: None,
                depth: 0,
            },
        )
    }

    /// Compiles `plan` into a column-keyed arrangement in `builder`'s dataflow — the
    /// memo-dataflow entry point for `KeySpec::Columns`, with the same operator fusions
    /// the inline paths get.
    pub fn render_arranged(
        &self,
        builder: &mut DataflowBuilder,
        catalog: &Catalog,
        plan: &Plan,
        columns: &[usize],
    ) -> Arranged<RowBatch> {
        self.arrange_inline(
            builder,
            catalog,
            plan,
            columns,
            &Scope {
                recur: None,
                depth: 0,
            },
        )
    }

    /// Compiles `plan` into a self-keyed arrangement in `builder`'s dataflow — the
    /// memo-dataflow entry point for `KeySpec::SelfRow`.
    pub fn render_arranged_self(
        &self,
        builder: &mut DataflowBuilder,
        catalog: &Catalog,
        plan: &Plan,
    ) -> Arranged<RowKeyBatch> {
        self.arrange_self_inline(
            builder,
            catalog,
            plan,
            &Scope {
                recur: None,
                depth: 0,
            },
        )
    }

    fn local_names(&self) -> BTreeSet<String> {
        self.locals.keys().cloned().collect()
    }

    fn collection(
        &self,
        builder: &mut DataflowBuilder,
        catalog: &Catalog,
        plan: &Plan,
        scope: &Scope<'_>,
    ) -> Collection<Row> {
        match plan {
            Plan::Source(name) => {
                if let Some(local) = self.locals.get(name) {
                    let mut local = local.clone();
                    for _ in 0..scope.depth {
                        local = local.enter();
                    }
                    local
                } else {
                    let binding = self
                        .sources
                        .get(name)
                        .unwrap_or_else(|| panic!("source {name:?} was not validated"))
                        .clone();
                    match binding.keys {
                        KeySpec::SelfRow => self
                            .import_self(builder, catalog, &binding.arrangement, scope.depth)
                            .as_collection(|key, _| key.clone()),
                        // Prefix-keyed bases: the original row is key ++ rest.
                        KeySpec::Columns(_) => self
                            .import(builder, catalog, &binding.arrangement, scope.depth)
                            .as_collection(|key, rest| concat_rows(key, rest, &[])),
                    }
                }
            }
            Plan::Recur => scope
                .recur
                .expect("Recur outside an Iterate body survived validation")
                .clone(),
            Plan::Map { input, exprs } => {
                // Projection fusion: a pure column projection over a join is emitted
                // straight from the join logic, materializing only the projected row.
                if let Plan::Join { left, right, keys } = input.as_ref() {
                    if let Some(columns) = column_indices(exprs) {
                        let (left, right) =
                            self.join_sides(builder, catalog, left, right, keys, scope);
                        return left.join_core(&right, move |k: &Row, l: &Row, r: &Row| {
                            whole_segment(&columns, k, l, r).unwrap_or_else(|| {
                                columns
                                    .iter()
                                    .map(|&i| segment(k, l, r, i).clone())
                                    .collect()
                            })
                        });
                    }
                }
                let input = self.collection(builder, catalog, input, scope);
                let exprs = exprs.clone();
                input.map(move |row| project(&exprs, &row))
            }
            Plan::Filter { input, predicate } => {
                let input = self.collection(builder, catalog, input, scope);
                let predicate = predicate.clone();
                input.filter(move |row| predicate.test(row))
            }
            Plan::Negate(input) => self.collection(builder, catalog, input, scope).negate(),
            Plan::Concat(plans) => {
                let mut rendered = plans
                    .iter()
                    .map(|plan| self.collection(builder, catalog, plan, scope));
                let first = rendered.next().expect("Concat of at least one plan");
                first.concatenate(rendered.collect::<Vec<_>>())
            }
            Plan::Join { left, right, keys } => {
                let (left, right) = self.join_sides(builder, catalog, left, right, keys, scope);
                left.join_core(&right, |key: &Row, left_rest: &Row, right_rest: &Row| {
                    concat_rows(key, left_rest, right_rest)
                })
            }
            Plan::Reduce {
                input,
                key_arity,
                kind,
            } => {
                let arranged = self.arranged(
                    builder,
                    catalog,
                    input,
                    &(0..*key_arity).collect::<Vec<usize>>(),
                    scope,
                );
                let key_arity = *key_arity;
                let reduced = match kind.clone() {
                    ReduceKind::Count => arranged.reduce_core(
                        "PlanCount",
                        |_key, input, output: &mut Vec<(Row, isize)>| {
                            let total: isize = input.iter().map(|(_, diff)| *diff).sum();
                            if total != 0 {
                                output.push((Row::from(vec![Value::Int(total as i64)]), 1));
                            }
                        },
                    ),
                    ReduceKind::Sum(column) => {
                        let index = column - key_arity;
                        arranged.reduce_core(
                            "PlanSum",
                            move |_key, input, output: &mut Vec<(Row, isize)>| {
                                let sum: i64 = input
                                    .iter()
                                    .map(|(val, diff)| {
                                        val[index]
                                            .as_i64()
                                            .checked_mul(*diff as i64)
                                            .expect("Sum overflow")
                                    })
                                    .fold(0i64, |acc, term| {
                                        acc.checked_add(term).expect("Sum overflow")
                                    });
                                output.push((Row::from(vec![Value::Int(sum)]), 1));
                            },
                        )
                    }
                    ReduceKind::Min(column) => {
                        let index = column - key_arity;
                        arranged.reduce_core(
                            "PlanMin",
                            move |_key, input, output: &mut Vec<(Row, isize)>| {
                                let min = input
                                    .iter()
                                    .filter(|(_, diff)| *diff > 0)
                                    .map(|(val, _)| val[index].clone())
                                    .min();
                                if let Some(min) = min {
                                    output.push((Row::from(vec![min]), 1));
                                }
                            },
                        )
                    }
                    ReduceKind::Top(column) => {
                        let index = column - key_arity;
                        arranged.reduce_core(
                            "PlanTop",
                            move |_key, input, output: &mut Vec<(Row, isize)>| {
                                let best = input
                                    .iter()
                                    .filter(|(_, diff)| *diff > 0)
                                    .max_by_key(|(val, _)| (val[index].clone(), val.clone()));
                                if let Some((best, _)) = best {
                                    output.push((best.clone(), 1));
                                }
                            },
                        )
                    }
                };
                reduced.as_collection(|key, val| concat_rows(key, val, &[]))
            }
            Plan::Distinct(input) => {
                let arranged = self.arranged_self(builder, catalog, input, scope);
                arranged
                    .reduce_core(
                        "PlanDistinct",
                        |_key, input, output: &mut Vec<((), isize)>| {
                            if input[0].1 > 0 {
                                output.push(((), 1));
                            }
                        },
                    )
                    .as_collection(|key, _| key.clone())
            }
            Plan::Iterate { seed, body } => {
                let seed = self.collection(builder, catalog, seed, scope);
                seed.iterate(|variable| {
                    let inner = Scope {
                        recur: Some(variable),
                        depth: scope.depth + 1,
                    };
                    self.collection(builder, catalog, body, &inner)
                })
            }
        }
    }

    /// An arranged rendering of `plan` keyed by `columns`: imported from the memoized
    /// shared arrangement when the sub-tree reads only shared state, arranged privately
    /// inline when it is bound to the loop variable or a query-local input.
    fn arranged(
        &self,
        builder: &mut DataflowBuilder,
        catalog: &Catalog,
        plan: &Plan,
        columns: &[usize],
        scope: &Scope<'_>,
    ) -> Arranged<RowBatch> {
        if plan.is_inline(&self.local_names()) {
            self.arrange_inline(builder, catalog, plan, columns, scope)
        } else {
            let key = ArrangeKey {
                plan: plan.clone(),
                keys: KeySpec::Columns(columns.to_vec()),
            };
            let name = self
                .arrangements
                .get(&key)
                .unwrap_or_else(|| panic!("arrangement for {key:?} was not pre-installed"))
                .clone();
            self.import(builder, catalog, &name, scope.depth)
        }
    }

    /// A self-keyed arranged rendering of `plan` (the `Distinct` input shape):
    /// imported when shared, arranged inline when loop-bound or query-local.
    fn arranged_self(
        &self,
        builder: &mut DataflowBuilder,
        catalog: &Catalog,
        plan: &Plan,
        scope: &Scope<'_>,
    ) -> Arranged<RowKeyBatch> {
        if plan.is_inline(&self.local_names()) {
            self.arrange_self_inline(builder, catalog, plan, scope)
        } else {
            let key = ArrangeKey {
                plan: plan.clone(),
                keys: KeySpec::SelfRow,
            };
            let name = self
                .arrangements
                .get(&key)
                .unwrap_or_else(|| panic!("arrangement for {key:?} was not pre-installed"))
                .clone();
            self.import_self(builder, catalog, &name, scope.depth)
        }
    }

    /// Arranges `plan` keyed by `columns` inside the dataflow under construction (the
    /// memo dataflows' entry point, and the path for loop-bound / query-local
    /// sub-trees).
    ///
    /// Fusions: a join — bare or under a pure column projection — that feeds an
    /// arrangement emits `(key, rest)` pairs straight from the join logic, so the
    /// intermediate concatenated row, the projection operator, and the re-splitting map
    /// are never materialized. Multi-stage plans (2-hop, path queries) spend most of
    /// their per-update work in exactly this shape.
    fn arrange_inline(
        &self,
        builder: &mut DataflowBuilder,
        catalog: &Catalog,
        plan: &Plan,
        columns: &[usize],
        scope: &Scope<'_>,
    ) -> Arranged<RowBatch> {
        match plan {
            Plan::Join {
                left,
                right,
                keys: join_keys,
            } => {
                return self.join_pairs(
                    builder, catalog, left, right, join_keys, scope, None, columns,
                )
            }
            Plan::Map { input, exprs } => {
                if let Plan::Join {
                    left,
                    right,
                    keys: join_keys,
                } = input.as_ref()
                {
                    if let Some(projection) = column_indices(exprs) {
                        return self.join_pairs(
                            builder,
                            catalog,
                            left,
                            right,
                            join_keys,
                            scope,
                            Some(&projection),
                            columns,
                        );
                    }
                }
            }
            _ => {}
        }
        let collection = self.collection(builder, catalog, plan, scope);
        let keys = KeySpec::Columns(columns.to_vec());
        collection
            .map(move |row| keys.split(row))
            .arrange_by_key_named("PlanArrange", MergeEffort::Default)
    }

    /// Arranges `plan` by its whole rows inside the dataflow under construction. The
    /// join/projection fusions live in [`Renderer::collection`], so a `Distinct` over a
    /// (projected) join still materializes only the final row per match.
    fn arrange_self_inline(
        &self,
        builder: &mut DataflowBuilder,
        catalog: &Catalog,
        plan: &Plan,
        scope: &Scope<'_>,
    ) -> Arranged<RowKeyBatch> {
        self.collection(builder, catalog, plan, scope)
            .arrange_by_self_named("PlanArrangeSelf", MergeEffort::Default)
    }

    /// The two arranged sides of a join.
    fn join_sides(
        &self,
        builder: &mut DataflowBuilder,
        catalog: &Catalog,
        left: &Plan,
        right: &Plan,
        join_keys: &[(usize, usize)],
        scope: &Scope<'_>,
    ) -> (Arranged<RowBatch>, Arranged<RowBatch>) {
        let left_columns: Vec<usize> = join_keys.iter().map(|&(l, _)| l).collect();
        let right_columns: Vec<usize> = join_keys.iter().map(|&(_, r)| r).collect();
        let left = self.arranged(builder, catalog, left, &left_columns, scope);
        let right = self.arranged(builder, catalog, right, &right_columns, scope);
        (left, right)
    }

    /// Renders `left ⋈ right` emitting `(key, rest)` pairs keyed by `columns` directly
    /// from the join logic, optionally through a pure column `projection` of the join
    /// output.
    #[allow(clippy::too_many_arguments)]
    fn join_pairs(
        &self,
        builder: &mut DataflowBuilder,
        catalog: &Catalog,
        left: &Plan,
        right: &Plan,
        join_keys: &[(usize, usize)],
        scope: &Scope<'_>,
        projection: Option<&[usize]>,
        columns: &[usize],
    ) -> Arranged<RowBatch> {
        let (left, right) = self.join_sides(builder, catalog, left, right, join_keys, scope);
        // The key picks (and, under a projection, the rest picks too) are constants of
        // the operator: resolve them into virtual-row index lists once, outside the
        // per-match closure. Only the projection-less rest picks depend on per-record
        // arities; those fill a scratch vector owned by the closure (capacity retained),
        // so steady-state emissions allocate nothing beyond the rows themselves.
        let key_picks: Vec<usize> = match projection {
            Some(projected) => columns.iter().map(|&column| projected[column]).collect(),
            None => columns.to_vec(),
        };
        let rest_picks: Option<Vec<usize>> = projection.map(|projected| {
            (0..projected.len())
                .filter(|index| !columns.contains(index))
                .map(|index| projected[index])
                .collect()
        });
        let columns = columns.to_vec();
        let mut rest_scratch: Vec<usize> = Vec::new();
        left.join_core(&right, move |k: &Row, l: &Row, r: &Row| {
            // The virtual output row is key ++ l ++ r, seen through the projection.
            let pick = |picked: &[usize]| -> Row {
                whole_segment(picked, k, l, r).unwrap_or_else(|| {
                    picked
                        .iter()
                        .map(|&index| segment(k, l, r, index).clone())
                        .collect()
                })
            };
            let key = pick(&key_picks);
            let rest = match &rest_picks {
                Some(picked) => pick(picked),
                None => {
                    let arity = k.len() + l.len() + r.len();
                    rest_scratch.clear();
                    rest_scratch.extend((0..arity).filter(|index| !columns.contains(index)));
                    pick(&rest_scratch)
                }
            };
            (key, rest)
        })
        .arrange_by_key_named("PlanArrange", MergeEffort::Default)
    }
}
