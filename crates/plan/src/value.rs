//! The uniform row type runtime plans compute over.
//!
//! Closure-compiled queries pick whatever Rust types suit them; queries that *arrive at
//! runtime* cannot. Every plan-rendered collection therefore carries [`Row`]s — vectors
//! of a small dynamic [`Value`] — so one render pass, one arrangement type, and one
//! catalog entry shape serve every query a server will ever be asked to install.

use kpg_sync::{Arc, OnceLock};
use std::fmt;

use kpg_trace::StoreData;

/// A single field of a [`Row`].
///
/// The ordering (derived, variant order then payload) drives the sorted batch layout of
/// plan arrangements, so it only needs to be total and deterministic, not semantic:
/// `Int(3)` and `UInt(3)` are distinct values that sort apart. Plans that compare fields
/// should produce them with a consistent variant.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A signed 64-bit integer.
    Int(i64),
    /// An unsigned 64-bit integer.
    UInt(u64),
    /// An owned string.
    String(String),
}

/// A record in a plan-rendered collection: an immutable, cheaply clonable sequence of
/// dynamically typed fields.
///
/// Rows are the values every plan-rendered operator moves, every spine merge re-sorts,
/// and every join seek compares — so the representation optimizes exactly those:
///
/// * **Clone** bumps a reference count (shared `Arc<[Value]>` storage; field data is
///   never copied).
/// * **Compare** usually never touches the heap: an order-preserving 128-bit
///   [`prefix`](Row::cmp) of the first two fields is stored inline, and rows of at most
///   two numeric fields — every join key and most records of a typical graph workload —
///   are *fully determined* by it, so sorts and trace seeks resolve on one integer
///   comparison. Wider or string-bearing rows fall back to field comparison only on
///   prefix ties.
///
/// (An inline small-row variant was measured and rejected: 100-byte by-value rows cost
/// more in batch sorts and moves than the indirection saves.)
#[derive(Clone)]
pub struct Row {
    /// Order-preserving encoding of the leading fields; see [`prefix_of`].
    prefix: u128,
    /// True iff `prefix` determines the row exactly (≤ 2 numeric fields): prefix
    /// equality then implies row equality.
    exact: bool,
    values: Arc<[Value]>,
}

/// Encodes the leading fields of `values` as an order-preserving 128-bit integer:
/// comparing prefixes agrees with comparing rows wherever the prefixes differ, and
/// ties fall back to field comparison.
///
/// Each of the first two fields gets a 2-bit tag (absent < `Int` < `UInt` < `String`,
/// mirroring [`Value`]'s ordering) and a 62-bit monotone slot. A slot is *exact*
/// (encodes its field injectively) for integers within ±2^60 / below 2^61 and strings
/// of at most 7 bytes; out-of-window integers saturate and longer strings keep only a
/// 7-byte prefix plus their length capped at 8 (so a short string orders against its
/// extensions by length, but two longer strings never order by length — their order is
/// decided by bytes the slot cannot see), both of which stay monotone but can tie.
/// Field 1
/// is encoded only while field 0 is exact — otherwise a tie in field 0's slot could
/// let field 1 decide an order field 0 actually determines. The returned flag says
/// whether the prefix determines the whole row (every field encoded exactly and no
/// third field), in which case prefix equality is row equality.
fn prefix_of(values: &[Value]) -> (u128, bool) {
    const SLOT_MAX: u64 = (1 << 62) - 1;
    /// `(tag, slot, exact)` for one field.
    fn encode(value: &Value) -> (u8, u64, bool) {
        match value {
            Value::Int(signed) => {
                // Window |i| < 2^60 maps into [2^61, 2^62) order-preservingly (the
                // sign-flip trick re-centred on the slot); outside saturates.
                let flipped = (*signed as u64) ^ (1u64 << 63);
                const LO: u64 = (1 << 63) - (1 << 60);
                const HI: u64 = (1 << 63) + (1 << 60);
                if (LO..HI).contains(&flipped) {
                    (1, flipped - LO + 1, true)
                } else if flipped < LO {
                    (1, 0, false)
                } else {
                    (1, SLOT_MAX, false)
                }
            }
            Value::UInt(unsigned) => {
                if *unsigned < (1 << 61) {
                    (2, *unsigned, true)
                } else {
                    (2, SLOT_MAX, false)
                }
            }
            Value::String(string) => {
                // First 7 bytes, then the length capped at 8: byte-wise lexicographic
                // order, with short strings fully determined. The cap lets length
                // discriminate only where it is decisive — a ≤7-byte string against
                // anything sharing its head is ordered by length (a proper prefix
                // precedes its extensions) — while all longer strings tie on it and
                // fall back to field comparison, since their order is decided by
                // bytes the slot cannot see.
                let bytes = string.as_bytes();
                let mut head = [0u8; 8];
                let taken = bytes.len().min(7);
                head[1..1 + taken].copy_from_slice(&bytes[..taken]);
                let slot = (u64::from_be_bytes(head) << 6) | bytes.len().min(8) as u64;
                (3, slot, bytes.len() <= 7)
            }
        }
    }
    let (tag0, slot0, exact0) = match values.first() {
        None => (0, 0, true),
        Some(value) => encode(value),
    };
    // Only encode field 1 behind an exact field 0 (see above).
    let (tag1, slot1, exact1) = match values.get(1) {
        Some(value) if exact0 => encode(value),
        Some(_) => (0, 0, false),
        None => (0, 0, true),
    };
    let exact = values.len() <= 2 && exact0 && exact1;
    let prefix = ((tag0 as u128) << 126)
        | ((slot0 as u128) << 64)
        | ((tag1 as u128) << 62)
        | (slot1 as u128);
    (prefix, exact)
}

impl Row {
    /// The empty row (shared storage: no allocation per call).
    pub fn new() -> Row {
        static EMPTY: OnceLock<Arc<[Value]>> = OnceLock::new();
        let values = Arc::clone(EMPTY.get_or_init(|| Arc::from(Vec::new())));
        Row {
            prefix: 0,
            exact: true,
            values,
        }
    }

    /// The fields as a slice (also available through deref).
    pub fn fields(&self) -> &[Value] {
        &self.values
    }

    fn from_storage(values: Arc<[Value]>) -> Row {
        let (prefix, exact) = prefix_of(&values);
        Row {
            prefix,
            exact,
            values,
        }
    }
}

impl Default for Row {
    fn default() -> Self {
        Row::new()
    }
}

impl std::ops::Deref for Row {
    type Target = [Value];
    fn deref(&self) -> &[Value] {
        &self.values
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        if values.is_empty() {
            Row::new()
        } else {
            Row::from_storage(Arc::from(values))
        }
    }
}

impl FromIterator<Value> for Row {
    /// Collects directly into the shared storage. For `TrustedLen` iterators (slice
    /// iterators, their `map`/`cloned`/`chain` compositions — the render pass's row
    /// constructions) the standard library writes straight into one allocation; empty
    /// collects return the shared empty row without allocating.
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        let mut iter = iter.into_iter().peekable();
        if iter.peek().is_none() {
            return Row::new();
        }
        Row::from_storage(iter.collect::<Arc<[Value]>>())
    }
}

impl PartialEq for Row {
    fn eq(&self, other: &Self) -> bool {
        if self.prefix != other.prefix {
            return false;
        }
        (self.exact && other.exact) || self.values == other.values
    }
}

impl Eq for Row {}

impl PartialOrd for Row {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Row {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match self.prefix.cmp(&other.prefix) {
            std::cmp::Ordering::Equal => {
                if self.exact && other.exact {
                    std::cmp::Ordering::Equal
                } else {
                    self.values.as_ref().cmp(other.values.as_ref())
                }
            }
            decided => decided,
        }
    }
}

impl std::hash::Hash for Row {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.values.hash(state);
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.values.iter()).finish()
    }
}

impl Value {
    /// The value as a signed integer, for arithmetic. Panics on strings: expression
    /// evaluation is only defined over fields the plan author arranged to be numeric
    /// (plans are validated structurally at install, not type-checked — see
    /// [`crate::Plan::validate`]).
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::Int(value) => *value,
            Value::UInt(value) => i64::try_from(*value).expect("UInt too large for arithmetic"),
            Value::String(value) => panic!("arithmetic on string value {value:?}"),
        }
    }

    /// The truthiness used by `Filter` and the boolean connectives: nonzero numbers and
    /// non-empty strings are true.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(value) => *value != 0,
            Value::UInt(value) => *value != 0,
            Value::String(value) => !value.is_empty(),
        }
    }

    /// The canonical boolean encoding produced by comparisons: `UInt(1)` / `UInt(0)`.
    pub fn bool(value: bool) -> Value {
        Value::UInt(u64::from(value))
    }

    /// True iff the value is numeric (`Int` or `UInt`).
    pub fn is_numeric(&self) -> bool {
        !matches!(self, Value::String(_))
    }
}

impl From<i64> for Value {
    fn from(value: i64) -> Self {
        Value::Int(value)
    }
}

impl From<u64> for Value {
    fn from(value: u64) -> Self {
        Value::UInt(value)
    }
}

impl From<u32> for Value {
    fn from(value: u32) -> Self {
        Value::UInt(u64::from(value))
    }
}

impl From<&str> for Value {
    fn from(value: &str) -> Self {
        Value::String(value.to_string())
    }
}

impl From<String> for Value {
    fn from(value: String) -> Self {
        Value::String(value)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(value) => write!(f, "{value}"),
            Value::UInt(value) => write!(f, "{value}"),
            Value::String(value) => write!(f, "{value:?}"),
        }
    }
}

impl StoreData for Value {
    fn store(&self, bytes: &mut Vec<u8>) {
        match self {
            Value::Int(value) => {
                bytes.push(0);
                value.store(bytes);
            }
            Value::UInt(value) => {
                bytes.push(1);
                value.store(bytes);
            }
            Value::String(value) => {
                bytes.push(2);
                value.store(bytes);
            }
        }
    }

    fn load(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        match u8::load(bytes, pos)? {
            0 => Some(Value::Int(i64::load(bytes, pos)?)),
            1 => Some(Value::UInt(u64::load(bytes, pos)?)),
            2 => Some(Value::String(String::load(bytes, pos)?)),
            _ => None,
        }
    }
}

impl StoreData for Row {
    fn store(&self, bytes: &mut Vec<u8>) {
        (self.fields().len() as u64).store(bytes);
        for field in self.fields() {
            field.store(bytes);
        }
    }

    // The prefix/exact fields are derived, so only the field list is encoded;
    // `Row::from` recomputes them on load.
    fn load(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        let count = usize::load(bytes, pos)?;
        let mut fields = Vec::with_capacity(count.min(bytes.len().saturating_sub(*pos)));
        for _ in 0..count {
            fields.push(Value::load(bytes, pos)?);
        }
        Some(Row::from(fields))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_and_bool_encoding() {
        assert!(Value::Int(-1).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::UInt(2).truthy());
        assert!(!Value::String(String::new()).truthy());
        assert!(Value::from("x").truthy());
        assert_eq!(Value::bool(true), Value::UInt(1));
        assert!(!Value::bool(false).truthy());
    }

    /// The row prefix encoding must agree with plain field-by-field comparison on
    /// every pair — including the adversarial cases: string ties beyond the encoded
    /// bytes (a later field must not decide an order the string determines), embedded
    /// NULs vs padding, out-of-window integers, truncated lengths, and arity ties.
    #[test]
    fn row_ordering_matches_field_ordering() {
        let long_a = "a".repeat(70);
        let mut long_b = "a".repeat(70);
        long_b.push('b');
        let corpus: Vec<Vec<Value>> = vec![
            vec![],
            vec![Value::Int(i64::MIN)],
            vec![Value::Int(-(1 << 61))],
            vec![Value::Int(-5)],
            vec![Value::Int(0)],
            vec![Value::Int(5)],
            vec![Value::Int(1 << 61)],
            vec![Value::Int(i64::MAX)],
            vec![Value::UInt(0)],
            vec![Value::UInt(3)],
            vec![Value::UInt(1 << 61)],
            vec![Value::UInt(u64::MAX)],
            vec![Value::from("")],
            vec![Value::from("a")],
            vec![Value::from("ab")],
            vec![Value::from("abc")],
            vec![Value::from("abc\0")],
            vec![Value::from("abc\0x")],
            vec![Value::from("abcx")],
            vec![Value::from("abcdefg")],
            // Long strings sharing a 7-byte head: order is decided past the encoded
            // bytes, so the shorter string must not win on length alone ("abcdefgaa"
            // precedes "abcdefgz" despite being longer).
            vec![Value::from("abcdefgaa")],
            vec![Value::from("abcdefgz")],
            vec![Value::from("abcdefgh")],
            vec![Value::from("abcdefghX")],
            vec![Value::from("abcdefghY")],
            vec![Value::String(long_a)],
            vec![Value::String(long_b)],
            vec![Value::UInt(1), Value::UInt(3)],
            vec![Value::UInt(1), Value::UInt(5)],
            vec![Value::UInt(1), Value::UInt(1 << 62)],
            vec![Value::UInt(1), Value::UInt(u64::MAX)],
            vec![Value::UInt(1), Value::Int(-1)],
            vec![Value::from("abcdefghX"), Value::Int(7)],
            vec![Value::from("abcdefghY"), Value::Int(-7)],
            vec![Value::UInt(1)],
            vec![Value::UInt(1), Value::UInt(2)],
            vec![Value::UInt(1), Value::UInt(2), Value::UInt(3)],
            vec![Value::UInt(1), Value::UInt(2), Value::UInt(4)],
            vec![Value::UInt(u64::MAX), Value::UInt(1)],
            vec![Value::UInt(u64::MAX), Value::UInt(2)],
        ];
        let rows: Vec<Row> = corpus
            .iter()
            .map(|values| Row::from(values.clone()))
            .collect();
        for (left_values, left_row) in corpus.iter().zip(rows.iter()) {
            for (right_values, right_row) in corpus.iter().zip(rows.iter()) {
                assert_eq!(
                    left_row.cmp(right_row),
                    left_values.as_slice().cmp(right_values.as_slice()),
                    "prefix comparison diverges on {left_values:?} vs {right_values:?}"
                );
                assert_eq!(
                    left_row == right_row,
                    left_values == right_values,
                    "prefix equality diverges on {left_values:?} vs {right_values:?}"
                );
            }
        }
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut values = vec![
            Value::from("b"),
            Value::UInt(0),
            Value::Int(7),
            Value::from("a"),
            Value::Int(-3),
        ];
        values.sort();
        assert_eq!(
            values,
            vec![
                Value::Int(-3),
                Value::Int(7),
                Value::UInt(0),
                Value::from("a"),
                Value::from("b"),
            ]
        );
    }
}
