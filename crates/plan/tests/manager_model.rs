//! Model tests for the runtime-plan engine: the command loop end to end, sub-plan
//! sharing between independently installed plans (the paper's economy applied at the
//! Plan layer), memo retention/eviction, update sharding across workers, and fixed
//! points rendered from data.

use kpg_core::prelude::*;
use kpg_dataflow::Time;
use kpg_plan::{
    ArrangeKey, Command, Expr, KeySpec, Manager, Plan, PlanError, ReduceKind, Response, Row, Value,
};

fn row(values: &[u64]) -> Row {
    values.iter().map(|&value| Value::UInt(value)).collect()
}

/// The 2-hop query class as a plan: arguments (a query-local input) joined through the
/// shared edge index twice, projected back to `(argument, destination)`, set semantics.
fn two_hop(edges: &str, args: &str) -> Plan {
    Plan::source(args)
        .join(Plan::source(edges), vec![(0, 0)]) // [q, mid]
        .join(Plan::source(edges), vec![(1, 0)]) // [mid, q, dst]
        .map(vec![Expr::col(1), Expr::col(2)]) // [q, dst]
        .distinct()
}

fn edges_by_src(edges: &str) -> ArrangeKey {
    ArrangeKey {
        plan: Plan::source(edges),
        keys: KeySpec::Columns(vec![0]),
    }
}

#[test]
fn command_loop_end_to_end() {
    let results = execute(Config::new(1), |worker| {
        let mut manager = Manager::new();
        manager
            .execute(
                worker,
                Command::CreateInput {
                    name: "edges".into(),
                    key_arity: None,
                },
            )
            .unwrap();
        for (src, dst) in [(1u64, 2u64), (1, 3), (2, 4), (5, 4)] {
            manager
                .execute(
                    worker,
                    Command::Update {
                        name: "edges".into(),
                        row: row(&[src, dst]),
                        diff: 1,
                    },
                )
                .unwrap();
        }
        // Out-degree per source, described entirely as data.
        let degrees = Plan::source("edges").reduce(1, ReduceKind::Count);
        let response = manager
            .execute(
                worker,
                Command::Install {
                    name: "degrees".into(),
                    plan: degrees,
                    locals: vec![],
                },
            )
            .unwrap();
        assert!(matches!(response, Response::Installed { .. }));
        manager
            .execute(worker, Command::AdvanceTime { epoch: 1 })
            .unwrap();
        manager.settle(worker);
        let rows = manager
            .execute(
                worker,
                Command::Query {
                    name: "degrees".into(),
                },
            )
            .unwrap();

        // Retract an edge: the count corrects incrementally.
        manager
            .execute(
                worker,
                Command::Update {
                    name: "edges".into(),
                    row: row(&[1, 3]),
                    diff: -1,
                },
            )
            .unwrap();
        manager
            .execute(worker, Command::AdvanceTime { epoch: 2 })
            .unwrap();
        manager.settle(worker);
        let corrected = manager.query("degrees").unwrap();
        (rows, corrected)
    });
    let (rows, corrected) = results[0].clone();
    let expected = |pairs: &[(u64, i64)]| -> Response {
        Response::Rows(
            pairs
                .iter()
                .map(|&(src, count)| (Row::from(vec![Value::UInt(src), Value::Int(count)]), 1))
                .collect(),
        )
    };
    assert_eq!(rows, expected(&[(1, 2), (2, 1), (5, 1)]));
    assert_eq!(
        Response::Rows(corrected),
        expected(&[(1, 1), (2, 1), (5, 1)])
    );
}

/// The acceptance assertion: two installed plans sharing a subtree import one
/// arrangement. The second install constructs no new memo dataflow, and the shared
/// arrangement's reader count tracks the importing queries up and down.
#[test]
fn two_plans_share_one_subtree_arrangement() {
    execute(Config::new(1), |worker| {
        let mut manager = Manager::new();
        manager.create_input(worker, "edges").unwrap();
        for (src, dst) in [(1u64, 2u64), (2, 3), (2, 4)] {
            manager.update("edges", row(&[src, dst]), 1).unwrap();
        }
        manager.advance_to(1).unwrap();
        manager.settle(worker);
        let shared = edges_by_src("edges");

        // First install builds the query dataflow AND the shared memo arrangement.
        let first = manager
            .install(
                worker,
                "q1",
                two_hop("edges", "args-1"),
                vec!["args-1".into()],
            )
            .unwrap();
        assert_eq!(first, 2, "query dataflow + one memo dataflow");
        assert_eq!(manager.memo_count(), 1);
        assert_eq!(manager.memo_uses(&shared), Some(1));
        let readers_one = manager.arrangement_reader_count(&shared).unwrap();

        // The second plan shares the (edges, keyed-by-src) subtree: no new memo
        // dataflow, one more importing reader on the same arrangement.
        let second = manager
            .install(
                worker,
                "q2",
                two_hop("edges", "args-2"),
                vec!["args-2".into()],
            )
            .unwrap();
        assert_eq!(second, 1, "only the query dataflow itself");
        assert_eq!(manager.memo_count(), 1, "the subtree arrangement is shared");
        assert_eq!(manager.memo_uses(&shared), Some(2));
        let readers_two = manager.arrangement_reader_count(&shared).unwrap();
        assert!(
            readers_two > readers_one,
            "the second plan imports the shared arrangement: {readers_one} -> {readers_two}"
        );

        // Both answer through the one arrangement.
        manager.update("args-1", row(&[1]), 1).unwrap();
        manager.update("args-2", row(&[2]), 1).unwrap();
        manager.advance_to(2).unwrap();
        manager.settle(worker);
        assert_eq!(
            manager.query("q1").unwrap(),
            vec![(row(&[1, 3]), 1), (row(&[1, 4]), 1)]
        );
        assert!(manager.query("q2").unwrap().is_empty(), "no 2-hop from 2");

        // Retiring a query releases its readers; the memo entry is retained (uses 0)
        // so the next arriving plan attaches without rebuilding.
        assert!(manager.uninstall(worker, "q2").unwrap());
        assert_eq!(manager.arrangement_reader_count(&shared), Some(readers_one));
        assert!(manager.uninstall(worker, "q1").unwrap());
        assert_eq!(manager.memo_count(), 1);
        assert_eq!(manager.memo_uses(&shared), Some(0));
        let third = manager
            .install(
                worker,
                "q3",
                two_hop("edges", "args-3"),
                vec!["args-3".into()],
            )
            .unwrap();
        assert_eq!(third, 1, "the retained arrangement is reused");
        assert!(manager.uninstall(worker, "q3").unwrap());

        // Removing the input evicts the memo entries built on it and retires their
        // dataflows; only the slot table remembers they existed.
        let live_before = worker.live_dataflow_count();
        assert!(manager.uninstall(worker, "edges").unwrap());
        assert_eq!(manager.memo_count(), 0);
        assert_eq!(worker.live_dataflow_count(), live_before - 2);
        assert!(manager.input_names().is_empty());
    });
}

#[test]
fn input_removal_is_blocked_while_a_query_reads_it() {
    execute(Config::new(1), |worker| {
        let mut manager = Manager::new();
        manager.create_input(worker, "edges").unwrap();
        manager
            .install(worker, "q", two_hop("edges", "args"), vec!["args".into()])
            .unwrap();
        assert_eq!(
            manager.uninstall(worker, "edges"),
            Err(PlanError::InputInUse {
                input: "edges".into(),
                user: "q".into(),
            })
        );
        // Query-local inputs may not be removed out from under their query either.
        assert_eq!(
            manager.uninstall(worker, "args"),
            Err(PlanError::InputInUse {
                input: "args".into(),
                user: "q".into(),
            })
        );
        assert!(manager.uninstall(worker, "q").unwrap());
        assert!(manager.uninstall(worker, "edges").unwrap());
    });
}

/// One command stream, replayed identically on two workers: `Command::Update` shards
/// internally, so the union of per-worker answers equals the one-worker answers.
#[test]
fn identical_command_streams_shard_updates_across_workers() {
    let stream = || -> Vec<Command> {
        let mut commands = vec![Command::CreateInput {
            name: "edges".into(),
            key_arity: None,
        }];
        for i in 0..40u64 {
            commands.push(Command::Update {
                name: "edges".into(),
                row: row(&[i % 10, (i * 7) % 10]),
                diff: 1,
            });
        }
        commands.push(Command::Install {
            name: "degrees".into(),
            plan: Plan::source("edges")
                .distinct()
                .reduce(1, ReduceKind::Count),
            locals: vec![],
        });
        commands.push(Command::AdvanceTime { epoch: 1 });
        commands
    };
    let run = |workers: usize| -> Vec<(Row, isize)> {
        let per_worker = execute(Config::new(workers), move |worker| {
            let mut manager = Manager::new();
            for command in stream() {
                manager.execute(worker, command).unwrap();
            }
            manager.settle(worker);
            manager.query("degrees").unwrap()
        });
        let mut merged: std::collections::BTreeMap<Row, isize> = std::collections::BTreeMap::new();
        for rows in per_worker {
            for (row, diff) in rows {
                *merged.entry(row).or_insert(0) += diff;
            }
        }
        merged.into_iter().filter(|(_, diff)| *diff != 0).collect()
    };
    let one = run(1);
    let two = run(2);
    assert!(!one.is_empty());
    assert_eq!(one, two);
}

/// A fixed point described as data: reachability from a shared root set, with the edge
/// index imported into the loop from outside it (§5.4 sharing into iterative scopes).
#[test]
fn iterate_renders_reachability_from_data() {
    let results = execute(Config::new(1), |worker| {
        let mut manager = Manager::new();
        manager.create_input(worker, "edges").unwrap();
        manager.create_input(worker, "roots").unwrap();
        for (src, dst) in [(1u64, 2u64), (2, 3), (3, 4), (5, 6)] {
            manager.update("edges", row(&[src, dst]), 1).unwrap();
        }
        manager.update("roots", row(&[1]), 1).unwrap();
        let body = Plan::source("roots")
            .concat(
                Plan::Recur
                    .join(Plan::source("edges"), vec![(0, 0)]) // [n, next]
                    .map(vec![Expr::col(1)]),
            )
            .distinct();
        let reach = Plan::source("roots").iterate(body);
        manager.install(worker, "reach", reach, vec![]).unwrap();
        manager.advance_to(1).unwrap();
        manager.settle(worker);
        let at_one = manager.query("reach").unwrap();

        // A new edge extends the fixed point incrementally.
        manager.update("edges", row(&[4, 5]), 1).unwrap();
        manager.advance_to(2).unwrap();
        manager.settle(worker);
        (at_one, manager.query("reach").unwrap())
    });
    let (at_one, at_two) = results[0].clone();
    let expect =
        |nodes: &[u64]| -> Vec<(Row, isize)> { nodes.iter().map(|&n| (row(&[n]), 1)).collect() };
    assert_eq!(at_one, expect(&[1, 2, 3, 4]));
    assert_eq!(at_two, expect(&[1, 2, 3, 4, 5, 6]));
}

/// Expression-heavy plans: filters and projections evaluate the data-described `Expr`
/// language, including comparisons and arithmetic.
#[test]
fn expressions_drive_filter_and_map() {
    let results = execute(Config::new(1), |worker| {
        let mut manager = Manager::new();
        manager.create_input(worker, "pairs").unwrap();
        for (a, b) in [(1u64, 1u64), (2, 5), (3, 2), (4, 4)] {
            manager.update("pairs", row(&[a, b]), 1).unwrap();
        }
        // Keep rows where the second column exceeds the first; output their sum and
        // difference.
        let plan = Plan::source("pairs")
            .filter(Expr::col(1).gt(Expr::col(0)))
            .map(vec![
                Expr::col(0).add(Expr::col(1)),
                Expr::col(1).sub(Expr::col(0)),
            ]);
        manager.install(worker, "arith", plan, vec![]).unwrap();
        manager.advance_to(1).unwrap();
        manager.settle(worker);
        manager.query("arith").unwrap()
    });
    assert_eq!(results[0], vec![(row(&[7, 3]), 1)]);
}

/// Reduce kinds beyond Count: Sum, Min, and Top-1 per group.
#[test]
fn reduce_kinds_aggregate_per_group() {
    let results = execute(Config::new(1), |worker| {
        let mut manager = Manager::new();
        manager.create_input(worker, "sales").unwrap();
        // [region, amount]
        for (region, amount) in [(1u64, 10u64), (1, 30), (2, 7), (2, 5)] {
            manager.update("sales", row(&[region, amount]), 1).unwrap();
        }
        for (name, kind) in [
            ("sum", ReduceKind::Sum(1)),
            ("min", ReduceKind::Min(1)),
            ("top", ReduceKind::Top(1)),
        ] {
            manager
                .install(worker, name, Plan::source("sales").reduce(1, kind), vec![])
                .unwrap();
        }
        manager.advance_to(1).unwrap();
        manager.settle(worker);
        (
            manager.query("sum").unwrap(),
            manager.query("min").unwrap(),
            manager.query("top").unwrap(),
        )
    });
    let (sum, min, top) = results[0].clone();
    assert_eq!(
        sum,
        vec![
            (Row::from(vec![Value::UInt(1), Value::Int(40)]), 1),
            (Row::from(vec![Value::UInt(2), Value::Int(12)]), 1),
        ]
    );
    assert_eq!(min, vec![(row(&[1, 10]), 1), (row(&[2, 5]), 1)]);
    assert_eq!(top, vec![(row(&[1, 30]), 1), (row(&[2, 7]), 1)]);
}

/// Prefix-keyed base inputs: a plan joining on the base's key prefix imports the base
/// arrangement directly (no memo dataflow), and reading the source at collection
/// position reconstructs the original rows.
#[test]
fn prefix_keyed_inputs_serve_joins_without_rearrangement() {
    let results = execute(Config::new(1), |worker| {
        let mut manager = Manager::new();
        manager
            .create_input_keyed(worker, "edges", Some(1))
            .unwrap();
        for (src, dst) in [(1u64, 2u64), (2, 3), (2, 4)] {
            manager.update("edges", row(&[src, dst]), 1).unwrap();
        }
        let installs = manager
            .install(worker, "q", two_hop("edges", "args"), vec!["args".into()])
            .unwrap();
        assert_eq!(installs, 1, "the base arrangement serves both join sites");
        assert_eq!(manager.memo_count(), 0);
        // Reading the source at collection position reconstructs [src, dst] rows.
        manager
            .install(worker, "identity", Plan::source("edges"), vec![])
            .unwrap();
        manager.update("args", row(&[1]), 1).unwrap();
        manager.advance_to(1).unwrap();
        manager.settle(worker);
        (
            manager.query("q").unwrap(),
            manager.query("identity").unwrap(),
        )
    });
    let (two_hops, identity) = results[0].clone();
    assert_eq!(two_hops, vec![(row(&[1, 3]), 1), (row(&[1, 4]), 1)]);
    assert_eq!(
        identity,
        vec![(row(&[1, 2]), 1), (row(&[2, 3]), 1), (row(&[2, 4]), 1),]
    );
}

/// Query answers only over sealed history: an update at the still-open current epoch
/// is invisible to Query no matter how much the worker has stepped, so a settled
/// Query's answer is deterministic — the epoch becomes visible once time advances
/// past it.
#[test]
fn query_excludes_the_unsealed_current_epoch() {
    execute(Config::new(1), |worker| {
        let mut manager = Manager::new();
        manager.create_input(worker, "nums").unwrap();
        manager
            .install(worker, "all", Plan::source("nums"), vec![])
            .unwrap();
        manager.update("nums", row(&[1]), 1).unwrap();
        manager.advance_to(1).unwrap();
        manager.settle(worker);
        assert_eq!(manager.query("all").unwrap(), vec![(row(&[1]), 1)]);

        // An update at the current epoch: settling (and stepping well past it) must
        // not leak a partially processed epoch into the answer.
        manager.update("nums", row(&[2]), 1).unwrap();
        manager.settle(worker);
        for _ in 0..32 {
            worker.step();
        }
        assert_eq!(
            manager.query("all").unwrap(),
            vec![(row(&[1]), 1)],
            "the open epoch is not yet part of the answer"
        );
        manager.advance_to(2).unwrap();
        manager.settle(worker);
        assert_eq!(
            manager.query("all").unwrap(),
            vec![(row(&[1]), 1), (row(&[2]), 1)]
        );
    });
}

/// An install that fails *after* memo dataflows were created rolls them back. The
/// manager's reserved "plan-memo-…" names live in the worker's shared dataflow
/// namespace, so a user query named like the next memo dataflow makes the query's own
/// install fail after its memo was ensured — and must leave no memo state behind.
#[test]
fn failed_install_rolls_back_created_memos() {
    execute(Config::new(1), |worker| {
        let mut manager = Manager::new();
        manager.create_input(worker, "edges").unwrap();
        let live_before = worker.live_dataflow_count();
        let result = manager.install(
            worker,
            "plan-memo-1",
            two_hop("edges", "args"),
            vec!["args".into()],
        );
        assert!(matches!(result, Err(PlanError::Catalog(_))), "{result:?}");
        assert_eq!(manager.memo_count(), 0, "created memos were rolled back");
        assert_eq!(worker.live_dataflow_count(), live_before);
        assert!(manager.installed_names().is_empty());
        assert!(!manager.input_names().contains(&"args".to_string()));
        // The manager remains fully usable: the same plan installs cleanly now.
        manager
            .install(worker, "q", two_hop("edges", "args"), vec!["args".into()])
            .unwrap();
        assert!(manager.uninstall(worker, "q").unwrap());
        assert!(manager.uninstall(worker, "edges").unwrap());
    });
}

/// Install-time validation rejects malformed plans and name misuse without touching
/// worker state.
#[test]
fn validation_and_name_errors() {
    execute(Config::new(1), |worker| {
        let mut manager = Manager::new();
        manager.create_input(worker, "edges").unwrap();
        assert_eq!(
            manager.create_input(worker, "edges"),
            Err(PlanError::DuplicateInput("edges".into()))
        );
        assert!(matches!(
            manager.install(worker, "q", Plan::source("nope"), vec![]),
            Err(PlanError::Invalid(_))
        ));
        assert!(matches!(
            manager.install(worker, "q", Plan::Recur, vec![]),
            Err(PlanError::Invalid(_))
        ));
        assert_eq!(
            manager.update("nope", row(&[1]), 1),
            Err(PlanError::UnknownInput("nope".into()))
        );
        manager
            .install(worker, "q", Plan::source("edges"), vec![])
            .unwrap();
        assert_eq!(
            manager.install(worker, "q", Plan::source("edges"), vec![]),
            Err(PlanError::DuplicateQuery("q".into()))
        );
        assert_eq!(
            manager.query("other"),
            Err(PlanError::UnknownQuery("other".into()))
        );
        assert_eq!(
            manager.advance_to(0).and_then(|_| {
                manager.advance_to(3)?;
                manager.advance_to(1)
            }),
            Err(PlanError::TimeRegression { from: 3, to: 1 })
        );
        assert!(!manager.uninstall(worker, "ghost").unwrap());
        let _ = manager.query_probe("q").unwrap();
        let _ = Time::minimum();

        // A failed Install leaves no state behind — in particular, a query name that
        // collides with a manager-internal dataflow name is rejected *before* any memo
        // dataflow is ensured.
        let live_before = worker.live_dataflow_count();
        assert_eq!(
            manager.install(
                worker,
                "plan-input-edges",
                two_hop("edges", "args"),
                vec!["args".into()],
            ),
            Err(PlanError::DuplicateQuery("plan-input-edges".into()))
        );
        assert_eq!(manager.memo_count(), 0);
        assert_eq!(worker.live_dataflow_count(), live_before);
        assert!(!manager.input_names().contains(&"args".to_string()));
    });
}
