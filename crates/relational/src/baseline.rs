//! Full re-evaluation baseline: recompute each query from scratch over plain vectors.
//!
//! This is the comparator the paper's incremental-view-maintenance experiments need: a
//! system that, on every logical batch, re-evaluates the query over the full current
//! database (the behaviour DBToaster falls back to for queries it cannot incrementalise).
//! It doubles as a correctness oracle for the differential query implementations.

use std::collections::BTreeMap;

use crate::data::{region_of, Database};
use crate::queries::ResultRow;

/// Recomputes the query with the given TPC-H number over the full database.
pub fn evaluate(number: u32, db: &Database) -> Vec<ResultRow> {
    let mut groups: BTreeMap<String, i64> = BTreeMap::new();
    match number {
        1 => {
            for l in db.lineitems.iter().filter(|l| l.ship_date <= 2_400) {
                *groups
                    .entry(format!("{}|{}", l.return_flag, l.line_status))
                    .or_insert(0) += l.quantity + l.extended_price * (100 - l.discount) / 100;
            }
        }
        3 => {
            let customers: Vec<u32> = db
                .customers
                .iter()
                .filter(|c| c.segment == 1)
                .map(|c| c.key)
                .collect();
            let orders: Vec<u32> = db
                .orders
                .iter()
                .filter(|o| o.order_date < 1_500 && customers.contains(&o.customer))
                .map(|o| o.key)
                .collect();
            for l in db.lineitems.iter().filter(|l| l.ship_date > 1_500) {
                if orders.contains(&l.order) {
                    *groups.entry(format!("order-{}", l.order)).or_insert(0) +=
                        l.extended_price * (100 - l.discount) / 100;
                }
            }
        }
        4 => {
            let late: std::collections::BTreeSet<u32> = db
                .lineitems
                .iter()
                .filter(|l| l.commit_date < l.receipt_date)
                .map(|l| l.order)
                .collect();
            for o in db
                .orders
                .iter()
                .filter(|o| o.order_date >= 1_000 && o.order_date < 1_100 && late.contains(&o.key))
            {
                *groups
                    .entry(format!("priority-{}", o.priority))
                    .or_insert(0) += 1;
            }
        }
        5 => {
            let customer_nation: BTreeMap<u32, u32> =
                db.customers.iter().map(|c| (c.key, c.nation)).collect();
            let order_nation: BTreeMap<u32, u32> = db
                .orders
                .iter()
                .filter_map(|o| customer_nation.get(&o.customer).map(|n| (o.key, *n)))
                .collect();
            let supplier_nation: BTreeMap<u32, u32> =
                db.suppliers.iter().map(|s| (s.key, s.nation)).collect();
            for l in db.lineitems.iter() {
                if let (Some(cn), Some(sn)) =
                    (order_nation.get(&l.order), supplier_nation.get(&l.supplier))
                {
                    if region_of(*cn) == region_of(*sn) {
                        *groups
                            .entry(format!("region-{}", region_of(*cn)))
                            .or_insert(0) += l.extended_price * (100 - l.discount) / 100;
                    }
                }
            }
        }
        6 => {
            let total: i64 = db
                .lineitems
                .iter()
                .filter(|l| {
                    l.ship_date >= 500
                        && l.ship_date < 865
                        && l.discount >= 5
                        && l.discount <= 7
                        && l.quantity < 24
                })
                .map(|l| l.extended_price * l.discount / 100)
                .sum();
            groups.insert("revenue".to_string(), total);
        }
        10 => {
            let order_customer: BTreeMap<u32, u32> =
                db.orders.iter().map(|o| (o.key, o.customer)).collect();
            for l in db.lineitems.iter().filter(|l| l.return_flag == 2) {
                if let Some(customer) = order_customer.get(&l.order) {
                    *groups.entry(format!("customer-{customer}")).or_insert(0) +=
                        l.extended_price * (100 - l.discount) / 100;
                }
            }
        }
        12 => {
            let order_priority: BTreeMap<u32, u8> =
                db.orders.iter().map(|o| (o.key, o.priority)).collect();
            for l in db.lineitems.iter().filter(|l| {
                (l.ship_mode == 3 || l.ship_mode == 5) && l.commit_date < l.receipt_date
            }) {
                if let Some(priority) = order_priority.get(&l.order) {
                    let urgent = u8::from(*priority <= 1);
                    *groups
                        .entry(format!("mode-{}-urgent-{}", l.ship_mode, urgent))
                        .or_insert(0) += 1;
                }
            }
        }
        14 => {
            let promo: BTreeMap<u32, bool> =
                db.parts.iter().map(|p| (p.key, p.part_type < 25)).collect();
            let mut promo_revenue = 0i64;
            let mut total_revenue = 0i64;
            for l in db
                .lineitems
                .iter()
                .filter(|l| l.ship_date >= 700 && l.ship_date < 730)
            {
                if let Some(is_promo) = promo.get(&l.part) {
                    let revenue = l.extended_price * (100 - l.discount) / 100;
                    total_revenue += revenue;
                    if *is_promo {
                        promo_revenue += revenue;
                    }
                }
            }
            let share = if total_revenue == 0 {
                0
            } else {
                promo_revenue * 10_000 / total_revenue
            };
            groups.insert("promo_share_bp".to_string(), share);
        }
        other => panic!("query {other} is not implemented"),
    }
    groups.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::generate;
    use crate::queries::{build_query, relations, IMPLEMENTED};
    use kpg_core::prelude::*;
    use kpg_dataflow::Time;

    /// The differential implementation of every query must agree with full re-evaluation.
    #[test]
    fn differential_queries_agree_with_reevaluation() {
        let db = generate(0.2, 17);
        for &query in IMPLEMENTED {
            let expected = evaluate(query, &db);
            let db_rows = (
                db.lineitems.clone(),
                db.orders.clone(),
                db.customers.clone(),
                db.suppliers.clone(),
                db.parts.clone(),
            );
            let out = execute(Config::new(1), move |worker| {
                let rows = db_rows.clone();
                let (mut inputs, probe, cap) = worker.dataflow(|builder| {
                    let (inputs, rels) = relations(builder);
                    let result = build_query(query, &rels);
                    (inputs, result.probe(), result.capture())
                });
                for l in rows.0 {
                    inputs.lineitem.insert(l);
                }
                for o in rows.1 {
                    inputs.orders.insert(o);
                }
                for c in rows.2 {
                    inputs.customer.insert(c);
                }
                for s in rows.3 {
                    inputs.supplier.insert(s);
                }
                for p in rows.4 {
                    inputs.part.insert(p);
                }
                inputs.advance_to(1);
                worker.step_while(|| probe.less_than(&Time::from_epoch(1)));
                let r = cap.borrow().clone();
                r
            });
            let mut measured: BTreeMap<String, i64> = BTreeMap::new();
            for ((key, value), _, diff) in &out[0] {
                *measured.entry(key.clone()).or_insert(0) += value * (*diff as i64);
            }
            measured.retain(|_, v| *v != 0);
            let expected: BTreeMap<String, i64> = expected
                .into_iter()
                .filter(|(_, value)| *value != 0)
                .collect();
            assert_eq!(
                measured, expected,
                "query {query} disagrees with re-evaluation"
            );
        }
    }
}
