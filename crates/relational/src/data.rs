//! TPC-H-like schema and seeded data generator.
//!
//! Rows carry the columns the queries need, with integer keys and fixed-point prices
//! (cents as `i64`). The generator preserves the schema's key relationships: every
//! lineitem references an order, every order a customer, every customer a nation, and so
//! on, so the join structure of the queries is exercised faithfully.

use kpg_timestamp::rng::SmallRng;

/// A lineitem row (the fact table).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lineitem {
    /// The order this lineitem belongs to.
    pub order: u32,
    /// The part shipped.
    pub part: u32,
    /// The supplier shipping it.
    pub supplier: u32,
    /// Quantity shipped.
    pub quantity: i64,
    /// Extended price in cents.
    pub extended_price: i64,
    /// Discount in basis points (0..=1000).
    pub discount: i64,
    /// Tax in basis points.
    pub tax: i64,
    /// Return flag (0..3).
    pub return_flag: u8,
    /// Line status (0..2).
    pub line_status: u8,
    /// Ship date as days since epoch.
    pub ship_date: u32,
    /// Commit date as days since epoch.
    pub commit_date: u32,
    /// Receipt date as days since epoch.
    pub receipt_date: u32,
    /// Ship mode (0..7).
    pub ship_mode: u8,
}

/// An orders row.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Order {
    /// The order key.
    pub key: u32,
    /// The customer placing the order.
    pub customer: u32,
    /// Order date as days since epoch.
    pub order_date: u32,
    /// Order priority (0..5).
    pub priority: u8,
    /// Total price in cents.
    pub total_price: i64,
}

/// A customer row.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Customer {
    /// The customer key.
    pub key: u32,
    /// The customer's nation.
    pub nation: u32,
    /// Market segment (0..5).
    pub segment: u8,
    /// Account balance in cents.
    pub balance: i64,
}

/// A supplier row.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Supplier {
    /// The supplier key.
    pub key: u32,
    /// The supplier's nation.
    pub nation: u32,
}

/// A part row.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Part {
    /// The part key.
    pub key: u32,
    /// Part type (0..150).
    pub part_type: u16,
    /// Part size.
    pub size: u8,
}

/// The number of nations (as in TPC-H).
pub const NATIONS: u32 = 25;
/// The number of regions (as in TPC-H).
pub const REGIONS: u32 = 5;

/// Maps a nation to its region, mirroring TPC-H's fixed nation/region table.
pub fn region_of(nation: u32) -> u32 {
    nation % REGIONS
}

/// A generated database at some scale.
pub struct Database {
    /// Lineitem rows.
    pub lineitems: Vec<Lineitem>,
    /// Order rows.
    pub orders: Vec<Order>,
    /// Customer rows.
    pub customers: Vec<Customer>,
    /// Supplier rows.
    pub suppliers: Vec<Supplier>,
    /// Part rows.
    pub parts: Vec<Part>,
}

/// Generates a database where `scale = 1.0` corresponds to roughly 6,000 lineitems
/// (1/1000 of TPC-H scale factor 1), keeping laptop runs fast while preserving the row
/// count ratios between relations.
pub fn generate(scale: f64, seed: u64) -> Database {
    let mut rng = SmallRng::seed_from_u64(seed);
    let lineitem_count = (6_000.0 * scale) as usize;
    let order_count = (lineitem_count / 4).max(1);
    let customer_count = (order_count / 10).max(1);
    let supplier_count = (customer_count / 15).max(1);
    let part_count = (lineitem_count / 30).max(1);

    let customers = (0..customer_count as u32)
        .map(|key| Customer {
            key,
            nation: rng.gen_range(0..NATIONS),
            segment: rng.gen_range(0..5),
            balance: rng.gen_range(-100_000..1_000_000),
        })
        .collect::<Vec<_>>();
    let suppliers = (0..supplier_count as u32)
        .map(|key| Supplier {
            key,
            nation: rng.gen_range(0..NATIONS),
        })
        .collect::<Vec<_>>();
    let parts = (0..part_count as u32)
        .map(|key| Part {
            key,
            part_type: rng.gen_range(0..150),
            size: rng.gen_range(1..51),
        })
        .collect::<Vec<_>>();
    let orders = (0..order_count as u32)
        .map(|key| Order {
            key,
            customer: rng.gen_range(0..customer_count as u32),
            order_date: rng.gen_range(0..2557),
            priority: rng.gen_range(0..5),
            total_price: rng.gen_range(1_000..50_000_000),
        })
        .collect::<Vec<_>>();
    let lineitems = (0..lineitem_count)
        .map(|_| {
            let order = rng.gen_range(0..order_count as u32);
            let ship_date = rng.gen_range(0..2557);
            Lineitem {
                order,
                part: rng.gen_range(0..part_count as u32),
                supplier: rng.gen_range(0..supplier_count as u32),
                quantity: rng.gen_range(1..51),
                extended_price: rng.gen_range(1_000..10_000_000),
                discount: rng.gen_range(0..=100),
                tax: rng.gen_range(0..=80),
                return_flag: rng.gen_range(0..3),
                line_status: rng.gen_range(0..2),
                ship_date,
                commit_date: ship_date + rng.gen_range(0u32..60),
                receipt_date: ship_date + rng.gen_range(0u32..90),
                ship_mode: rng.gen_range(0..7),
            }
        })
        .collect::<Vec<_>>();

    Database {
        lineitems,
        orders,
        customers,
        suppliers,
        parts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_referentially_consistent() {
        let a = generate(0.5, 42);
        let b = generate(0.5, 42);
        assert_eq!(a.lineitems, b.lineitems);
        assert_eq!(a.lineitems.len(), 3_000);
        let order_count = a.orders.len() as u32;
        assert!(a.lineitems.iter().all(|l| l.order < order_count));
        let customer_count = a.customers.len() as u32;
        assert!(a.orders.iter().all(|o| o.customer < customer_count));
    }

    #[test]
    fn scale_controls_size() {
        assert!(generate(0.1, 1).lineitems.len() < generate(1.0, 1).lineitems.len());
    }
}
