//! Relational analytics workload: a TPC-H-like schema, generator, incrementally
//! maintained queries, and a full re-evaluation baseline (paper §6.1, Appendix B).
//!
//! The paper evaluates incremental view maintenance of the 22 TPC-H queries against
//! DBToaster. dbgen data and DBToaster itself cannot be shipped here (substitution S2 in
//! DESIGN.md), so this crate provides:
//!
//! * [`data`] — schema-compatible row types and a seeded generator with the same key
//!   relationships and value skew, at laptop scale factors;
//! * [`queries`] — a representative set of the TPC-H queries expressed as differential
//!   dataflows over those relations (scan/filter/aggregate, join/aggregate, semijoin,
//!   group-by shapes), each incrementally maintained as the lineitem/orders streams load;
//! * [`baseline`] — a re-evaluation engine that recomputes each query from scratch per
//!   logical batch, the behaviour DBToaster falls back to for complex aggregates.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod data;
pub mod queries;
