//! Incrementally maintained TPC-H-style queries.
//!
//! Each query is a differential dataflow over the relation collections, producing a
//! collection of `(group_key, aggregate_value)` rows so the harness can treat all queries
//! uniformly. The set covers the main shapes in the benchmark — scan/filter/aggregate
//! (Q1, Q6), join + aggregate (Q3, Q5, Q10, Q14), existence tests (Q4), and multi-way
//! grouping (Q12) — which is what the batching and scaling experiments of §6.1 exercise.
//! The remaining TPC-H queries follow the same patterns and are recorded as future work
//! in EXPERIMENTS.md.

use kpg_core::prelude::*;
use kpg_dataflow::InputHandle;

use crate::data::{region_of, Customer, Lineitem, Order};

/// A query result row: a rendered group key and an aggregate value (cents or counts).
pub type ResultRow = (String, i64);

/// Input handles for every relation of the workload.
pub struct RelationInputs {
    /// Lineitem input.
    pub lineitem: InputHandle<Lineitem, isize>,
    /// Orders input.
    pub orders: InputHandle<Order, isize>,
    /// Customer input.
    pub customer: InputHandle<Customer, isize>,
    /// Supplier input.
    pub supplier: InputHandle<crate::data::Supplier, isize>,
    /// Part input.
    pub part: InputHandle<crate::data::Part, isize>,
}

impl RelationInputs {
    /// Advances every relation to `epoch`.
    pub fn advance_to(&mut self, epoch: u64) {
        self.lineitem.advance_to(epoch);
        self.orders.advance_to(epoch);
        self.customer.advance_to(epoch);
        self.supplier.advance_to(epoch);
        self.part.advance_to(epoch);
    }
}

/// The relation collections a query dataflow is built from.
pub struct Relations {
    /// Lineitem collection.
    pub lineitem: Collection<Lineitem>,
    /// Orders collection.
    pub orders: Collection<Order>,
    /// Customer collection.
    pub customer: Collection<Customer>,
    /// Supplier collection.
    pub supplier: Collection<crate::data::Supplier>,
    /// Part collection.
    pub part: Collection<crate::data::Part>,
}

/// Creates the relation inputs and collections in a dataflow under construction.
pub fn relations(builder: &mut DataflowBuilder) -> (RelationInputs, Relations) {
    let (lineitem_in, lineitem) = new_collection(builder);
    let (orders_in, orders) = new_collection(builder);
    let (customer_in, customer) = new_collection(builder);
    let (supplier_in, supplier) = new_collection(builder);
    let (part_in, part) = new_collection(builder);
    (
        RelationInputs {
            lineitem: lineitem_in,
            orders: orders_in,
            customer: customer_in,
            supplier: supplier_in,
            part: part_in,
        },
        Relations {
            lineitem,
            orders,
            customer,
            supplier,
            part,
        },
    )
}

/// The identifiers of the queries this module implements.
pub const IMPLEMENTED: &[u32] = &[1, 3, 4, 5, 6, 10, 12, 14];

/// Builds the query with the given TPC-H number.
///
/// Panics if the query is not in [`IMPLEMENTED`].
pub fn build_query(number: u32, relations: &Relations) -> Collection<ResultRow> {
    match number {
        1 => q1(relations),
        3 => q3(relations),
        4 => q4(relations),
        5 => q5(relations),
        6 => q6(relations),
        10 => q10(relations),
        12 => q12(relations),
        14 => q14(relations),
        other => panic!("query {other} is not implemented"),
    }
}

/// Q1: pricing summary report — sums of quantity and discounted price per
/// (return_flag, line_status), for lineitems shipped before a cutoff.
pub fn q1(relations: &Relations) -> Collection<ResultRow> {
    relations
        .lineitem
        .filter(|l| l.ship_date <= 2_400)
        .map(|l| {
            (
                (l.return_flag, l.line_status),
                l.quantity + l.extended_price * (100 - l.discount) / 100,
            )
        })
        .reduce(|key, values, output| {
            let total: i64 = values.iter().map(|(v, r)| *v * (*r as i64)).sum();
            let _ = key;
            output.push((total, 1isize));
        })
        .map(|((flag, status), total)| (format!("{flag}|{status}"), total))
}

/// Q3: unshipped orders — revenue per order for a market segment, ordered by date.
pub fn q3(relations: &Relations) -> Collection<ResultRow> {
    let customers = relations
        .customer
        .filter(|c| c.segment == 1)
        .map(|c| (c.key, ()));
    let orders = relations
        .orders
        .filter(|o| o.order_date < 1_500)
        .map(|o| (o.customer, o.key));
    let relevant_orders = orders
        .semijoin(&customers.map(|(k, ())| k))
        .map(|(_, o)| (o, ()));
    let revenue = relations
        .lineitem
        .filter(|l| l.ship_date > 1_500)
        .map(|l| (l.order, l.extended_price * (100 - l.discount) / 100));
    revenue
        .semijoin(&relevant_orders.map(|(o, ())| o))
        .reduce(|_order, values, output| {
            let total: i64 = values.iter().map(|(v, r)| *v * (*r as i64)).sum();
            output.push((total, 1isize));
        })
        .map(|(order, total)| (format!("order-{order}"), total))
}

/// Q4: order priority checking — orders with at least one late lineitem, per priority.
pub fn q4(relations: &Relations) -> Collection<ResultRow> {
    let late_orders = relations
        .lineitem
        .filter(|l| l.commit_date < l.receipt_date)
        .map(|l| l.order)
        .distinct();
    relations
        .orders
        .filter(|o| o.order_date >= 1_000 && o.order_date < 1_100)
        .map(|o| (o.key, o.priority))
        .semijoin(&late_orders)
        .map(|(_, priority)| priority)
        .count()
        .map(|(priority, orders)| (format!("priority-{priority}"), orders as i64))
}

/// Q5: local supplier volume — revenue per region where customer and supplier share the
/// nation's region.
pub fn q5(relations: &Relations) -> Collection<ResultRow> {
    let customers = relations.customer.map(|c| (c.key, c.nation));
    let orders = relations.orders.map(|o| (o.customer, o.key));
    let order_nation = orders.join_map(&customers, |_cust, order, nation| (*order, *nation));
    let suppliers = relations.supplier.map(|s| (s.key, s.nation));
    let revenue = relations.lineitem.map(|l| {
        (
            l.order,
            (l.supplier, l.extended_price * (100 - l.discount) / 100),
        )
    });
    revenue
        .join_map(&order_nation, |_order, (supplier, rev), nation| {
            (*supplier, (*nation, *rev))
        })
        .join_map(&suppliers, |_supplier, (cust_nation, rev), supp_nation| {
            (
                region_of(*cust_nation) == region_of(*supp_nation),
                region_of(*cust_nation),
                *rev,
            )
        })
        .filter(|(same, _, _)| *same)
        .map(|(_, region, rev)| (region, rev))
        .reduce(|_region, values, output| {
            let total: i64 = values.iter().map(|(v, r)| *v * (*r as i64)).sum();
            output.push((total, 1isize));
        })
        .map(|(region, total)| (format!("region-{region}"), total))
}

/// Q6: forecasting revenue change — a pure filter-and-sum over lineitem.
pub fn q6(relations: &Relations) -> Collection<ResultRow> {
    relations
        .lineitem
        .filter(|l| {
            l.ship_date >= 500
                && l.ship_date < 865
                && l.discount >= 5
                && l.discount <= 7
                && l.quantity < 24
        })
        .map(|l| ((), l.extended_price * l.discount / 100))
        .reduce(|_unit, values, output| {
            let total: i64 = values.iter().map(|(v, r)| *v * (*r as i64)).sum();
            output.push((total, 1isize));
        })
        .map(|((), total)| ("revenue".to_string(), total))
}

/// Q10: returned item reporting — revenue lost per customer due to returned items.
pub fn q10(relations: &Relations) -> Collection<ResultRow> {
    let returned = relations
        .lineitem
        .filter(|l| l.return_flag == 2)
        .map(|l| (l.order, l.extended_price * (100 - l.discount) / 100));
    let orders = relations.orders.map(|o| (o.key, o.customer));
    returned
        .join_map(&orders, |_order, revenue, customer| (*customer, *revenue))
        .reduce(|_customer, values, output| {
            let total: i64 = values.iter().map(|(v, r)| *v * (*r as i64)).sum();
            output.push((total, 1isize));
        })
        .map(|(customer, total)| (format!("customer-{customer}"), total))
}

/// Q12: shipping modes and order priority — late lineitems per ship mode, split by
/// whether the order was urgent.
pub fn q12(relations: &Relations) -> Collection<ResultRow> {
    let orders = relations.orders.map(|o| (o.key, o.priority));
    relations
        .lineitem
        .filter(|l| (l.ship_mode == 3 || l.ship_mode == 5) && l.commit_date < l.receipt_date)
        .map(|l| (l.order, l.ship_mode))
        .join_map(&orders, |_order, mode, priority| {
            (*mode, u8::from(*priority <= 1))
        })
        .count()
        .map(|((mode, urgent), lines)| (format!("mode-{mode}-urgent-{urgent}"), lines as i64))
}

/// Q14: promotion effect — revenue from promotional parts as a share of total revenue,
/// reported in basis points.
pub fn q14(relations: &Relations) -> Collection<ResultRow> {
    let parts = relations.part.map(|p| (p.key, u8::from(p.part_type < 25)));
    relations
        .lineitem
        .filter(|l| l.ship_date >= 700 && l.ship_date < 730)
        .map(|l| (l.part, l.extended_price * (100 - l.discount) / 100))
        .join_map(&parts, |_part, revenue, promo| ((), (*promo, *revenue)))
        .reduce(|_unit, values, output| {
            let promo: i64 = values
                .iter()
                .filter(|((p, _), _)| *p == 1)
                .map(|((_, v), r)| *v * (*r as i64))
                .sum();
            let total: i64 = values.iter().map(|((_, v), r)| *v * (*r as i64)).sum();
            let share = if total == 0 {
                0
            } else {
                promo * 10_000 / total
            };
            output.push((share, 1isize));
        })
        .map(|((), share)| ("promo_share_bp".to_string(), share))
}
