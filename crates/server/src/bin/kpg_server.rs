//! The standalone network query server.
//!
//! ```console
//! $ cargo run --release -p kpg_server --bin kpg_server -- \
//!       --addr 127.0.0.1:6464 --workers 2
//! ```
//!
//! Clients speak the framed `kpg_wire` protocol (see the README's "Network protocol"
//! section), most conveniently through `kpg_server::Client`. The process serves until
//! killed.

use kpg_server::{serve, ServerConfig};
use kpg_wire::DEFAULT_FRAME_LIMIT;

fn arg(name: &str, default: &str) -> String {
    let mut args = std::env::args();
    while let Some(current) = args.next() {
        if current == name {
            if let Some(value) = args.next() {
                return value;
            }
        }
    }
    default.to_string()
}

fn main() {
    let addr = arg("--addr", "127.0.0.1:6464");
    let workers: usize = arg("--workers", "1").parse().expect("--workers: a number");
    let frame_limit: usize = arg("--frame-limit", &DEFAULT_FRAME_LIMIT.to_string())
        .parse()
        .expect("--frame-limit: bytes");

    let server = serve(
        &addr,
        ServerConfig {
            workers,
            frame_limit,
            ..ServerConfig::default()
        },
    )
    .expect("failed to bind");
    println!(
        "kpg_server listening on {} ({} workers, {}-byte frame limit)",
        server.local_addr(),
        workers,
        frame_limit
    );
    loop {
        std::thread::park();
    }
}
