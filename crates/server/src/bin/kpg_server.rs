//! The standalone network query server.
//!
//! ```console
//! $ cargo run --release -p kpg_server --bin kpg_server -- \
//!       --addr 127.0.0.1:6464 --workers 2 --durable-dir /var/lib/kpg
//! ```
//!
//! Clients speak the framed `kpg_wire` protocol (see the README's "Network protocol"
//! section), most conveniently through `kpg_server::Client`. Without `--durable-dir`
//! the process serves in memory until killed. With it, every state-defining command
//! is logged and checkpointed under that directory, restarts recover before binding,
//! and SIGINT/SIGTERM trigger a graceful shutdown: drain the engine, flush the WAL,
//! write a final checkpoint, exit 0.

use kpg_server::{serve, DurabilityConfig, ServerConfig};
use kpg_wire::DEFAULT_FRAME_LIMIT;

fn arg(name: &str, default: &str) -> String {
    let mut args = std::env::args();
    while let Some(current) = args.next() {
        if current == name {
            if let Some(value) = args.next() {
                return value;
            }
        }
    }
    default.to_string()
}

/// Set by the signal handler; polled by the main loop. Signal-handler-safe: a relaxed
/// store on an `AtomicBool` is async-signal-safe, and everything else (joining
/// threads, fsyncing the final checkpoint) happens on the main thread afterwards.
static STOP: kpg_sync::atomic::AtomicBool = kpg_sync::atomic::AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // `signal(2)` via a raw declaration: the libc symbol is always present on unix
    // and this avoids pulling in a crate for two lines of registration.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, kpg_sync::atomic::Ordering::Relaxed);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `signal` is declared with the signature libc actually exports on every
    // unix target (handler and return are plain function addresses, passed as
    // `usize`), and `on_signal` is `extern "C" fn(i32)`, the exact type `signal(2)`
    // invokes. The handler body is async-signal-safe: a relaxed atomic store and
    // nothing else — no allocation, locks, or FFI. Registration happens once, on the
    // main thread, before any other thread exists, so there is no data race on the
    // process signal table.
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() {
    let addr = arg("--addr", "127.0.0.1:6464");
    let workers: usize = arg("--workers", "1").parse().expect("--workers: a number");
    let frame_limit: usize = arg("--frame-limit", &DEFAULT_FRAME_LIMIT.to_string())
        .parse()
        .expect("--frame-limit: bytes");
    let durable_dir = arg("--durable-dir", "");
    let durability = if durable_dir.is_empty() {
        None
    } else {
        let mut config = DurabilityConfig::new(&durable_dir);
        config.checkpoint_every = arg("--checkpoint-every", &config.checkpoint_every.to_string())
            .parse()
            .expect("--checkpoint-every: a command count");
        config.segment_bytes = arg("--segment-bytes", &config.segment_bytes.to_string())
            .parse()
            .expect("--segment-bytes: bytes");
        Some(config)
    };
    let durable = durability.is_some();

    install_signal_handlers();
    let mut server = match serve(
        &addr,
        ServerConfig {
            workers,
            frame_limit,
            durability,
            ..ServerConfig::default()
        },
    ) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("kpg_server: failed to serve on {addr}: {error}");
            std::process::exit(1);
        }
    };
    println!(
        "kpg_server listening on {} ({} workers, {}-byte frame limit{})",
        server.local_addr(),
        workers,
        frame_limit,
        if durable { ", durable" } else { "" }
    );
    while !STOP.load(kpg_sync::atomic::Ordering::Relaxed) {
        kpg_sync::thread::sleep(std::time::Duration::from_millis(25));
    }
    // Graceful shutdown: stop accepting, disconnect clients, drain the engine (which
    // flushes any staged WAL records), then write the final checkpoint. The farewell
    // is best-effort — whoever launched us may have closed our stdout already, and a
    // broken pipe must not turn a clean shutdown into a panic.
    let degraded = server.health().degraded;
    server.shutdown();
    use std::io::Write;
    if degraded {
        // An honest exit: the WAL was failing when we stopped, so the flushed
        // prefix is all we can vouch for (close itself reports what it could not
        // flush). Still a clean exit — degraded mode is a survivable state.
        let _ = writeln!(
            std::io::stdout(),
            "kpg_server stopped while degraded (unflushed tail was never \
             acknowledged as durable)"
        );
    } else {
        let _ = writeln!(std::io::stdout(), "kpg_server stopped");
    }
}
