//! The client handle: a blocking, framed connection speaking the wire protocol.
//!
//! [`Client`] offers both a request/response surface (the `create_input` / `update` /
//! `advance` / `install` / `uninstall` / `query` helpers, each one round trip) and a
//! split [`Client::send`] / [`Client::receive`] surface for pipelining: the server
//! answers every frame in order, so a caller may send a batch of commands and then
//! collect the same number of responses. Keep at most
//! [`PIPELINE_DEPTH`](crate::PIPELINE_DEPTH) commands unanswered: past that depth the
//! server deliberately stops reading the connection (backpressure), and a client that
//! only sends can eventually deadlock against it once the kernel socket buffers fill.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use kpg_plan::{Command, Plan, Row};
use kpg_wire::{read_frame, write_frame, Frame, Response, WireCodec, DEFAULT_FRAME_LIMIT};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(io::Error),
    /// The server's bytes did not decode — a protocol bug or version skew, not a
    /// command failure.
    Protocol(String),
    /// A response frame exceeded this client's frame limit and its payload was
    /// discarded (frames are skipped, not buffered, past the limit). The answer is
    /// lost but the connection is still in sync; reissue the command on a client
    /// given a larger bound via [`Client::with_frame_limit`].
    ResponseTooLarge {
        /// The announced frame length.
        length: u64,
        /// This client's frame limit.
        limit: usize,
    },
    /// The server rejected the frame at the byte boundary (its `WireError` response).
    Wire(String),
    /// The engine rejected the command; `code` is the stable
    /// [`PlanError`](kpg_plan::PlanError) class.
    Plan {
        /// The stable error class (e.g. `"unknown-query"`).
        code: String,
        /// The human-readable description.
        message: String,
    },
    /// The operation exceeded this client's request timeout (see
    /// [`Client::with_request_timeout`]). A timed-out `receive` may have left the
    /// stream mid-frame — the connection is no longer known to be in sync, so drop
    /// the client and reconnect rather than retrying on it.
    TimedOut {
        /// The operation that timed out: `"send"` or `"receive"`.
        during: &'static str,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(error) => write!(f, "connection: {error}"),
            ClientError::Protocol(message) => write!(f, "protocol: {message}"),
            ClientError::ResponseTooLarge { length, limit } => write!(
                f,
                "a {length}-byte response exceeds this client's {limit}-byte frame \
                 limit and was discarded; retry with a larger Client::with_frame_limit"
            ),
            ClientError::Wire(message) => write!(f, "rejected at the wire: {message}"),
            ClientError::Plan { code, message } => write!(f, "plan error [{code}]: {message}"),
            ClientError::TimedOut { during } => write!(
                f,
                "{during} exceeded the request timeout; the connection may be out \
                 of sync — reconnect instead of retrying on it"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(error: io::Error) -> Self {
        ClientError::Io(error)
    }
}

impl ClientError {
    /// The stable plan-error code, if this is an engine rejection.
    pub fn plan_code(&self) -> Option<&str> {
        match self {
            ClientError::Plan { code, .. } => Some(code),
            _ => None,
        }
    }
}

/// A connection to a [`kpg_server`](crate) instance.
pub struct Client {
    stream: TcpStream,
    frame_limit: usize,
}

impl Client {
    /// Connects to a server. Blocks as long as the OS lets a connect block; prefer
    /// [`Client::connect_timeout`] when the server may be unreachable.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            frame_limit: DEFAULT_FRAME_LIMIT,
        })
    }

    /// Connects to a server, giving up after `timeout` per resolved address (a name
    /// resolving to several addresses tries each in turn).
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let mut last = None;
        for addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    return Ok(Client {
                        stream,
                        frame_limit: DEFAULT_FRAME_LIMIT,
                    });
                }
                Err(error) => last = Some(error),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "the address resolved to no addresses",
            )
        }))
    }

    /// Sets the largest response frame this client will buffer.
    pub fn with_frame_limit(mut self, frame_limit: usize) -> Client {
        self.frame_limit = frame_limit;
        self
    }

    /// Bounds how long any single [`send`](Client::send) or
    /// [`receive`](Client::receive) may block (both directions; `None` restores the
    /// default of blocking indefinitely). An expired timeout surfaces as
    /// [`ClientError::TimedOut`] — see its docs for why the connection should then
    /// be dropped. Errors if `timeout` is `Some(Duration::ZERO)`.
    pub fn with_request_timeout(self, timeout: Option<Duration>) -> io::Result<Client> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        Ok(self)
    }

    /// Sends one command without waiting for its response (pipelining). The server
    /// responds to every frame in order; pair each `send` with one [`Client::receive`].
    pub fn send(&mut self, command: &Command) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &command.encode())
            .map_err(|error| io_error("send", error))?;
        Ok(())
    }

    /// Receives the next response frame.
    pub fn receive(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.stream, self.frame_limit)
            .map_err(|error| io_error("receive", error))?
        {
            None => Err(ClientError::Protocol(
                "server closed the connection".to_string(),
            )),
            Some(Frame::TooLarge(length)) => Err(ClientError::ResponseTooLarge {
                length,
                limit: self.frame_limit,
            }),
            Some(Frame::Payload(payload)) => {
                Response::decode(&payload).map_err(|error| ClientError::Protocol(error.to_string()))
            }
        }
    }

    /// One round trip: send `command`, return its raw [`Response`].
    pub fn execute(&mut self, command: &Command) -> Result<Response, ClientError> {
        self.send(command)?;
        self.receive()
    }

    fn expect_ok(&mut self, command: &Command) -> Result<(), ClientError> {
        match self.execute(command)? {
            Response::Ok => Ok(()),
            other => Err(response_error(other)),
        }
    }

    /// Creates a shared input (see [`Command::CreateInput`]).
    pub fn create_input(
        &mut self,
        name: &str,
        key_arity: Option<usize>,
    ) -> Result<(), ClientError> {
        self.expect_ok(&Command::CreateInput {
            name: name.to_string(),
            key_arity,
        })
    }

    /// Introduces one update at the current epoch.
    pub fn update(&mut self, name: &str, row: Row, diff: isize) -> Result<(), ClientError> {
        self.expect_ok(&Command::Update {
            name: name.to_string(),
            row,
            diff,
        })
    }

    /// Advances every input to `epoch`.
    pub fn advance(&mut self, epoch: u64) -> Result<(), ClientError> {
        self.expect_ok(&Command::AdvanceTime { epoch })
    }

    /// Installs `plan` as the standing query `name`.
    pub fn install(&mut self, name: &str, plan: Plan, locals: &[&str]) -> Result<(), ClientError> {
        self.expect_ok(&Command::Install {
            name: name.to_string(),
            plan,
            locals: locals.iter().map(|local| local.to_string()).collect(),
        })
    }

    /// Retires the named query or shared input.
    pub fn uninstall(&mut self, name: &str) -> Result<(), ClientError> {
        self.expect_ok(&Command::Uninstall {
            name: name.to_string(),
        })
    }

    /// The named query's settled answer: consolidated `(row, multiplicity)` pairs,
    /// sorted by row. Large answers arrive as one frame: a result set whose encoding
    /// exceeds the client's frame limit is reported (and discarded) as
    /// [`ClientError::ResponseTooLarge`] — raise [`Client::with_frame_limit`] for
    /// queries expected to return tens of thousands of rows.
    pub fn query(&mut self, name: &str) -> Result<Vec<(Row, isize)>, ClientError> {
        match self.execute(&Command::Query {
            name: name.to_string(),
        })? {
            Response::QueryResults { rows, diffs } => Ok(rows
                .into_iter()
                .zip(diffs)
                .map(|(row, diff)| (row, diff as isize))
                .collect()),
            other => Err(response_error(other)),
        }
    }
}

/// Maps an I/O failure to the client error it implies: an expired socket timeout
/// (`WouldBlock` on unix, `TimedOut` elsewhere) becomes the typed
/// [`ClientError::TimedOut`]; anything else stays [`ClientError::Io`].
fn io_error(during: &'static str, error: io::Error) -> ClientError {
    match error.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::TimedOut { during },
        _ => ClientError::Io(error),
    }
}

/// Maps a non-success (or shape-mismatched) response to the client error it implies.
fn response_error(response: Response) -> ClientError {
    match response {
        Response::PlanError { code, message } => ClientError::Plan { code, message },
        Response::WireError { message } => ClientError::Wire(message),
        Response::Ok | Response::QueryResults { .. } => {
            ClientError::Protocol("response does not match the command sent".to_string())
        }
    }
}
