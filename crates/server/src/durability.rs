//! Durability: the command-log WAL, checkpoints, and crash recovery.
//!
//! A durable server persists exactly one thing: the sequencer's total command order.
//! Every non-`Query` command is appended to a `kpg_store` [`Wal`] *at sequencing time*
//! (under the same lock that orders it), buffered into a per-epoch batch and fsynced
//! when an `AdvanceTime` is sequenced — so an acknowledged epoch advance implies every
//! command at or before it is durable ("fsync-on-epoch" group commit). Because every
//! worker's [`Manager`](kpg_plan::Manager) is a deterministic function of that order,
//! replaying the log reproduces the server's state exactly.
//!
//! Replaying from the beginning of time would make restart cost proportional to
//! history, so the server checkpoints. A [`StateTracker`] follows command *completions*
//! (which occur in log order) and maintains the collapsed state the log prefix denotes:
//! live inputs, installed plans, and the sealed contents of every input with history
//! folded to a single epoch. When an `AdvanceTime` completes, the tracker state is
//! exactly the effect of WAL records up to that command's sequence number — a
//! consistent cut — and a clone of it can be written out by a background thread as:
//!
//! * a sorted-run file of `(input, row, diff)` contents (`ckpt-<id>.run`), and
//! * a [`Manifest`] naming the epoch, the WAL watermark, the inputs, and the installed
//!   plans, committed by atomic rename (the manifest *is* the checkpoint).
//!
//! WAL segments entirely below the committed watermark are then pruned. Recovery loads
//! the manifest (if any), synthesizes a *bootstrap* command prefix — create the inputs,
//! install the plans, feed the sealed contents back as updates, advance to the sealed
//! epoch — and replays the WAL tail past the watermark on top. A crash on either side
//! of the prune (manifest committed, segments not yet deleted) recovers identically:
//! the watermark makes the extra prefix inert.
//!
//! Recovered queries are owned by no client (their owners are gone); they persist
//! until explicitly uninstalled. `Query` commands are never logged — they read state
//! but do not define it.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use kpg_plan::{Command, Row};
use kpg_store::bytes::{get_bytes, get_u64, put_bytes, put_u64};
use kpg_store::run::DEFAULT_BLOCK_BYTES;
use kpg_store::{Manifest, RunReader, RunWriter, Wal};
use kpg_trace::StoreData;
use kpg_wire::WireCodec;

/// Where and how a server persists its command log and checkpoints.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// The directory holding WAL segments, run files, and the manifest.
    pub dir: PathBuf,
    /// WAL segments rotate once they exceed this size.
    pub segment_bytes: u64,
    /// Checkpoint when at least this many commands have been logged since the last
    /// checkpoint (evaluated at epoch boundaries, where a consistent cut exists).
    pub checkpoint_every: u64,
    /// The retry budget for runtime storage failures (group commit, checkpoints).
    /// Transient errors are retried with doubling backoff up to `retry.attempts`
    /// total tries; fatal errors (ENOSPC, corruption) escalate immediately. Past the
    /// budget the server enters degraded read-only mode.
    pub retry: kpg_store::RetryPolicy,
    /// How often the degraded-mode probe re-tries the WAL to self-heal back to
    /// read-write (it runs only while degraded).
    pub probe_interval: std::time::Duration,
}

impl DurabilityConfig {
    /// A configuration with default segment size (8 MiB), checkpoint cadence (every
    /// 4096 logged commands), retry budget (3 attempts, 1–20 ms backoff), and heal
    /// probe interval (25 ms).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            segment_bytes: 8 << 20,
            checkpoint_every: 4096,
            retry: kpg_store::RetryPolicy::default(),
            probe_interval: std::time::Duration::from_millis(25),
        }
    }
}

/// One installed query the tracker knows: its name, its private local inputs, and the
/// wire-encoded `Install` command that reproduces it.
#[derive(Clone, Debug)]
struct InstallRecord {
    name: String,
    locals: Vec<String>,
    encoded: Vec<u8>,
}

/// The collapsed state denoted by a prefix of the command log.
///
/// Applied only on *successful* command completions (failures have no effect, and
/// re-fail deterministically if replayed). Open-epoch updates are held aside and folded
/// into the sealed contents when an `AdvanceTime` completes; only then does the
/// watermark advance, so the tracker always describes a prefix that ends at an epoch
/// boundary — the only points where checkpoints are cut.
#[derive(Clone, Debug, Default)]
pub(crate) struct StateTracker {
    /// Sealed epoch: recovered state answers as of this epoch.
    epoch: u64,
    /// WAL sequence of the `AdvanceTime` that sealed `epoch`; `None` until one has.
    watermark: Option<u64>,
    /// Live global inputs and their key arity.
    inputs: BTreeMap<String, Option<usize>>,
    /// Installed queries, in completion order (which respects name dependencies).
    installs: Vec<InstallRecord>,
    /// Sealed contents per input (global and query-local), history collapsed.
    sealed: BTreeMap<String, BTreeMap<Row, isize>>,
    /// Updates of the open epoch, in completion order, not yet folded.
    open: Vec<(String, Row, isize)>,
    /// Commands logged since the last checkpoint was cut.
    since_checkpoint: u64,
}

impl StateTracker {
    /// Applies one successfully completed, WAL-logged command. Returns `true` iff the
    /// command sealed an epoch (the only moments a checkpoint may be cut).
    pub(crate) fn apply(&mut self, command: &Command, wal_seq: u64) -> bool {
        self.since_checkpoint += 1;
        match command {
            Command::CreateInput { name, key_arity } => {
                self.inputs.insert(name.clone(), *key_arity);
                false
            }
            Command::Update { name, row, diff } => {
                self.open.push((name.clone(), row.clone(), *diff));
                false
            }
            Command::AdvanceTime { epoch } => {
                for (name, row, diff) in self.open.drain(..) {
                    let contents = self.sealed.entry(name).or_default();
                    *contents.entry(row).or_insert(0) += diff;
                }
                self.sealed.retain(|_, contents| {
                    contents.retain(|_, diff| *diff != 0);
                    !contents.is_empty()
                });
                self.epoch = *epoch;
                self.watermark = Some(wal_seq);
                true
            }
            Command::Install {
                name,
                locals,
                plan: _,
            } => {
                self.installs.push(InstallRecord {
                    name: name.clone(),
                    locals: locals.clone(),
                    encoded: command.encode(),
                });
                false
            }
            Command::Uninstall { name } => {
                // The manager's namespace rule: a live query shadows a same-named
                // input. Mirror it so the tracker removes what the manager removed.
                if let Some(position) = self.installs.iter().position(|i| &i.name == name) {
                    let install = self.installs.remove(position);
                    for local in &install.locals {
                        self.sealed.remove(local);
                        self.open.retain(|(input, _, _)| input != local);
                    }
                } else {
                    self.inputs.remove(name);
                    self.sealed.remove(name);
                    self.open.retain(|(input, _, _)| input != name);
                }
                false
            }
            Command::Query { .. } => false,
        }
    }

    /// The WAL watermark of the last sealed epoch, if any epoch has sealed.
    pub(crate) fn watermark(&self) -> Option<u64> {
        self.watermark
    }

    /// Whether enough has been logged since the last checkpoint to cut a new one.
    pub(crate) fn checkpoint_due(&self, every: u64) -> bool {
        self.watermark.is_some() && self.since_checkpoint >= every
    }

    /// Notes that a checkpoint was cut from the current state.
    pub(crate) fn note_checkpoint(&mut self) {
        self.since_checkpoint = 0;
    }

    /// The command prefix that rebuilds this state through an ordinary manager:
    /// inputs, then installs (completion order preserves dependencies), then the
    /// sealed contents as updates (locals exist by then), then the epoch seal.
    pub(crate) fn bootstrap_commands(&self) -> Vec<Command> {
        let mut commands = Vec::new();
        for (name, key_arity) in &self.inputs {
            commands.push(Command::CreateInput {
                name: name.clone(),
                key_arity: *key_arity,
            });
        }
        for install in &self.installs {
            let command =
                Command::decode(&install.encoded).expect("tracker-held install bytes decode");
            commands.push(command);
        }
        for (name, contents) in &self.sealed {
            for (row, diff) in contents {
                commands.push(Command::Update {
                    name: name.clone(),
                    row: row.clone(),
                    diff: *diff,
                });
            }
        }
        if self.epoch > 0 {
            commands.push(Command::AdvanceTime { epoch: self.epoch });
        }
        commands
    }
}

const TAG_CHECKPOINT: &str = "ckpt";
const TAG_INPUT: &str = "input";
const TAG_INSTALL: &str = "install";
const TAG_RUN: &str = "run";

fn run_file_name(id: u64) -> String {
    format!("ckpt-{id:016x}.run")
}

/// Writes a checkpoint of `tracker` (a clone captured at an epoch seal) into `dir`:
/// the contents run file, then the manifest commit, then removal of superseded run
/// files. Returns the committed watermark so the caller can prune the WAL.
///
/// Panics are avoided throughout: any I/O failure leaves the previous checkpoint in
/// force (the manifest rename is the only commit point).
pub(crate) fn write_checkpoint(
    dir: &Path,
    tracker: &StateTracker,
    checkpoint_id: u64,
) -> io::Result<u64> {
    let watermark = tracker
        .watermark
        .expect("checkpoints are cut only at epoch seals");
    let run_name = run_file_name(checkpoint_id);
    let mut writer = RunWriter::create(dir.join(&run_name), DEFAULT_BLOCK_BYTES)?;
    let mut entry = Vec::new();
    for (name, contents) in &tracker.sealed {
        let mut key_boundary = true;
        for (row, diff) in contents {
            entry.clear();
            (name.clone(), row.clone(), *diff as i64).store(&mut entry);
            writer.push(&entry, key_boundary)?;
            key_boundary = false;
        }
    }
    writer.finish()?;

    let mut records = Vec::new();
    let mut id_payload = Vec::new();
    put_u64(&mut id_payload, checkpoint_id);
    records.push((TAG_CHECKPOINT.to_string(), id_payload));
    for (name, key_arity) in &tracker.inputs {
        let mut payload = Vec::new();
        put_bytes(&mut payload, name.as_bytes());
        match key_arity {
            None => payload.push(0),
            Some(arity) => {
                payload.push(1);
                put_u64(&mut payload, *arity as u64);
            }
        }
        records.push((TAG_INPUT.to_string(), payload));
    }
    for install in &tracker.installs {
        records.push((TAG_INSTALL.to_string(), install.encoded.clone()));
    }
    let mut run_payload = Vec::new();
    put_bytes(&mut run_payload, run_name.as_bytes());
    records.push((TAG_RUN.to_string(), run_payload));

    let manifest = Manifest {
        epoch: tracker.epoch,
        wal_watermark: watermark,
        records,
    };
    manifest.commit(dir)?;

    // The new manifest is committed; superseded run files are garbage. Removal
    // failures are harmless (they are re-collected by the next checkpoint).
    if let Ok(entries) = std::fs::read_dir(dir) {
        for dir_entry in entries.flatten() {
            let name = dir_entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("ckpt-") && name.ends_with(".run") && name != run_name {
                let _ = std::fs::remove_file(dir_entry.path());
            }
        }
    }
    Ok(watermark)
}

/// Rebuilds a [`StateTracker`] from a committed manifest and its run file.
fn tracker_from_manifest(dir: &Path, manifest: &Manifest) -> io::Result<(StateTracker, u64)> {
    let corrupt = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let mut tracker = StateTracker {
        epoch: manifest.epoch,
        watermark: Some(manifest.wal_watermark),
        ..StateTracker::default()
    };
    let mut checkpoint_id = 0u64;
    let mut run_name = None;
    for (tag, payload) in &manifest.records {
        match tag.as_str() {
            TAG_CHECKPOINT => {
                let mut pos = 0;
                checkpoint_id =
                    get_u64(payload, &mut pos).ok_or_else(|| corrupt("manifest ckpt id"))?;
            }
            TAG_INPUT => {
                let mut pos = 0;
                let name = get_bytes(payload, &mut pos)
                    .and_then(|bytes| String::from_utf8(bytes).ok())
                    .ok_or_else(|| corrupt("manifest input name"))?;
                let key_arity = match payload.get(pos) {
                    Some(0) => None,
                    Some(1) => {
                        pos += 1;
                        Some(
                            get_u64(payload, &mut pos).ok_or_else(|| corrupt("input arity"))?
                                as usize,
                        )
                    }
                    _ => return Err(corrupt("manifest input arity tag")),
                };
                tracker.inputs.insert(name, key_arity);
            }
            TAG_INSTALL => {
                let command =
                    Command::decode(payload).map_err(|_| corrupt("manifest install command"))?;
                let Command::Install { name, locals, .. } = &command else {
                    return Err(corrupt("manifest install is not an Install"));
                };
                tracker.installs.push(InstallRecord {
                    name: name.clone(),
                    locals: locals.clone(),
                    encoded: payload.clone(),
                });
            }
            TAG_RUN => {
                let mut pos = 0;
                let name = get_bytes(payload, &mut pos)
                    .and_then(|bytes| String::from_utf8(bytes).ok())
                    .ok_or_else(|| corrupt("manifest run name"))?;
                run_name = Some(name);
            }
            _ => {} // Unknown tags: forward compatibility, ignore.
        }
    }
    if let Some(run_name) = run_name {
        let mut reader = RunReader::open(dir.join(run_name))?;
        for block in 0..reader.block_count() {
            for entry in reader.read_block(block)? {
                let mut pos = 0;
                let (name, row, diff) = <(String, Row, i64)>::load(&entry, &mut pos)
                    .filter(|_| pos == entry.len())
                    .ok_or_else(|| corrupt("checkpoint run entry"))?;
                tracker
                    .sealed
                    .entry(name)
                    .or_default()
                    .insert(row, diff as isize);
            }
        }
    }
    Ok((tracker, checkpoint_id))
}

/// Everything recovery hands the sequencer: the synthesized bootstrap prefix, the WAL
/// tail to replay on top, the open WAL, and the tracker seed that makes subsequent
/// completions continue the story.
pub(crate) struct Recovered {
    /// Commands that rebuild the checkpointed state (not re-logged; already durable).
    pub bootstrap: Vec<Command>,
    /// WAL records past the watermark: `(wal_seq, command)`, replayed in order.
    pub tail: Vec<(u64, Command)>,
    /// The open WAL, positioned to append.
    pub wal: Wal,
    /// The next WAL sequence number to assign.
    pub next_wal_seq: u64,
    /// The tracker, seeded with the checkpointed state.
    pub tracker: StateTracker,
    /// The next checkpoint id to assign.
    pub next_checkpoint_id: u64,
}

/// Opens (or creates) the durable directory: loads the manifest, opens the WAL with
/// torn-tail repair, and splits recovered records at the watermark.
///
/// Records at or below the watermark are already reflected in the checkpoint and are
/// skipped — this is what makes a crash *between* manifest commit and WAL pruning
/// indistinguishable from one after it.
pub(crate) fn recover(config: &DurabilityConfig) -> io::Result<Recovered> {
    std::fs::create_dir_all(&config.dir)?;
    let manifest = Manifest::load(&config.dir)?;
    let (tracker, checkpoint_id) = match &manifest {
        Some(manifest) => {
            let (tracker, id) = tracker_from_manifest(&config.dir, manifest)?;
            (tracker, id)
        }
        None => (StateTracker::default(), 0),
    };
    let bootstrap = tracker.bootstrap_commands();
    let (wal, records) = Wal::open(&config.dir, config.segment_bytes)?;
    let watermark = tracker.watermark();
    let mut tail = Vec::new();
    let mut max_seq = watermark;
    for record in records {
        max_seq = Some(max_seq.map_or(record.seq, |seen| seen.max(record.seq)));
        if watermark.is_some_and(|mark| record.seq <= mark) {
            continue;
        }
        let command = Command::decode(&record.body).map_err(|error| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("WAL record {} undecodable: {error}", record.seq),
            )
        })?;
        tail.push((record.seq, command));
    }
    let next_wal_seq = max_seq.map_or(0, |seen| seen + 1);
    Ok(Recovered {
        bootstrap,
        tail,
        wal,
        next_wal_seq,
        tracker,
        next_checkpoint_id: checkpoint_id + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpg_plan::Value;

    fn temp_dir(tag: &str) -> PathBuf {
        use kpg_sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "kpg-durability-{tag}-{}-{unique}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn row(values: Vec<u64>) -> Row {
        Row::from(values.into_iter().map(Value::UInt).collect::<Vec<_>>())
    }

    #[test]
    fn tracker_folds_epochs_and_bootstraps() {
        let mut tracker = StateTracker::default();
        tracker.apply(
            &Command::CreateInput {
                name: "edges".into(),
                key_arity: Some(1),
            },
            0,
        );
        tracker.apply(
            &Command::Update {
                name: "edges".into(),
                row: row(vec![1, 2]),
                diff: 1,
            },
            1,
        );
        tracker.apply(
            &Command::Update {
                name: "edges".into(),
                row: row(vec![2, 3]),
                diff: 1,
            },
            2,
        );
        assert!(tracker.apply(&Command::AdvanceTime { epoch: 1 }, 3));
        // A retraction in the next epoch cancels (1,2) when folded.
        tracker.apply(
            &Command::Update {
                name: "edges".into(),
                row: row(vec![1, 2]),
                diff: -1,
            },
            4,
        );
        assert!(tracker.apply(&Command::AdvanceTime { epoch: 2 }, 5));
        assert_eq!(tracker.watermark(), Some(5));
        assert_eq!(tracker.epoch, 2);

        let bootstrap = tracker.bootstrap_commands();
        assert_eq!(bootstrap.len(), 3); // create, one surviving update, advance
        assert!(matches!(&bootstrap[0], Command::CreateInput { name, .. } if name == "edges"));
        assert!(
            matches!(&bootstrap[1], Command::Update { row: r, diff: 1, .. } if *r == row(vec![2, 3]))
        );
        assert!(matches!(&bootstrap[2], Command::AdvanceTime { epoch: 2 }));
    }

    #[test]
    fn tracker_uninstall_follows_namespace_shadowing() {
        let mut tracker = StateTracker::default();
        tracker.apply(
            &Command::CreateInput {
                name: "shared".into(),
                key_arity: None,
            },
            0,
        );
        // An uninstall with no same-named query removes the input.
        tracker.apply(
            &Command::Uninstall {
                name: "shared".into(),
            },
            1,
        );
        assert!(tracker.inputs.is_empty());
    }

    #[test]
    fn checkpoint_round_trips_through_manifest_and_run() {
        let dir = temp_dir("roundtrip");
        let mut tracker = StateTracker::default();
        tracker.apply(
            &Command::CreateInput {
                name: "edges".into(),
                key_arity: Some(1),
            },
            0,
        );
        for (source, target) in [(1u64, 2u64), (2, 3), (3, 1)] {
            tracker.apply(
                &Command::Update {
                    name: "edges".into(),
                    row: row(vec![source, target]),
                    diff: 1,
                },
                source,
            );
        }
        assert!(tracker.apply(&Command::AdvanceTime { epoch: 1 }, 7));

        let watermark = write_checkpoint(&dir, &tracker, 3).unwrap();
        assert_eq!(watermark, 7);

        let manifest = Manifest::load(&dir).unwrap().unwrap();
        let (recovered, checkpoint_id) = tracker_from_manifest(&dir, &manifest).unwrap();
        assert_eq!(checkpoint_id, 3);
        assert_eq!(recovered.epoch, 1);
        assert_eq!(recovered.watermark(), Some(7));
        assert_eq!(recovered.sealed, tracker.sealed);
        assert_eq!(recovered.inputs, tracker.inputs);

        // A second checkpoint removes the superseded run file.
        assert!(dir.join(run_file_name(3)).exists());
        write_checkpoint(&dir, &tracker, 4).unwrap();
        assert!(!dir.join(run_file_name(3)).exists());
        assert!(dir.join(run_file_name(4)).exists());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_skips_records_at_or_below_the_watermark() {
        let dir = temp_dir("watermark");
        // Write a WAL with five commands, checkpoint covering the first three.
        let (mut wal, records) = Wal::open(&dir, 1 << 20).unwrap();
        assert!(records.is_empty());
        let mut tracker = StateTracker::default();
        let commands = [
            Command::CreateInput {
                name: "edges".into(),
                key_arity: None,
            },
            Command::Update {
                name: "edges".into(),
                row: row(vec![1, 2]),
                diff: 1,
            },
            Command::AdvanceTime { epoch: 1 },
            Command::Update {
                name: "edges".into(),
                row: row(vec![2, 3]),
                diff: 1,
            },
            Command::AdvanceTime { epoch: 2 },
        ];
        for (seq, command) in commands.iter().enumerate() {
            wal.append(seq as u64, command.encode()).unwrap();
            if seq < 3 {
                tracker.apply(command, seq as u64);
            }
        }
        wal.sync().unwrap();
        drop(wal);
        write_checkpoint(&dir, &tracker, 1).unwrap();

        let recovered = recover(&DurabilityConfig::new(&dir)).unwrap();
        // Tail holds only seqs 3 and 4; bootstrap rebuilds the first three.
        assert_eq!(
            recovered
                .tail
                .iter()
                .map(|(seq, _)| *seq)
                .collect::<Vec<_>>(),
            vec![3, 4]
        );
        assert_eq!(recovered.next_wal_seq, 5);
        assert_eq!(recovered.next_checkpoint_id, 2);
        assert_eq!(recovered.bootstrap.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A checkpoint torn at any stage — the run-file write, the manifest temp-file
    /// write (torn or out of space), its fsync, or the final rename — returns an
    /// error and leaves the previous manifest in force; the identical retry then
    /// commits cleanly (the injector counters reset with each plan).
    #[cfg(feature = "faults")]
    #[test]
    fn torn_checkpoint_leaves_previous_manifest_in_force() {
        use kpg_store::io::faults::FaultPlan;
        let dir = temp_dir("torn-ckpt");
        let mut tracker = StateTracker::default();
        tracker.apply(
            &Command::CreateInput {
                name: "edges".into(),
                key_arity: None,
            },
            0,
        );
        tracker.apply(
            &Command::Update {
                name: "edges".into(),
                row: row(vec![1, 2]),
                diff: 1,
            },
            1,
        );
        assert!(tracker.apply(&Command::AdvanceTime { epoch: 1 }, 2));
        write_checkpoint(&dir, &tracker, 1).unwrap();
        let committed = Manifest::load(&dir).unwrap().unwrap();

        tracker.apply(
            &Command::Update {
                name: "edges".into(),
                row: row(vec![2, 3]),
                diff: 1,
            },
            3,
        );
        assert!(tracker.apply(&Command::AdvanceTime { epoch: 2 }, 4));
        for plan in [
            "write@1=short:5",  // the run file tears mid-write
            "write@1..=enospc", // the disk fills
            "fsync@1=eio",      // the run file cannot be made durable
            "rename@1=eio",     // the manifest commit point itself fails
        ] {
            let guard = FaultPlan::parse(plan).unwrap().scoped(&dir).install();
            assert!(
                write_checkpoint(&dir, &tracker, 2).is_err(),
                "{plan}: the checkpoint must fail"
            );
            drop(guard);
            assert_eq!(
                Manifest::load(&dir).unwrap().unwrap(),
                committed,
                "{plan}: the previous manifest must stay in force"
            );
            let recovered = recover(&DurabilityConfig::new(&dir)).unwrap();
            assert_eq!(
                recovered.tracker.watermark(),
                Some(2),
                "{plan}: recovery must see the old checkpoint"
            );
        }
        // The identical retry, with the disk healthy again, commits.
        write_checkpoint(&dir, &tracker, 2).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap().unwrap().epoch, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
