//! The sequencer core: one totally ordered command log, executed by every worker.
//!
//! PR 4's invariant is that a [`Manager`] is deterministic when every worker executes
//! the *same* command stream in the same order. A multi-client server therefore has
//! exactly one job at its heart: turn concurrently arriving per-client command streams
//! into one total order, and fan every worker's (identical) results back to the client
//! that asked. [`ServerCore`] is that job, with the network left out so tests can pin
//! its arbitration rules deterministically:
//!
//! * **Sequencing.** [`ServerCore::submit`] appends to the shared [`command
//!   log`](ServerCore::command_log) under one lock; the append order *is* the
//!   arbitration order for every name conflict. An `Uninstall` sequenced before a
//!   queued `Install` referencing the same input makes the install fail
//!   (`unknown-input`/`invalid-plan`); sequenced after it, the uninstall fails
//!   (`input-in-use`). Within one name, queries shadow inputs: `Uninstall` retires a
//!   live query named `n` before it would remove an input named `n` (the manager's
//!   namespace rule, pinned by `tests/arbitration.rs`). By default the log prunes the
//!   prefix every worker has consumed (a long-lived server holds O(in-flight)
//!   commands, not its full traffic history); [`ServerCore::with_history`] retains
//!   everything so tests can replay the merged log.
//! * **Execution.** Each worker thread runs [`ServerCore::worker_loop`]: a private
//!   `Manager`, the log consumed in order, [`Manager::settle`] before every `Query` so
//!   answers are deterministic.
//! * **Aggregation.** Workers deposit per-command results; the last deposit merges them
//!   (query rows union-summed across worker shards, everything else identical by
//!   determinism) into one wire [`Response`] and dispatches it to the origin client
//!   *under the same lock*, so each client's responses leave in its request order.
//! * **Ownership.** The sequencer tracks which client owns each *live* query. A name
//!   is claimed when its `Install` **completes successfully** (completions occur in
//!   log order, so claims are log-order consistent) — a failed install, duplicate or
//!   otherwise, never claims anything. Client disconnect enqueues `Uninstall`s for the
//!   queries that client owns, and nothing else: shared inputs outlive their creator
//!   (arrangements outlive queries — the paper's model), and another client's queries
//!   are untouchable. An install still in flight when its client departs is retired by
//!   the deposit that completes it.

use kpg_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use kpg_sync::thread::JoinHandle;
use kpg_sync::{mpsc, Arc, Condvar, Doorbell, Mutex};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;

use kpg_dataflow::{execute, Config, Worker};
use kpg_plan::{Command, Manager, PlanError, Response as PlanResponse, Row};
use kpg_store::{RetryPolicy, StoreError, Wal, WalBatch};
use kpg_wire::{Response, WireCodec};

use crate::durability::{recover, write_checkpoint, DurabilityConfig, StateTracker};
use crate::route::{ChannelRoute, ResponseRoute};

/// Identifies one connected client (or test-registered pseudo-client).
pub type ClientId = u64;

/// One entry of the total command order.
pub struct SequencedCommand {
    /// The position in the log (dense, from 0).
    pub seq: u64,
    /// The submitting client and its per-client request index, or `None` for commands
    /// the server generated itself (disconnect cleanup, recovery replay).
    pub origin: Option<(ClientId, u64)>,
    /// The command's WAL sequence number on a durable core. `None` for `Query`
    /// commands (reads are never logged) and for recovery-bootstrap entries (their
    /// effects are already in the checkpoint the tracker was seeded from); the state
    /// tracker follows exactly the completions that carry one.
    pub wal_seq: Option<u64>,
    /// The command.
    pub command: Command,
}

struct LogState {
    /// The sequence number of `entries[0]` (everything below it has been pruned).
    base: u64,
    entries: VecDeque<Arc<SequencedCommand>>,
    /// Per worker, the next sequence number it will consume: everything below every
    /// cursor is done everywhere and (unless `retain`) can be dropped.
    cursors: Vec<u64>,
    /// Keep consumed entries (history mode, for replay-based tests/introspection).
    retain: bool,
    closed: bool,
    /// The command-log WAL of a durable core (absent on in-memory cores). Appends
    /// happen under this lock — sequencing order *is* WAL order.
    wal: Option<Wal>,
    /// Commands logged since the last epoch fsync, buffered for group commit.
    wal_pending: WalBatch,
    /// The next WAL sequence number to assign.
    next_wal_seq: u64,
    /// Entries pre-loaded by recovery (bootstrap + WAL tail): the count every worker
    /// must consume before the server may accept connections.
    replay_len: u64,
    /// Threads blocked in [`ServerCore::await_replayed`] on the `consumed` condvar.
    /// Guarded by the log lock; lets the per-command cursor advance skip the
    /// condvar notify (a futex syscall) on the hot path — replay waiting happens
    /// once, at startup.
    replay_waiters: usize,
}

impl LogState {
    fn prune(&mut self) {
        if self.retain {
            return;
        }
        let consumed = self.cursors.iter().copied().min().unwrap_or(0);
        while self.base < consumed {
            if self.entries.pop_front().is_none() {
                break;
            }
            self.base += 1;
        }
    }
}

/// A command's merged outcome while deposits accumulate.
enum Outcome {
    /// A non-query success (identical on every worker).
    Plain,
    /// Query rows, union-summed across the workers' output shards.
    Rows(BTreeMap<Row, isize>),
    /// The deterministic failure (identical on every worker; first deposit kept).
    Failed(PlanError),
}

struct PendingResponse {
    remaining: usize,
    outcome: Outcome,
}

/// Client-facing state: response routing, response aggregation, and name ownership.
/// One lock, so dispatch order equals completion order equals per-client request order.
struct ClientState {
    /// Live query name → owning client. Written only when an `Install` or `Uninstall`
    /// *completes* (and at submit for `Uninstall`, which can only free a name early),
    /// so the map never credits a failed install.
    owners: HashMap<String, ClientId>,
    /// Per-seq aggregation of worker deposits.
    pending: HashMap<u64, PendingResponse>,
    /// Where each client's responses go — a per-client channel
    /// ([`ChannelRoute`]) or the reactor's shared queue.
    routes: HashMap<ClientId, Arc<dyn ResponseRoute>>,
}

/// A queued checkpoint: a consistent tracker snapshot and the id to write it under.
type CheckpointJob = (StateTracker, u64);

/// The durable half of a [`ServerCore`]: the state tracker that follows completions,
/// the background checkpoint writer it feeds, and the heal probe that retries the
/// WAL while the core is degraded.
struct DurableState {
    config: DurabilityConfig,
    tracker: Mutex<StateTracker>,
    next_checkpoint_id: AtomicU64,
    checkpoint_tx: Mutex<Option<mpsc::Sender<CheckpointJob>>>,
    checkpoint_thread: Mutex<Option<JoinHandle<()>>>,
    probe_thread: Mutex<Option<JoinHandle<()>>>,
}

/// The core's storage-health counters. Atomics, not a lock: the hot submit path
/// reads `degraded` on every mutating command.
struct HealthState {
    /// Set while the core rejects mutating commands because it cannot persist them.
    degraded: AtomicBool,
    /// Consecutive failed WAL flush attempts (group commit and heal probe); reset to
    /// zero by any successful flush.
    wal_failures: AtomicU64,
    /// Consecutive failed checkpoint writes; reset to zero by a success.
    checkpoint_failures: AtomicU64,
    /// Times the core entered degraded read-only mode.
    degraded_transitions: AtomicU64,
    /// Times the core healed (left degraded mode because writes succeed again).
    heals: AtomicU64,
}

impl HealthState {
    fn new() -> Self {
        HealthState {
            degraded: AtomicBool::new(false),
            wal_failures: AtomicU64::new(0),
            checkpoint_failures: AtomicU64::new(0),
            degraded_transitions: AtomicU64::new(0),
            heals: AtomicU64::new(0),
        }
    }
}

/// A point-in-time copy of the core's storage health — see [`ServerCore::health`].
///
/// On an in-memory core every field is zero forever. On a durable core `degraded`
/// means mutating commands are currently answered with the
/// `degraded-read-only` plan error while queries keep serving from memory; the
/// counter fields let tests and operators distinguish "never failed" from
/// "failed and healed".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Mutations are being rejected because the WAL (or a checkpoint) failed past
    /// its retry budget and the probe has not yet seen a write succeed.
    pub degraded: bool,
    /// Consecutive failed WAL flush attempts; zero after any successful flush.
    pub wal_failures: u64,
    /// Consecutive failed checkpoint writes; zero after any successful checkpoint.
    pub checkpoint_failures: u64,
    /// Times the core has entered degraded read-only mode.
    pub degraded_transitions: u64,
    /// Times the core has healed and resumed accepting mutations.
    pub heals: u64,
}

/// The network-free server: sequencer, worker pool driver, response aggregator. See
/// the module docs for the architecture; [`crate::serve`] wraps it in TCP.
pub struct ServerCore {
    workers: usize,
    log: Mutex<LogState>,
    /// Rung once per append — or once per *batch* on the
    /// [`ServerCore::submit_batch`] path — to wake workers parked in
    /// [`ServerCore::next_command`]. An epoch-counting doorbell instead of a
    /// condvar: ringing is one atomic on the fast path (no lock, no syscall when
    /// no worker is parked), and the snapshot/check/wait protocol it enforces is
    /// model-checked in `kpg_sync`'s `model_doorbell` tests.
    grown: Doorbell,
    /// Signalled whenever a worker advances its cursor; [`ServerCore::await_replayed`]
    /// waits on it for recovery replay to drain before connections are accepted.
    consumed: Condvar,
    clients: Mutex<ClientState>,
    next_client: AtomicU64,
    durable: Option<DurableState>,
    health: HealthState,
}

impl ServerCore {
    /// A core that will drive `workers` dataflow workers, pruning log entries once
    /// every worker has consumed them (the long-lived-server default).
    pub fn new(workers: usize) -> Self {
        Self::build(workers, false)
    }

    /// Like [`ServerCore::new`], but the log retains every command ever sequenced, so
    /// [`ServerCore::command_log`] is the complete replayable history.
    pub fn with_history(workers: usize) -> Self {
        Self::build(workers, true)
    }

    /// A durable core: recovers the state persisted in `config.dir` (if any) and
    /// pre-loads the log with the recovery replay — the synthesized checkpoint
    /// bootstrap followed by the WAL tail. Callers should [`ServerCore::start`] the
    /// engine and then [`ServerCore::await_replayed`] before exposing the core to
    /// clients, so recovered state is settled before the first live command.
    pub fn durable(workers: usize, retain: bool, config: DurabilityConfig) -> io::Result<Self> {
        let recovered = recover(&config)?;
        let mut core = Self::build(workers, retain);
        let log = core.log.get_mut().expect("command log poisoned");
        let mut seq = 0u64;
        for command in recovered.bootstrap {
            log.entries.push_back(Arc::new(SequencedCommand {
                seq,
                origin: None,
                wal_seq: None,
                command,
            }));
            seq += 1;
        }
        for (wal_seq, command) in recovered.tail {
            log.entries.push_back(Arc::new(SequencedCommand {
                seq,
                origin: None,
                wal_seq: Some(wal_seq),
                command,
            }));
            seq += 1;
        }
        log.replay_len = seq;
        log.wal = Some(recovered.wal);
        log.next_wal_seq = recovered.next_wal_seq;
        core.durable = Some(DurableState {
            config,
            tracker: Mutex::new(recovered.tracker),
            next_checkpoint_id: AtomicU64::new(recovered.next_checkpoint_id),
            checkpoint_tx: Mutex::new(None),
            checkpoint_thread: Mutex::new(None),
            probe_thread: Mutex::new(None),
        });
        Ok(core)
    }

    fn build(workers: usize, retain: bool) -> Self {
        let workers = workers.max(1);
        ServerCore {
            workers,
            log: Mutex::new(LogState {
                base: 0,
                entries: VecDeque::new(),
                cursors: vec![0; workers],
                retain,
                closed: false,
                wal: None,
                wal_pending: WalBatch::new(),
                next_wal_seq: 0,
                replay_len: 0,
                replay_waiters: 0,
            }),
            grown: Doorbell::new(),
            consumed: Condvar::new(),
            clients: Mutex::new(ClientState {
                owners: HashMap::new(),
                pending: HashMap::new(),
                routes: HashMap::new(),
            }),
            next_client: AtomicU64::new(0),
            durable: None,
            health: HealthState::new(),
        }
    }

    /// The number of dataflow workers this core drives.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Starts the worker pool on a background thread. The thread exits once
    /// [`ServerCore::close`] is called and the log is drained. On a durable core this
    /// also starts the background checkpoint writer.
    pub fn start(self: &Arc<Self>) -> kpg_sync::thread::JoinHandle<()> {
        if let Some(durable) = &self.durable {
            let (sender, receiver) = mpsc::channel::<CheckpointJob>();
            *durable
                .checkpoint_tx
                .lock()
                .expect("checkpoint sender poisoned") = Some(sender);
            // Weak: the writer must not keep a closed core (and its WAL) alive.
            let weak = Arc::downgrade(self);
            let dir = durable.config.dir.clone();
            let retry = durable.config.retry;
            let thread = kpg_sync::thread::Builder::new()
                .name("kpg-server-checkpoint".to_string())
                .spawn(move || {
                    while let Ok((snapshot, id)) = receiver.recv() {
                        let Some(core) = weak.upgrade() else { break };
                        match retry
                            .run("checkpoint write", || write_checkpoint(&dir, &snapshot, id))
                        {
                            Ok(watermark) => {
                                core.health.checkpoint_failures.store(0, Ordering::Relaxed);
                                core.prune_wal(watermark);
                            }
                            // A failed checkpoint leaves the previous one in force; the
                            // WAL keeps everything and recovery stays correct. But a disk
                            // that cannot take checkpoints cannot bound recovery time (or
                            // likely take WAL writes for long), so degrade: stop
                            // acknowledging new mutations until the probe sees writes
                            // succeed again.
                            Err(error) => {
                                let failures = core
                                    .health
                                    .checkpoint_failures
                                    .fetch_add(1, Ordering::Relaxed)
                                    + 1;
                                eprintln!(
                                    "kpg_server: checkpoint {id} failed \
                                     ({failures} consecutive): {error}"
                                );
                                core.enter_degraded("checkpointing", &error);
                            }
                        }
                    }
                })
                .expect("failed to spawn the checkpoint thread");
            *durable
                .checkpoint_thread
                .lock()
                .expect("checkpoint thread poisoned") = Some(thread);
            // The heal probe: while the core is degraded, periodically retry the WAL
            // flush; the first success flips the core back to accepting mutations.
            // Idle (a single flag load per tick) when healthy.
            let weak = Arc::downgrade(self);
            let interval = durable.config.probe_interval;
            let probe = kpg_sync::thread::Builder::new()
                .name("kpg-server-heal-probe".to_string())
                .spawn(move || loop {
                    kpg_sync::thread::sleep(interval);
                    let Some(core) = weak.upgrade() else { break };
                    if core.log.lock().expect("command log poisoned").closed {
                        break;
                    }
                    if core.health.degraded.load(Ordering::SeqCst) {
                        core.try_heal();
                    }
                })
                .expect("failed to spawn the WAL heal probe");
            *durable.probe_thread.lock().expect("probe thread poisoned") = Some(probe);
        }
        let core = Arc::clone(self);
        kpg_sync::thread::Builder::new()
            .name("kpg-server-engine".to_string())
            .spawn(move || {
                let workers = core.workers;
                execute(Config::new(workers), move |worker| {
                    core.worker_loop(worker);
                });
            })
            .expect("failed to spawn the server engine thread")
    }

    /// Blocks until every worker has consumed the recovery replay (the bootstrap and
    /// WAL-tail entries pre-loaded by [`ServerCore::durable`]). A no-op on in-memory
    /// cores. Serving connections only after this returns guarantees recovered state
    /// is fully rebuilt before the first live command sequences behind it.
    pub fn await_replayed(&self) {
        let mut log = self.log.lock().expect("command log poisoned");
        let target = log.replay_len;
        log.replay_waiters += 1;
        while !log.closed && log.cursors.iter().copied().min().unwrap_or(0) < target {
            log = self.consumed.wait(log).expect("command log poisoned");
        }
        log.replay_waiters -= 1;
    }

    /// Drops WAL segments wholly covered by a committed checkpoint.
    fn prune_wal(&self, watermark: u64) {
        let mut log = self.log.lock().expect("command log poisoned");
        if let Some(wal) = log.wal.as_mut() {
            // Pruning mutates the segment list, which only the sequencing lock
            // guards; the directory fsync it implies is accepted under the lock
            // because pruning is rare (once per checkpoint).
            let _fsync = kpg_sync::blocking::allow_blocking(
                "WAL pruning fsyncs the directory under the sequencing lock",
            );
            // Failure to prune is not failure to persist: the segments are retried
            // by the next checkpoint.
            let _ = wal.prune_below(watermark + 1);
        }
    }

    /// A point-in-time copy of the core's storage health. All zeros on an in-memory
    /// core (it has no storage to fail).
    pub fn health(&self) -> HealthSnapshot {
        HealthSnapshot {
            degraded: self.health.degraded.load(Ordering::SeqCst),
            wal_failures: self.health.wal_failures.load(Ordering::Relaxed),
            checkpoint_failures: self.health.checkpoint_failures.load(Ordering::Relaxed),
            degraded_transitions: self.health.degraded_transitions.load(Ordering::Relaxed),
            heals: self.health.heals.load(Ordering::Relaxed),
        }
    }

    /// Whether the core is currently rejecting mutating commands.
    pub fn is_degraded(&self) -> bool {
        self.health.degraded.load(Ordering::SeqCst)
    }

    /// The runtime retry budget (the config's on a durable core).
    fn retry_policy(&self) -> RetryPolicy {
        self.durable
            .as_ref()
            .map_or_else(RetryPolicy::default, |durable| durable.config.retry)
    }

    /// Flips the core into degraded read-only mode (idempotent; counts and logs the
    /// transition once).
    fn enter_degraded(&self, cause: &str, error: &StoreError) {
        if !self.health.degraded.swap(true, Ordering::SeqCst) {
            self.health
                .degraded_transitions
                .fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "kpg_server: {cause}: {error}; entering degraded read-only mode \
                 (mutations rejected, queries still served)"
            );
        }
    }

    /// One heal-probe attempt: flush the staged WAL batch (plus an fsync even when
    /// empty, so success genuinely demonstrates a writable disk) and, if it
    /// succeeds, resume accepting mutations.
    fn try_heal(&self) {
        let mut log = self.log.lock().expect("command log poisoned");
        if log.closed {
            return;
        }
        let state = &mut *log;
        if state.wal.is_none() {
            return;
        }
        let _fsync = kpg_sync::blocking::allow_blocking(
            "the heal probe retries the WAL flush under the sequencing lock",
        );
        // Single attempt per tick: the probe *is* the retry loop, and backing off
        // under the sequencing lock would stall queries that still work.
        match Self::group_commit(state, RetryPolicy::none()) {
            Ok(()) => {
                drop(log);
                self.health.wal_failures.store(0, Ordering::Relaxed);
                if self.health.degraded.swap(false, Ordering::SeqCst) {
                    self.health.heals.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "kpg_server: WAL writes succeed again; leaving degraded \
                         read-only mode"
                    );
                }
            }
            Err(_) => {
                self.health.wal_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Flushes every outstanding WAL record and writes a final checkpoint. Called by
    /// the owner after the engine has drained (so the tracker is final); a no-op on
    /// in-memory cores. Idempotent.
    pub fn final_checkpoint(&self) {
        let Some(durable) = &self.durable else {
            return;
        };
        // Stop the background writer first so the final checkpoint cannot race or
        // be superseded by a queued (older) snapshot.
        let sender = durable
            .checkpoint_tx
            .lock()
            .expect("checkpoint sender poisoned")
            .take();
        drop(sender);
        let thread = durable
            .checkpoint_thread
            .lock()
            .expect("checkpoint thread poisoned")
            .take();
        if let Some(thread) = thread {
            let _ = thread.join();
        }
        // The probe notices the closed log on its next tick and exits.
        let probe = durable
            .probe_thread
            .lock()
            .expect("probe thread poisoned")
            .take();
        if let Some(probe) = probe {
            let _ = probe.join();
        }
        let tracker = durable.tracker.lock().expect("state tracker poisoned");
        if tracker.watermark().is_some() {
            let id = durable.next_checkpoint_id.fetch_add(1, Ordering::Relaxed);
            // The engine has drained and the background writer is joined, so
            // holding the tracker lock across the checkpoint write contends with
            // nothing; taking it keeps the snapshot borrow simple.
            let _fsync = kpg_sync::blocking::allow_blocking(
                "final checkpoint writes under the tracker lock after drain",
            );
            let result = durable.config.retry.run("final checkpoint", || {
                write_checkpoint(&durable.config.dir, &tracker, id)
            });
            match result {
                Ok(watermark) => self.prune_wal(watermark),
                // Not fatal for this shutdown: the WAL was flushed by `close`, so
                // recovery replays it against the previous checkpoint instead.
                Err(error) => eprintln!("kpg_server: final checkpoint failed: {error}"),
            }
        }
    }

    /// Registers a client: allocates its id and the channel its responses arrive on,
    /// tagged with the per-client request index they answer.
    pub fn register_client(&self) -> (ClientId, mpsc::Receiver<(u64, Response)>) {
        let (sender, receiver) = mpsc::channel();
        let client = self.register_client_routed(Arc::new(ChannelRoute::new(sender)));
        (client, receiver)
    }

    /// Registers a client whose responses go through `route` instead of a
    /// dedicated channel — the reactor registers every socket-backed client with
    /// a clone of its shared queue route.
    pub fn register_client_routed(&self, route: Arc<dyn ResponseRoute>) -> ClientId {
        let client = self.next_client.fetch_add(1, Ordering::Relaxed);
        self.clients
            .lock()
            .expect("client state poisoned")
            .routes
            .insert(client, route);
        client
    }

    /// Appends `command` from `client` (answering its request number `reply`) to the
    /// log. Sequencing happens under the client-state lock, so the log order *is* the
    /// arbitration order.
    ///
    /// Returns the sequence number, or `u64::MAX` if the command was not sequenced —
    /// the log is closed, or the core is in degraded read-only mode and the command
    /// mutates (it was answered with the `degraded-read-only` plan error instead).
    pub fn submit(&self, client: ClientId, reply: u64, command: Command) -> u64 {
        let mut clients = self.clients.lock().expect("client state poisoned");
        // Degraded read-only mode: a core that cannot persist mutations refuses them
        // up front rather than acknowledging work it may lose. Queries pass — the
        // in-memory state is intact and reads were never logged anyway. Checked
        // before the Uninstall-at-submit ownership edit below, so a rejected
        // uninstall leaves ownership untouched.
        if !matches!(command, Command::Query { .. }) && self.is_degraded() {
            Self::reject_degraded(&clients, client, reply);
            return u64::MAX;
        }
        // An Uninstall frees the name *at submit*: once one is sequenced, no
        // disconnect between now and its execution may still count the query as owned
        // (a cleanup Uninstall sequenced behind it would fall through to a same-named
        // input). Install claims happen at completion, never here — see `deposit`.
        if let Command::Uninstall { name } = &command {
            clients.owners.remove(name);
        }
        match self.append(Some((client, reply)), command) {
            Ok(seq) => seq,
            // The group commit for this epoch failed past its retry budget: the
            // advance was unstaged and never sequenced, and the core is now
            // degraded. Answer the client honestly instead of acknowledging.
            Err(()) => {
                Self::reject_degraded(&clients, client, reply);
                u64::MAX
            }
        }
    }

    /// Answers `client`'s request `reply` with the degraded-read-only plan error,
    /// without sequencing anything.
    fn reject_degraded(clients: &ClientState, client: ClientId, reply: u64) {
        if let Some(route) = clients.routes.get(&client) {
            let error = PlanError::DegradedReadOnly;
            route.deliver(
                client,
                reply,
                Response::PlanError {
                    code: error.code().to_string(),
                    message: error.to_string(),
                },
            );
        }
    }

    /// Responds to `client`'s request `reply` with a wire-level error, without touching
    /// the log (the command never existed as far as the engine is concerned).
    pub fn respond_wire_error(&self, client: ClientId, reply: u64, message: String) {
        let clients = self.clients.lock().expect("client state poisoned");
        if let Some(route) = clients.routes.get(&client) {
            route.deliver(client, reply, Response::WireError { message });
        }
    }

    /// Removes a departed client: unregisters its response route and enqueues
    /// `Uninstall`s for the queries it owns — and for nothing else. Ownership holds
    /// only successfully installed queries, so the cleanup can never remove another
    /// client's query or a shared input. Route removal and the cleanup appends happen
    /// under the same lock that sequences live submissions, so a racing `Install` of a
    /// just-freed name cannot slip in between; an install of this client still in
    /// flight is retired by the deposit that completes it (the route is already gone).
    pub fn disconnect(&self, client: ClientId) {
        let mut clients = self.clients.lock().expect("client state poisoned");
        clients.routes.remove(&client);
        let mut owned: Vec<String> = clients
            .owners
            .iter()
            .filter(|(_, owner)| **owner == client)
            .map(|(name, _)| name.clone())
            .collect();
        owned.sort_unstable();
        for name in &owned {
            clients.owners.remove(name);
        }
        for name in owned {
            // An Uninstall stages without flushing, so this cannot fail (only an
            // AdvanceTime's group commit can): the cleanup lands even while degraded.
            let _ = self.append(None, Command::Uninstall { name });
        }
    }

    /// Closes the log: workers drain what is already sequenced, then exit. Submissions
    /// after close are ignored. On a durable core the group-commit buffer is flushed
    /// and fsynced (best-effort — a disk still failing at shutdown loses only records
    /// that were never acknowledged as durable), so an orderly shutdown on a healthy
    /// disk loses nothing, epoch boundary or not.
    pub fn close(&self) {
        let mut log = self.log.lock().expect("command log poisoned");
        let state = &mut *log;
        if state.wal.is_some() {
            // Deliberate fsync under the sequencing lock: close must flush the
            // group-commit buffer before any later submission could observe the
            // closed flag, or the tail of the log would be acknowledged-but-lost.
            let _fsync = kpg_sync::blocking::allow_blocking(
                "close flushes the WAL under the sequencing lock",
            );
            if let Err(error) = Self::group_commit(state, self.retry_policy()) {
                // Exit without claiming durability: everything in the flushed
                // prefix is safe, and nothing past it was ever acknowledged as
                // durable (epochs only ack after their fsync).
                eprintln!(
                    "kpg_server: shutdown could not flush {} staged WAL record(s); \
                     they were never acknowledged as durable: {error}",
                    state.wal_pending.len()
                );
            }
        }
        state.closed = true;
        drop(log);
        self.grown.ring();
        self.consumed.notify_all();
    }

    /// A snapshot of the retained command log, in execution order. On a core built
    /// with [`ServerCore::with_history`] this is the complete stream a single
    /// `Manager` could replay to reproduce the server's state (the determinism the
    /// session tests check); on a default core, entries every worker has consumed are
    /// pruned and absent.
    pub fn command_log(&self) -> Vec<Command> {
        self.log
            .lock()
            .expect("command log poisoned")
            .entries
            .iter()
            .map(|entry| entry.command.clone())
            .collect()
    }

    /// How many log entries are currently held in memory (after pruning).
    pub fn retained_log_len(&self) -> usize {
        self.log.lock().expect("command log poisoned").entries.len()
    }

    /// Sequences `command`, staging it in the WAL batch on a durable core. `Err(())`
    /// means an `AdvanceTime`'s group commit failed past its retry budget: the
    /// advance was unstaged, nothing was sequenced, and the core is now degraded —
    /// only `AdvanceTime` can fail here. `Ok(u64::MAX)` means the log was closed.
    fn append(&self, origin: Option<(ClientId, u64)>, command: Command) -> Result<u64, ()> {
        let mut log = self.log.lock().expect("command log poisoned");
        if log.closed {
            return Ok(u64::MAX);
        }
        let result = self.append_locked(&mut log, origin, command);
        drop(log);
        if result.is_ok() {
            self.grown.ring();
        }
        result
    }

    /// The body of [`ServerCore::append`], under an already-held log lock and
    /// *without* ringing the worker doorbell — the batch submission path appends
    /// many commands under one lock acquisition and rings once for all of them.
    /// The caller must have checked `closed`.
    fn append_locked(
        &self,
        log: &mut LogState,
        origin: Option<(ClientId, u64)>,
        command: Command,
    ) -> Result<u64, ()> {
        let state = log;
        // Durable path: log every state-defining command (reads are not state) under
        // the sequencing lock, so WAL order is log order. Records accumulate in the
        // group-commit buffer; sequencing an `AdvanceTime` commits and fsyncs the
        // whole epoch, which is why an acknowledged epoch advance implies durability
        // of everything at or before it. A durable server that cannot write its log
        // must not acknowledge an epoch: the advance is rejected, its record
        // unstaged, and the core degrades to read-only until the probe heals it.
        // Earlier records of the unfinished epoch stay staged — their commands were
        // acknowledged only as sequenced, never as durable, and the heal probe (or
        // the next successful advance) flushes them.
        let wal_seq = if state.wal.is_some() && !matches!(command, Command::Query { .. }) {
            let wal_seq = state.next_wal_seq;
            state.wal_pending.put(wal_seq, command.encode());
            if matches!(command, Command::AdvanceTime { .. }) {
                // Deliberate fsync under the sequencing lock: WAL order must
                // equal log order, so the epoch's group commit happens before
                // any later command can sequence. This is the group-commit
                // protocol, not an accident — hence the explicit opt-in.
                let _fsync = kpg_sync::blocking::allow_blocking(
                    "group commit fsyncs the epoch under the sequencing lock",
                );
                // While degraded, don't even try: the probe owns retries, and a
                // failing disk under the sequencing lock would stall every client.
                // (Reached when the checkpoint thread degraded the core after
                // submit's up-front check passed.)
                if self.is_degraded() {
                    state.wal_pending.remove(wal_seq);
                    return Err(());
                }
                match Self::group_commit(state, self.retry_policy()) {
                    Ok(()) => self.health.wal_failures.store(0, Ordering::Relaxed),
                    Err(error) => {
                        state.wal_pending.remove(wal_seq);
                        self.health.wal_failures.fetch_add(1, Ordering::Relaxed);
                        self.enter_degraded("WAL group commit", &error);
                        return Err(());
                    }
                }
            }
            state.next_wal_seq = wal_seq + 1;
            Some(wal_seq)
        } else {
            None
        };
        let seq = state.base + state.entries.len() as u64;
        state.entries.push_back(Arc::new(SequencedCommand {
            seq,
            origin,
            wal_seq,
            command,
        }));
        Ok(seq)
    }

    /// Sequences a whole batch of client commands under **one** acquisition of
    /// each lock: one client-state pass (degraded checks and the
    /// Uninstall-at-submit ownership edits), one log pass (WAL staging for every
    /// command, group commit wherever an `AdvanceTime` falls), and one doorbell
    /// ring for the entire batch. This is the reactor's submission path: however
    /// many connections became readable in one wakeup, the sequencer lock is
    /// taken once, not once per command — while the arbitration rules stay
    /// *identical* to per-command [`ServerCore::submit`], because batch order is
    /// append order is arbitration order.
    ///
    /// Degradation mid-batch behaves exactly like degradation mid-stream: once a
    /// group commit fails, every later mutation in the batch is rejected with
    /// `degraded-read-only` (queries still pass). Rejections are delivered after
    /// the log lock is released, in batch order, which precedes any execution
    /// response for later commands (workers cannot deposit while this thread
    /// holds the client-state lock). Returns the number of commands sequenced.
    pub fn submit_batch(&self, batch: impl IntoIterator<Item = (ClientId, u64, Command)>) -> usize {
        let mut clients = self.clients.lock().expect("client state poisoned");
        let mut log = self.log.lock().expect("command log poisoned");
        let mut rejected: Vec<(ClientId, u64)> = Vec::new();
        let mut sequenced = 0;
        for (client, reply, command) in batch {
            // Submissions after close are ignored, as on the single-command path.
            if log.closed {
                continue;
            }
            if !matches!(command, Command::Query { .. }) && self.is_degraded() {
                rejected.push((client, reply));
                continue;
            }
            if let Command::Uninstall { name } = &command {
                clients.owners.remove(name);
            }
            match self.append_locked(&mut log, Some((client, reply)), command) {
                Ok(_) => sequenced += 1,
                Err(()) => rejected.push((client, reply)),
            }
        }
        drop(log);
        for (client, reply) in rejected {
            Self::reject_degraded(&clients, client, reply);
        }
        drop(clients);
        if sequenced > 0 {
            self.grown.ring();
        }
        sequenced
    }

    /// Commits and fsyncs the staged WAL batch, clearing it on success. On failure
    /// the batch stays staged so a later attempt can retry — the WAL repairs itself
    /// back to its synced prefix first, so retries never duplicate records.
    fn group_commit(state: &mut LogState, policy: RetryPolicy) -> Result<(), StoreError> {
        let wal = state.wal.as_mut().expect("group commit requires a WAL");
        let pending = &state.wal_pending;
        policy.run("WAL group commit", || {
            wal.commit(pending)?;
            wal.sync()
        })?;
        state.wal_pending = WalBatch::new();
        Ok(())
    }

    /// The log entry at position `from`, blocking until it exists; records that
    /// `worker` has consumed everything below `from` (and prunes what everyone has).
    /// `None` once the log is closed and drained.
    fn next_command(&self, worker: usize, from: u64) -> Option<Arc<SequencedCommand>> {
        {
            let mut log = self.log.lock().expect("command log poisoned");
            log.cursors[worker] = from;
            // Only `await_replayed` ever waits on `consumed`, and only during
            // startup recovery — skip the notify syscall on every later command.
            if log.replay_waiters > 0 {
                self.consumed.notify_all();
            }
            log.prune();
            // Fast path: during a drained batch the next entry is already
            // sequenced — return it under the lock we hold instead of paying a
            // second acquisition (and an epoch load) per command.
            let index = from.checked_sub(log.base).expect("cursor below log base") as usize;
            if let Some(entry) = log.entries.get(index) {
                return Some(Arc::clone(entry));
            }
            if log.closed {
                return None;
            }
        }
        // The doorbell discipline (model-checked in kpg_sync): snapshot the
        // epoch, check the log, park only if nothing rang since the snapshot. A
        // ring between the check and the park advances the epoch past `seen`, so
        // `wait` returns immediately — no lost wakeup. Unlike the condvar this
        // replaces, waiting holds no lock, so a batch append never contends with
        // parked workers.
        loop {
            let seen = self.grown.epoch();
            {
                let log = self.log.lock().expect("command log poisoned");
                let index = from.checked_sub(log.base).expect("cursor below log base") as usize;
                if let Some(entry) = log.entries.get(index) {
                    return Some(Arc::clone(entry));
                }
                if log.closed {
                    return None;
                }
            }
            self.grown.wait(seen);
        }
    }

    /// One worker's service loop: a private [`Manager`] fed the shared log in order.
    /// Runs until the core is closed. Exposed so embedders (and the arbitration tests)
    /// can drive the engine through [`execute`] themselves.
    pub fn worker_loop(&self, worker: &mut Worker) {
        let mut manager = Manager::new();
        let mut next = 0u64;
        while let Some(entry) = self.next_command(worker.index(), next) {
            next = entry.seq + 1;
            // Settle before reading: Manager::query answers over every time strictly
            // below the current epoch, which is exactly what settle seals — so a
            // query's answer is deterministic (and equal to a single-manager replay).
            if matches!(entry.command, Command::Query { .. }) {
                manager.settle(worker);
            }
            let result = manager.execute(worker, entry.command.clone());
            self.deposit(&entry, result);
        }
    }

    /// The client currently owning the live query `name`, if any. Ownership follows
    /// completions (see the module docs), so this is the arbitration's verdict — the
    /// model-checking tests assert its consistency across every interleaving.
    pub fn owner_of(&self, name: &str) -> Option<ClientId> {
        self.clients
            .lock()
            .expect("client state poisoned")
            .owners
            .get(name)
            .copied()
    }

    /// [`ServerCore::worker_loop`] with the dataflow swapped out: consumes the log in
    /// order like a real worker, but executes each command through `step` instead of a
    /// [`Manager`]. This is the seam the deterministic-schedule tests drive — the
    /// sequencing, aggregation, and ownership protocol under test is exactly the real
    /// one; only the (already deterministic) dataflow execution is stubbed.
    #[cfg(feature = "model")]
    pub fn model_worker_loop<F>(&self, worker: usize, mut step: F)
    where
        F: FnMut(&Command) -> Result<PlanResponse, PlanError>,
    {
        let mut next = 0u64;
        while let Some(entry) = self.next_command(worker, next) {
            next = entry.seq + 1;
            let result = step(&entry.command);
            self.deposit(&entry, result);
        }
    }

    /// Records one worker's result for `entry`; the final deposit merges, converts to
    /// the wire [`Response`], applies the completion's ownership effect, and
    /// dispatches to the origin client. All of it happens under the client-state
    /// lock, and completions occur in log order (every worker deposits in log order),
    /// so ownership and response order are both log-order consistent.
    fn deposit(&self, entry: &SequencedCommand, result: Result<PlanResponse, PlanError>) {
        let mut clients = self.clients.lock().expect("client state poisoned");
        let workers = self.workers;
        let pending = clients.pending.entry(entry.seq).or_insert(PendingResponse {
            remaining: workers,
            outcome: Outcome::Plain,
        });
        match result {
            Err(error) => {
                // Deterministic command streams fail identically everywhere; keep the
                // first rendering.
                if !matches!(pending.outcome, Outcome::Failed(_)) {
                    pending.outcome = Outcome::Failed(error);
                }
            }
            Ok(PlanResponse::Rows(rows)) => {
                // Each worker holds one shard of the query's output; the answer is the
                // union with multiplicities summed.
                if !matches!(pending.outcome, Outcome::Rows(_)) {
                    pending.outcome = Outcome::Rows(BTreeMap::new());
                }
                if let Outcome::Rows(accumulated) = &mut pending.outcome {
                    for (row, diff) in rows {
                        *accumulated.entry(row).or_insert(0) += diff;
                    }
                }
            }
            Ok(_) => {}
        }
        pending.remaining -= 1;
        if pending.remaining > 0 {
            return;
        }
        let pending = clients
            .pending
            .remove(&entry.seq)
            .expect("completed response present");
        let succeeded = !matches!(pending.outcome, Outcome::Failed(_));
        self.apply_ownership(&mut clients, entry, succeeded);
        // Durable path: fold the completion into the state tracker. Completions occur
        // in log order (and are serialized by the clients lock we hold), so tracker
        // state after applying the command with WAL sequence `w` is exactly the
        // effect of WAL records `<= w` — when an `AdvanceTime` seals an epoch, that
        // state is a consistent cut and may be cut as a checkpoint. Failed commands
        // change nothing (and re-fail deterministically if ever replayed).
        if succeeded {
            if let (Some(durable), Some(wal_seq)) = (self.durable.as_ref(), entry.wal_seq) {
                let mut tracker = durable.tracker.lock().expect("state tracker poisoned");
                let sealed = tracker.apply(&entry.command, wal_seq);
                if sealed && tracker.checkpoint_due(durable.config.checkpoint_every) {
                    tracker.note_checkpoint();
                    let id = durable.next_checkpoint_id.fetch_add(1, Ordering::Relaxed);
                    let sender = durable
                        .checkpoint_tx
                        .lock()
                        .expect("checkpoint sender poisoned");
                    if let Some(sender) = sender.as_ref() {
                        // A full or closed channel only delays the checkpoint.
                        let _ = sender.send((tracker.clone(), id));
                    }
                }
            }
        }
        let response = match pending.outcome {
            Outcome::Plain => Response::Ok,
            Outcome::Failed(error) => Response::PlanError {
                code: error.code().to_string(),
                message: error.to_string(),
            },
            Outcome::Rows(accumulated) => {
                let mut rows = Vec::new();
                let mut diffs = Vec::new();
                for (row, diff) in accumulated {
                    if diff != 0 {
                        rows.push(row);
                        diffs.push(diff as i64);
                    }
                }
                Response::QueryResults { rows, diffs }
            }
        };
        if let Some((client, reply)) = entry.origin {
            if let Some(route) = clients.routes.get(&client) {
                route.deliver(client, reply, response);
            }
        }
    }

    /// The ownership effect of a completed command. Only a *successful* `Install`
    /// claims its name — for its submitter if still connected, or, if the submitter
    /// departed while the install was in flight, the fresh query is retired right
    /// here (the disconnect could not see it). A successful `Uninstall` frees the
    /// name whoever issued it.
    fn apply_ownership(&self, clients: &mut ClientState, entry: &SequencedCommand, ok: bool) {
        if !ok {
            return;
        }
        match (&entry.command, entry.origin) {
            (Command::Install { name, .. }, Some((client, _))) => {
                if clients.routes.contains_key(&client) {
                    clients.owners.insert(name.clone(), client);
                } else {
                    clients.owners.remove(name);
                    let _ = self.append(None, Command::Uninstall { name: name.clone() });
                }
            }
            (Command::Uninstall { name }, _) => {
                clients.owners.remove(name);
            }
            _ => {}
        }
    }
}
