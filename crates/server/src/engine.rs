//! The sequencer core: one totally ordered command log, executed by every worker.
//!
//! PR 4's invariant is that a [`Manager`] is deterministic when every worker executes
//! the *same* command stream in the same order. A multi-client server therefore has
//! exactly one job at its heart: turn concurrently arriving per-client command streams
//! into one total order, and fan every worker's (identical) results back to the client
//! that asked. [`ServerCore`] is that job, with the network left out so tests can pin
//! its arbitration rules deterministically:
//!
//! * **Sequencing.** [`ServerCore::submit`] appends to the shared [`command
//!   log`](ServerCore::command_log) under one lock; the append order *is* the
//!   arbitration order for every name conflict. An `Uninstall` sequenced before a
//!   queued `Install` referencing the same input makes the install fail
//!   (`unknown-input`/`invalid-plan`); sequenced after it, the uninstall fails
//!   (`input-in-use`). Within one name, queries shadow inputs: `Uninstall` retires a
//!   live query named `n` before it would remove an input named `n` (the manager's
//!   namespace rule, pinned by `tests/arbitration.rs`). By default the log prunes the
//!   prefix every worker has consumed (a long-lived server holds O(in-flight)
//!   commands, not its full traffic history); [`ServerCore::with_history`] retains
//!   everything so tests can replay the merged log.
//! * **Execution.** Each worker thread runs [`ServerCore::worker_loop`]: a private
//!   `Manager`, the log consumed in order, [`Manager::settle`] before every `Query` so
//!   answers are deterministic.
//! * **Aggregation.** Workers deposit per-command results; the last deposit merges them
//!   (query rows union-summed across worker shards, everything else identical by
//!   determinism) into one wire [`Response`] and dispatches it to the origin client
//!   *under the same lock*, so each client's responses leave in its request order.
//! * **Ownership.** The sequencer tracks which client owns each *live* query. A name
//!   is claimed when its `Install` **completes successfully** (completions occur in
//!   log order, so claims are log-order consistent) — a failed install, duplicate or
//!   otherwise, never claims anything. Client disconnect enqueues `Uninstall`s for the
//!   queries that client owns, and nothing else: shared inputs outlive their creator
//!   (arrangements outlive queries — the paper's model), and another client's queries
//!   are untouchable. An install still in flight when its client departs is retired by
//!   the deposit that completes it.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};

use kpg_dataflow::{execute, Config, Worker};
use kpg_plan::{Command, Manager, PlanError, Response as PlanResponse, Row};
use kpg_wire::Response;

/// Identifies one connected client (or test-registered pseudo-client).
pub type ClientId = u64;

/// One entry of the total command order.
pub struct SequencedCommand {
    /// The position in the log (dense, from 0).
    pub seq: u64,
    /// The submitting client and its per-client request index, or `None` for commands
    /// the server generated itself (disconnect cleanup).
    pub origin: Option<(ClientId, u64)>,
    /// The command.
    pub command: Command,
}

struct LogState {
    /// The sequence number of `entries[0]` (everything below it has been pruned).
    base: u64,
    entries: VecDeque<Arc<SequencedCommand>>,
    /// Per worker, the next sequence number it will consume: everything below every
    /// cursor is done everywhere and (unless `retain`) can be dropped.
    cursors: Vec<u64>,
    /// Keep consumed entries (history mode, for replay-based tests/introspection).
    retain: bool,
    closed: bool,
}

impl LogState {
    fn prune(&mut self) {
        if self.retain {
            return;
        }
        let consumed = self.cursors.iter().copied().min().unwrap_or(0);
        while self.base < consumed {
            if self.entries.pop_front().is_none() {
                break;
            }
            self.base += 1;
        }
    }
}

/// A command's merged outcome while deposits accumulate.
enum Outcome {
    /// A non-query success (identical on every worker).
    Plain,
    /// Query rows, union-summed across the workers' output shards.
    Rows(BTreeMap<Row, isize>),
    /// The deterministic failure (identical on every worker; first deposit kept).
    Failed(PlanError),
}

struct PendingResponse {
    remaining: usize,
    outcome: Outcome,
}

/// Client-facing state: response routing, response aggregation, and name ownership.
/// One lock, so dispatch order equals completion order equals per-client request order.
struct ClientState {
    /// Live query name → owning client. Written only when an `Install` or `Uninstall`
    /// *completes* (and at submit for `Uninstall`, which can only free a name early),
    /// so the map never credits a failed install.
    owners: HashMap<String, ClientId>,
    /// Per-seq aggregation of worker deposits.
    pending: HashMap<u64, PendingResponse>,
    /// Where each client's responses go.
    routes: HashMap<ClientId, mpsc::Sender<(u64, Response)>>,
}

/// The network-free server: sequencer, worker pool driver, response aggregator. See
/// the module docs for the architecture; [`crate::serve`] wraps it in TCP.
pub struct ServerCore {
    workers: usize,
    log: Mutex<LogState>,
    grown: Condvar,
    clients: Mutex<ClientState>,
    next_client: AtomicU64,
}

impl ServerCore {
    /// A core that will drive `workers` dataflow workers, pruning log entries once
    /// every worker has consumed them (the long-lived-server default).
    pub fn new(workers: usize) -> Self {
        Self::build(workers, false)
    }

    /// Like [`ServerCore::new`], but the log retains every command ever sequenced, so
    /// [`ServerCore::command_log`] is the complete replayable history.
    pub fn with_history(workers: usize) -> Self {
        Self::build(workers, true)
    }

    fn build(workers: usize, retain: bool) -> Self {
        let workers = workers.max(1);
        ServerCore {
            workers,
            log: Mutex::new(LogState {
                base: 0,
                entries: VecDeque::new(),
                cursors: vec![0; workers],
                retain,
                closed: false,
            }),
            grown: Condvar::new(),
            clients: Mutex::new(ClientState {
                owners: HashMap::new(),
                pending: HashMap::new(),
                routes: HashMap::new(),
            }),
            next_client: AtomicU64::new(0),
        }
    }

    /// The number of dataflow workers this core drives.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Starts the worker pool on a background thread. The thread exits once
    /// [`ServerCore::close`] is called and the log is drained.
    pub fn start(self: &Arc<Self>) -> std::thread::JoinHandle<()> {
        let core = Arc::clone(self);
        std::thread::Builder::new()
            .name("kpg-server-engine".to_string())
            .spawn(move || {
                let workers = core.workers;
                execute(Config::new(workers), move |worker| {
                    core.worker_loop(worker);
                });
            })
            .expect("failed to spawn the server engine thread")
    }

    /// Registers a client: allocates its id and the channel its responses arrive on,
    /// tagged with the per-client request index they answer.
    pub fn register_client(&self) -> (ClientId, mpsc::Receiver<(u64, Response)>) {
        let client = self.next_client.fetch_add(1, Ordering::Relaxed);
        let (sender, receiver) = mpsc::channel();
        self.clients
            .lock()
            .expect("client state poisoned")
            .routes
            .insert(client, sender);
        (client, receiver)
    }

    /// Appends `command` from `client` (answering its request number `reply`) to the
    /// log. Sequencing happens under the client-state lock, so the log order *is* the
    /// arbitration order.
    pub fn submit(&self, client: ClientId, reply: u64, command: Command) -> u64 {
        let mut clients = self.clients.lock().expect("client state poisoned");
        // An Uninstall frees the name *at submit*: once one is sequenced, no
        // disconnect between now and its execution may still count the query as owned
        // (a cleanup Uninstall sequenced behind it would fall through to a same-named
        // input). Install claims happen at completion, never here — see `deposit`.
        if let Command::Uninstall { name } = &command {
            clients.owners.remove(name);
        }
        self.append(Some((client, reply)), command)
    }

    /// Responds to `client`'s request `reply` with a wire-level error, without touching
    /// the log (the command never existed as far as the engine is concerned).
    pub fn respond_wire_error(&self, client: ClientId, reply: u64, message: String) {
        let clients = self.clients.lock().expect("client state poisoned");
        if let Some(route) = clients.routes.get(&client) {
            let _ = route.send((reply, Response::WireError { message }));
        }
    }

    /// Removes a departed client: unregisters its response route and enqueues
    /// `Uninstall`s for the queries it owns — and for nothing else. Ownership holds
    /// only successfully installed queries, so the cleanup can never remove another
    /// client's query or a shared input. Route removal and the cleanup appends happen
    /// under the same lock that sequences live submissions, so a racing `Install` of a
    /// just-freed name cannot slip in between; an install of this client still in
    /// flight is retired by the deposit that completes it (the route is already gone).
    pub fn disconnect(&self, client: ClientId) {
        let mut clients = self.clients.lock().expect("client state poisoned");
        clients.routes.remove(&client);
        let mut owned: Vec<String> = clients
            .owners
            .iter()
            .filter(|(_, owner)| **owner == client)
            .map(|(name, _)| name.clone())
            .collect();
        owned.sort_unstable();
        for name in &owned {
            clients.owners.remove(name);
        }
        for name in owned {
            self.append(None, Command::Uninstall { name });
        }
    }

    /// Closes the log: workers drain what is already sequenced, then exit. Submissions
    /// after close are ignored.
    pub fn close(&self) {
        let mut log = self.log.lock().expect("command log poisoned");
        log.closed = true;
        self.grown.notify_all();
    }

    /// A snapshot of the retained command log, in execution order. On a core built
    /// with [`ServerCore::with_history`] this is the complete stream a single
    /// `Manager` could replay to reproduce the server's state (the determinism the
    /// session tests check); on a default core, entries every worker has consumed are
    /// pruned and absent.
    pub fn command_log(&self) -> Vec<Command> {
        self.log
            .lock()
            .expect("command log poisoned")
            .entries
            .iter()
            .map(|entry| entry.command.clone())
            .collect()
    }

    /// How many log entries are currently held in memory (after pruning).
    pub fn retained_log_len(&self) -> usize {
        self.log.lock().expect("command log poisoned").entries.len()
    }

    fn append(&self, origin: Option<(ClientId, u64)>, command: Command) -> u64 {
        let mut log = self.log.lock().expect("command log poisoned");
        if log.closed {
            return u64::MAX;
        }
        let seq = log.base + log.entries.len() as u64;
        log.entries.push_back(Arc::new(SequencedCommand {
            seq,
            origin,
            command,
        }));
        self.grown.notify_all();
        seq
    }

    /// The log entry at position `from`, blocking until it exists; records that
    /// `worker` has consumed everything below `from` (and prunes what everyone has).
    /// `None` once the log is closed and drained.
    fn next_command(&self, worker: usize, from: u64) -> Option<Arc<SequencedCommand>> {
        let mut log = self.log.lock().expect("command log poisoned");
        log.cursors[worker] = from;
        log.prune();
        loop {
            let index = from.checked_sub(log.base).expect("cursor below log base") as usize;
            if let Some(entry) = log.entries.get(index) {
                return Some(Arc::clone(entry));
            }
            if log.closed {
                return None;
            }
            log = self.grown.wait(log).expect("command log poisoned");
        }
    }

    /// One worker's service loop: a private [`Manager`] fed the shared log in order.
    /// Runs until the core is closed. Exposed so embedders (and the arbitration tests)
    /// can drive the engine through [`execute`] themselves.
    pub fn worker_loop(&self, worker: &mut Worker) {
        let mut manager = Manager::new();
        let mut next = 0u64;
        while let Some(entry) = self.next_command(worker.index(), next) {
            next = entry.seq + 1;
            // Settle before reading: Manager::query answers over every time strictly
            // below the current epoch, which is exactly what settle seals — so a
            // query's answer is deterministic (and equal to a single-manager replay).
            if matches!(entry.command, Command::Query { .. }) {
                manager.settle(worker);
            }
            let result = manager.execute(worker, entry.command.clone());
            self.deposit(&entry, result);
        }
    }

    /// Records one worker's result for `entry`; the final deposit merges, converts to
    /// the wire [`Response`], applies the completion's ownership effect, and
    /// dispatches to the origin client. All of it happens under the client-state
    /// lock, and completions occur in log order (every worker deposits in log order),
    /// so ownership and response order are both log-order consistent.
    fn deposit(&self, entry: &SequencedCommand, result: Result<PlanResponse, PlanError>) {
        let mut clients = self.clients.lock().expect("client state poisoned");
        let workers = self.workers;
        let pending = clients.pending.entry(entry.seq).or_insert(PendingResponse {
            remaining: workers,
            outcome: Outcome::Plain,
        });
        match result {
            Err(error) => {
                // Deterministic command streams fail identically everywhere; keep the
                // first rendering.
                if !matches!(pending.outcome, Outcome::Failed(_)) {
                    pending.outcome = Outcome::Failed(error);
                }
            }
            Ok(PlanResponse::Rows(rows)) => {
                // Each worker holds one shard of the query's output; the answer is the
                // union with multiplicities summed.
                if !matches!(pending.outcome, Outcome::Rows(_)) {
                    pending.outcome = Outcome::Rows(BTreeMap::new());
                }
                if let Outcome::Rows(accumulated) = &mut pending.outcome {
                    for (row, diff) in rows {
                        *accumulated.entry(row).or_insert(0) += diff;
                    }
                }
            }
            Ok(_) => {}
        }
        pending.remaining -= 1;
        if pending.remaining > 0 {
            return;
        }
        let pending = clients
            .pending
            .remove(&entry.seq)
            .expect("completed response present");
        let succeeded = !matches!(pending.outcome, Outcome::Failed(_));
        self.apply_ownership(&mut clients, entry, succeeded);
        let response = match pending.outcome {
            Outcome::Plain => Response::Ok,
            Outcome::Failed(error) => Response::PlanError {
                code: error.code().to_string(),
                message: error.to_string(),
            },
            Outcome::Rows(accumulated) => {
                let mut rows = Vec::new();
                let mut diffs = Vec::new();
                for (row, diff) in accumulated {
                    if diff != 0 {
                        rows.push(row);
                        diffs.push(diff as i64);
                    }
                }
                Response::QueryResults { rows, diffs }
            }
        };
        if let Some((client, reply)) = entry.origin {
            if let Some(route) = clients.routes.get(&client) {
                // A send can only fail if the client departed; the response is moot.
                let _ = route.send((reply, response));
            }
        }
    }

    /// The ownership effect of a completed command. Only a *successful* `Install`
    /// claims its name — for its submitter if still connected, or, if the submitter
    /// departed while the install was in flight, the fresh query is retired right
    /// here (the disconnect could not see it). A successful `Uninstall` frees the
    /// name whoever issued it.
    fn apply_ownership(&self, clients: &mut ClientState, entry: &SequencedCommand, ok: bool) {
        if !ok {
            return;
        }
        match (&entry.command, entry.origin) {
            (Command::Install { name, .. }, Some((client, _))) => {
                if clients.routes.contains_key(&client) {
                    clients.owners.insert(name.clone(), client);
                } else {
                    clients.owners.remove(name);
                    self.append(None, Command::Uninstall { name: name.clone() });
                }
            }
            (Command::Uninstall { name }, _) => {
                clients.owners.remove(name);
            }
            _ => {}
        }
    }
}
