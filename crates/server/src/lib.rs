//! The network query server: the paper's interactive serving artifact.
//!
//! PR 4 built the engine — a per-worker [`Manager`](kpg_plan::Manager) executing a
//! data-described [`Command`](kpg_plan::Command) stream. This crate is the missing
//! half of §6.2's scenario: a socket boundary through which many concurrent clients
//! install, update, pose, and retire queries against one shared dataflow:
//!
//! * [`ServerCore`] — the network-free heart: one totally ordered command log (the
//!   sequencer, whose append order is the arbitration order for every name conflict),
//!   the worker pool executing it through per-worker `Manager`s, and the response
//!   aggregator that union-merges per-worker query shards and routes each client's
//!   responses back in request order. Ownership lives here too: a disconnecting client
//!   takes its own queries with it and nothing else.
//! * [`serve`] / [`Server`] — the TCP front end: framed [`kpg_wire`] messages,
//!   multiple concurrent clients, per-frame `WireError` replies with stream resync.
//! * [`Client`] — the connection handle: request/response helpers plus a
//!   [`send`](Client::send)/[`receive`](Client::receive) split for pipelining.
//! * [`DurabilityConfig`] — opt-in durability: every state-defining command is
//!   written to a segmented WAL (group-committed, fsynced per epoch), checkpointed in
//!   the background, and replayed deterministically on restart before the listener
//!   binds. See the [`durability`] module docs for the protocol.
//!
//! `examples/remote_session.rs` runs a §6.2 query class over a real socket;
//! `cargo run --release -p kpg_server --bin kpg_server` serves standalone (add
//! `--durable-dir DIR` to survive crashes).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod durability;
pub mod engine;
pub mod net;
pub mod route;

pub use client::{Client, ClientError};
pub use durability::DurabilityConfig;
pub use engine::{ClientId, HealthSnapshot, SequencedCommand, ServerCore};
pub use net::{serve, Server, ServerConfig};
pub use route::{ChannelRoute, ResponseRoute};

/// The deepest a client should pipeline: the server stops reading a connection's
/// frames once this many of its commands are unanswered (backpressure), so a client
/// that keeps sending without receiving past this depth is gambling on kernel socket
/// buffers — far enough past it, both sides block and the connection deadlocks.
/// Interleave one [`Client::receive`] per [`Client::send`] after at most this many
/// outstanding commands.
pub const PIPELINE_DEPTH: usize = 1024;
