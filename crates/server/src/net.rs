//! The TCP front end: frames in, frames out, one [`ServerCore`] in the middle.
//!
//! Per connection the server runs two threads. The *reader* turns incoming frames into
//! sequenced commands — a frame that fails to decode (or exceeds the frame limit, in
//! which case its bytes were discarded unbuffered) is answered with
//! [`Response::WireError`](kpg_wire::Response::WireError) and the stream continues at
//! the next frame. The *writer* drains the client's response channel; responses are
//! reordered by request index before writing, so the client always reads exactly one
//! response per frame it sent, in order, even though wire errors short-circuit the
//! engine. EOF (or any read error) disconnects the client, which uninstalls the
//! queries it owned and nothing else.

use kpg_sync::atomic::{AtomicBool, Ordering};
use kpg_sync::thread::JoinHandle;
use kpg_sync::{mpsc, Arc, Mutex};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use kpg_plan::Command;
use kpg_wire::{read_frame, write_frame, Frame, Response, WireCodec, DEFAULT_FRAME_LIMIT};

use crate::engine::{ClientId, ServerCore};

/// The most commands a client may have submitted-but-unanswered before its reader
/// stops pulling frames off the socket. Bounds the per-client response channel and
/// reorder buffer; the stalled reader applies ordinary TCP backpressure upstream.
/// Clients that pipeline should stay under this bound — see
/// [`PIPELINE_DEPTH`](crate::PIPELINE_DEPTH).
pub(crate) const MAX_IN_FLIGHT: u64 = 1024;

/// The writer's progress, shared with the reader for backpressure: how many responses
/// have been written back (or `u64::MAX` once the writer is gone, releasing any wait).
///
/// Public (but hidden) so the model-checking tests can drive the exact protocol the
/// session threads run — see `tests/model_races.rs`.
#[doc(hidden)]
pub struct SessionFlow {
    written: Mutex<u64>,
    advanced: kpg_sync::Condvar,
}

impl SessionFlow {
    #[doc(hidden)]
    pub fn new() -> Self {
        SessionFlow {
            written: Mutex::new(0),
            advanced: kpg_sync::Condvar::new(),
        }
    }

    /// Blocks until fewer than `limit` responses separate `reply` from what has been
    /// written back.
    #[doc(hidden)]
    pub fn wait_below(&self, reply: u64, limit: u64) {
        let mut written = self.written.lock().expect("session flow poisoned");
        while reply.saturating_sub(*written) >= limit {
            written = self.advanced.wait(written).expect("session flow poisoned");
        }
    }

    #[doc(hidden)]
    pub fn note_written(&self) {
        let mut written = self.written.lock().expect("session flow poisoned");
        *written += 1;
        self.advanced.notify_all();
    }

    #[doc(hidden)]
    pub fn release(&self) {
        let mut written = self.written.lock().expect("session flow poisoned");
        *written = u64::MAX;
        self.advanced.notify_all();
    }
}

impl Default for SessionFlow {
    fn default() -> Self {
        SessionFlow::new()
    }
}

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Dataflow worker threads.
    pub workers: usize,
    /// The largest frame payload accepted from a client, in bytes.
    pub frame_limit: usize,
    /// Retain the full command log (see [`ServerCore::with_history`]) instead of
    /// pruning consumed entries. For replay-based tests and introspection; a
    /// long-lived server should leave this off.
    pub retain_log: bool,
    /// Persist the command log and checkpoints here; `None` (the default) serves
    /// purely in memory. With durability on, [`serve`] first replays any recovered
    /// state to completion and only then binds the listener, so clients never observe
    /// a partially recovered server.
    pub durability: Option<crate::durability::DurabilityConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 1,
            frame_limit: DEFAULT_FRAME_LIMIT,
            retain_log: false,
            durability: None,
        }
    }
}

/// A running server: the engine, the acceptor, and every live connection.
/// [`Server::shutdown`] (or drop) stops all of it.
pub struct Server {
    core: Arc<ServerCore>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    connections: Arc<Mutex<HashMap<ClientId, TcpStream>>>,
    acceptor: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<()>>,
}

/// Binds `addr` and serves until [`Server::shutdown`]. Use port 0 to let the OS pick
/// (the bound address is [`Server::local_addr`]).
///
/// A durable configuration recovers first: the engine replays the checkpoint
/// bootstrap and WAL tail to completion *before* the listener binds, so the moment
/// the address is connectable the recovered state is fully settled.
pub fn serve(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
    let ServerConfig {
        workers,
        frame_limit,
        retain_log,
        durability,
    } = config;
    let core = Arc::new(match durability {
        Some(durability) => ServerCore::durable(workers, retain_log, durability)?,
        None if retain_log => ServerCore::with_history(workers),
        None => ServerCore::new(workers),
    });
    let engine = core.start();
    core.await_replayed();
    let bound = (|| {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        Ok::<_, io::Error>((listener, local_addr))
    })();
    let (listener, local_addr) = match bound {
        Ok(bound) => bound,
        Err(error) => {
            // The engine is already running; wind it down cleanly (flushing the WAL
            // and final checkpoint on a durable core) before reporting the failure.
            core.close();
            let _ = engine.join();
            core.final_checkpoint();
            return Err(error);
        }
    };
    let stop = Arc::new(AtomicBool::new(false));
    let connections: Arc<Mutex<HashMap<ClientId, TcpStream>>> =
        Arc::new(Mutex::new(HashMap::new()));

    let acceptor = {
        let core = Arc::clone(&core);
        let stop = Arc::clone(&stop);
        let connections = Arc::clone(&connections);
        kpg_sync::thread::Builder::new()
            .name("kpg-server-accept".to_string())
            .spawn(move || {
                let mut sessions = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            // The listener is nonblocking (for the stop poll); on
                            // BSD-derived platforms the accepted socket inherits
                            // that, and the session loops need blocking reads.
                            if stream.set_nonblocking(false).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            if let Ok(session) = spawn_session(
                                Arc::clone(&core),
                                stream,
                                frame_limit,
                                Arc::clone(&connections),
                                &stop,
                            ) {
                                sessions.push(session);
                            }
                        }
                        Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                            kpg_sync::thread::sleep(Duration::from_millis(2));
                        }
                        // Transient accept failures (a peer that reset before we
                        // accepted, brief fd exhaustion) must not kill the acceptor:
                        // a server that runs but can never accept again fails
                        // silently. Back off briefly and retry until stopped.
                        Err(_) => kpg_sync::thread::sleep(Duration::from_millis(20)),
                    }
                }
                for session in sessions {
                    let _ = session.join();
                }
            })
            .expect("failed to spawn the acceptor thread")
    };

    Ok(Server {
        core,
        local_addr,
        stop,
        connections,
        acceptor: Some(acceptor),
        engine: Some(engine),
    })
}

impl Server {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The sequencer core (introspection: the merged command log).
    pub fn core(&self) -> &Arc<ServerCore> {
        &self.core
    }

    /// The core's storage health: whether mutations are currently being rejected
    /// (degraded read-only mode) and the failure/heal counters behind it.
    pub fn health(&self) -> crate::HealthSnapshot {
        self.core.health()
    }

    /// Stops accepting, disconnects every client, drains the engine, and joins every
    /// thread. Idempotent; also run on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(acceptor) = self.acceptor.take() {
            // Unblock reader threads first so the acceptor can join its sessions.
            let connections: Vec<TcpStream> = self
                .connections
                .lock()
                .expect("connection registry poisoned")
                .drain()
                .map(|(_, stream)| stream)
                .collect();
            for stream in connections {
                let _ = stream.shutdown(Shutdown::Both);
            }
            let _ = acceptor.join();
        }
        self.core.close();
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
        // Durable cores write one last checkpoint after the engine has drained, so a
        // clean shutdown restarts from a checkpoint instead of a full WAL replay.
        self.core.final_checkpoint();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts the per-connection reader (the returned thread) and writer threads.
fn spawn_session(
    core: Arc<ServerCore>,
    stream: TcpStream,
    frame_limit: usize,
    connections: Arc<Mutex<HashMap<ClientId, TcpStream>>>,
    stop: &kpg_sync::atomic::AtomicBool,
) -> io::Result<JoinHandle<()>> {
    let (client, responses) = core.register_client();
    let write_stream = stream.try_clone()?;
    connections
        .lock()
        .expect("connection registry poisoned")
        .insert(client, stream.try_clone()?);
    // Double-check against a racing shutdown: if the stop flag was set after the
    // acceptor's check but before this registration, `Server::shutdown` may already
    // have drained the registry — shut this socket down ourselves so the reader
    // thread cannot outlive the server.
    if stop.load(Ordering::SeqCst) {
        let _ = stream.shutdown(Shutdown::Both);
    }

    let flow = Arc::new(SessionFlow::new());
    let writer = {
        let flow = Arc::clone(&flow);
        kpg_sync::thread::Builder::new()
            .name(format!("kpg-server-write-{client}"))
            .spawn(move || write_loop(write_stream, &responses, &flow))?
    };

    kpg_sync::thread::Builder::new()
        .name(format!("kpg-server-read-{client}"))
        .spawn(move || {
            read_loop(&core, client, stream, frame_limit, &flow);
            // EOF or error: retire the client. Disconnect drops the response route,
            // which ends the writer's channel and lets it exit.
            core.disconnect(client);
            connections
                .lock()
                .expect("connection registry poisoned")
                .remove(&client);
            let _ = writer.join();
        })
}

/// Reads frames until EOF/error, submitting decoded commands and answering wire-level
/// failures in place. Every received frame consumes exactly one reply index, so the
/// writer can restore per-request response order.
fn read_loop(
    core: &ServerCore,
    client: ClientId,
    mut stream: TcpStream,
    frame_limit: usize,
    flow: &SessionFlow,
) {
    let mut reply = 0u64;
    loop {
        // Backpressure: a client that pipelines without reading responses would
        // otherwise grow the response channel without bound. Stalling here leaves its
        // bytes in the kernel buffers, which is the client's problem.
        flow.wait_below(reply, MAX_IN_FLIGHT);
        kpg_sync::blocking::annotate("socket read");
        match read_frame(&mut stream, frame_limit) {
            Ok(None) | Err(_) => return,
            Ok(Some(Frame::TooLarge(length))) => {
                let error = kpg_wire::WireError::FrameTooLarge {
                    length,
                    limit: frame_limit as u64,
                };
                core.respond_wire_error(client, reply, error.to_string());
                reply += 1;
            }
            Ok(Some(Frame::Payload(payload))) => {
                match Command::decode(&payload) {
                    Ok(command) => {
                        core.submit(client, reply, command);
                    }
                    Err(error) => core.respond_wire_error(client, reply, error.to_string()),
                }
                reply += 1;
            }
        }
    }
}

/// Writes responses back in request order. Responses can complete out of order across
/// the engine/wire-error paths; a reorder buffer holds the early ones.
fn write_loop(
    mut stream: TcpStream,
    responses: &mpsc::Receiver<(u64, Response)>,
    flow: &SessionFlow,
) {
    let mut next_reply = 0u64;
    let mut held: BTreeMap<u64, Response> = BTreeMap::new();
    'drain: while let Ok((reply, response)) = responses.recv() {
        held.insert(reply, response);
        while let Some(response) = held.remove(&next_reply) {
            kpg_sync::blocking::annotate("socket write");
            if write_frame(&mut stream, &response.encode()).is_err() {
                break 'drain;
            }
            next_reply += 1;
            flow.note_written();
        }
    }
    // However the writer ends, release a reader blocked on backpressure; its next
    // read observes the socket state and exits on its own.
    flow.release();
}
