//! The TCP front end: one readiness reactor, one [`ServerCore`] behind it.
//!
//! The server runs **no threads per connection**. A single reactor thread owns a
//! [`Poller`] and every socket:
//!
//! * **Reads** — a readable connection is drained nonblockingly into its
//!   [`FrameStream`]; completed frames decode into commands. Everything that
//!   became ready in one wakeup is submitted through
//!   [`ServerCore::submit_batch`] — **one** sequencer-lock acquisition (and one
//!   WAL staging pass) per wakeup, no matter how many connections spoke. Batch
//!   order is append order is arbitration order, so the semantics are identical
//!   to per-command submission.
//! * **Writes** — workers deliver responses to a shared queue (`QueueRoute`) and
//!   ring the reactor's [`Waker`]; the reactor reorders each connection's
//!   responses by request index and flushes them coalesced — all responses that
//!   arrived since the last wakeup leave in one write per connection. A socket
//!   that blocks gets write interest and the residue goes out when it drains.
//! * **Backpressure** — a connection with [`PIPELINE_DEPTH`] submitted-but-
//!   unflushed commands stops being *read*: its read interest is muted, leaving
//!   its bytes in the kernel buffer (ordinary TCP backpressure upstream). When
//!   responses flush, interest is restored and frames already sitting in the
//!   assembler are processed first — no readiness event re-announces bytes the
//!   reactor already read.
//! * **Accept** — the listener is a readiness source like any other. Transient
//!   accept failures (brief fd exhaustion, peers resetting before accept) mute
//!   the listener for a short backoff instead of killing the accept path; a
//!   wait timeout re-arms it. Shutdown and accept race safely by construction:
//!   accepting and tearing down happen on the same thread, so a stop flag set
//!   mid-accept is observed before the next wait and the just-registered
//!   connection is torn down with the rest — never leaked. Both protocols are
//!   pinned as model tests in `tests/model_races.rs`.
//!
//! Wire-level failures behave as before: an undecodable or oversized frame is
//! answered with [`Response::WireError`](kpg_wire::Response::WireError) in
//! request order and the stream resumes at the next frame. EOF (or any socket
//! error) disconnects the client, which uninstalls the queries it owned and
//! nothing else.

use kpg_sync::atomic::{AtomicBool, Ordering};
use kpg_sync::thread::JoinHandle;
use kpg_sync::{Arc, Mutex};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use kpg_net::{Event, FillOutcome, FrameStream, Interest, Poller, Waker};
use kpg_plan::Command;
use kpg_wire::{Frame, Response, WireCodec, DEFAULT_FRAME_LIMIT};

use crate::engine::{ClientId, ServerCore};
use crate::route::ResponseRoute;
use crate::PIPELINE_DEPTH;

/// Poller token of the TCP listener.
const LISTENER: u64 = 0;
/// Poller token of the reactor waker.
const WAKER: u64 = 1;
/// First token handed to a connection.
const FIRST_CONN: u64 = 2;

/// How long the listener stays muted after a transient accept failure.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(20);

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Dataflow worker threads.
    pub workers: usize,
    /// The largest frame payload accepted from a client, in bytes.
    pub frame_limit: usize,
    /// Retain the full command log (see [`ServerCore::with_history`]) instead of
    /// pruning consumed entries. For replay-based tests and introspection; a
    /// long-lived server should leave this off.
    pub retain_log: bool,
    /// Persist the command log and checkpoints here; `None` (the default) serves
    /// purely in memory. With durability on, [`serve`] first replays any recovered
    /// state to completion and only then binds the listener, so clients never observe
    /// a partially recovered server.
    pub durability: Option<crate::durability::DurabilityConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 1,
            frame_limit: DEFAULT_FRAME_LIMIT,
            retain_log: false,
            durability: None,
        }
    }
}

/// The shared response path: workers deposit here (under the core's client-state
/// lock) and ring the reactor, which drains the queue on its next wakeup and
/// flushes per connection. One queue for every socket-backed client.
struct QueueRoute {
    queue: Mutex<Vec<(ClientId, u64, Response)>>,
    waker: Arc<Waker>,
}

impl ResponseRoute for QueueRoute {
    fn deliver(&self, client: ClientId, reply: u64, response: Response) {
        let mut queue = self.queue.lock().expect("response queue poisoned");
        let was_empty = queue.is_empty();
        queue.push((client, reply, response));
        drop(queue);
        // Wake only on the empty→non-empty transition: the reactor drains the
        // queue whole under the same lock, so one pending wake covers every
        // response that lands before it runs — a batch of N responses costs one
        // waker syscall, not N. (A push racing the drain sees the queue empty
        // again and re-wakes, so no response is ever left sleeping.)
        if was_empty {
            self.waker.wake();
        }
    }
}

/// A running server: the engine, the reactor, and every live connection.
/// [`Server::shutdown`] (or drop) stops all of it.
pub struct Server {
    core: Arc<ServerCore>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    reactor: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<()>>,
}

/// Binds `addr` and serves until [`Server::shutdown`]. Use port 0 to let the OS pick
/// (the bound address is [`Server::local_addr`]).
///
/// A durable configuration recovers first: the engine replays the checkpoint
/// bootstrap and WAL tail to completion *before* the listener binds, so the moment
/// the address is connectable the recovered state is fully settled.
pub fn serve(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
    let ServerConfig {
        workers,
        frame_limit,
        retain_log,
        durability,
    } = config;
    let core = Arc::new(match durability {
        Some(durability) => ServerCore::durable(workers, retain_log, durability)?,
        None if retain_log => ServerCore::with_history(workers),
        None => ServerCore::new(workers),
    });
    let engine = core.start();
    core.await_replayed();
    let bound = (|| {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let poller = Poller::new()?;
        poller.register(&listener, LISTENER, Interest::READ)?;
        let waker = Waker::new(&poller, WAKER)?;
        Ok::<_, io::Error>((listener, local_addr, poller, waker))
    })();
    let (listener, local_addr, poller, waker) = match bound {
        Ok(bound) => bound,
        Err(error) => {
            // The engine is already running; wind it down cleanly (flushing the WAL
            // and final checkpoint on a durable core) before reporting the failure.
            core.close();
            let _ = engine.join();
            core.final_checkpoint();
            return Err(error);
        }
    };
    let stop = Arc::new(AtomicBool::new(false));
    let waker = Arc::new(waker);
    let route = Arc::new(QueueRoute {
        queue: Mutex::new(Vec::new()),
        waker: Arc::clone(&waker),
    });

    let reactor = {
        let core = Arc::clone(&core);
        let stop = Arc::clone(&stop);
        let waker = Arc::clone(&waker);
        kpg_sync::thread::Builder::new()
            .name("kpg-server-reactor".to_string())
            .spawn(move || {
                Reactor {
                    core,
                    poller,
                    listener,
                    waker,
                    route,
                    stop,
                    frame_limit,
                    conns: HashMap::new(),
                    by_client: HashMap::new(),
                    next_token: FIRST_CONN,
                    accept_muted_until: None,
                }
                .run();
            })
            .expect("failed to spawn the reactor thread")
    };

    Ok(Server {
        core,
        local_addr,
        stop,
        waker,
        reactor: Some(reactor),
        engine: Some(engine),
    })
}

impl Server {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The sequencer core (introspection: the merged command log).
    pub fn core(&self) -> &Arc<ServerCore> {
        &self.core
    }

    /// The core's storage health: whether mutations are currently being rejected
    /// (degraded read-only mode) and the failure/heal counters behind it.
    pub fn health(&self) -> crate::HealthSnapshot {
        self.core.health()
    }

    /// Stops accepting, disconnects every client, drains the engine, and joins every
    /// thread. Idempotent; also run on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(reactor) = self.reactor.take() {
            // The reactor checks the flag on every wakeup; ring it so a reactor
            // parked with no traffic notices now. Teardown happens on the
            // reactor thread itself, so every connection — including one
            // accepted while this flag was being set — is dropped there.
            self.waker.wake();
            let _ = reactor.join();
        }
        self.core.close();
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
        // Durable cores write one last checkpoint after the engine has drained, so a
        // clean shutdown restarts from a checkpoint instead of a full WAL replay.
        self.core.final_checkpoint();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One socket-backed session: the framed stream plus reply-ordering and
/// backpressure accounting.
struct Conn {
    stream: FrameStream<TcpStream>,
    client: ClientId,
    /// The next reply index to assign to an incoming frame — equivalently, how
    /// many frames this connection has submitted.
    submitted: u64,
    /// Responses fully flushed to the socket. `submitted - answered` is the
    /// in-flight depth the backpressure bound applies to.
    answered: u64,
    /// The next reply index to *emit*; responses completing out of order wait in
    /// `held` until their predecessors arrive.
    next_emit: u64,
    held: BTreeMap<u64, Response>,
    /// The interest currently armed with the poller (to skip no-op reregisters).
    armed: Interest,
    dead: bool,
}

impl Conn {
    fn in_flight(&self) -> u64 {
        self.submitted - self.answered
    }
}

/// The reactor: all connection state, confined to its one thread.
struct Reactor {
    core: Arc<ServerCore>,
    poller: Poller,
    listener: TcpListener,
    waker: Arc<Waker>,
    route: Arc<QueueRoute>,
    stop: Arc<AtomicBool>,
    frame_limit: usize,
    conns: HashMap<u64, Conn>,
    by_client: HashMap<ClientId, u64>,
    next_token: u64,
    /// `Some(deadline)` while the listener is muted after a transient accept
    /// failure; the wait timeout is clamped so the deadline re-arms it.
    accept_muted_until: Option<Instant>,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::with_capacity(256);
        let mut scratch = vec![0u8; 64 * 1024];
        // Connections whose read interest is muted for depth; re-checked after
        // every flush pass instead of scanning all connections.
        let mut throttled: Vec<u64> = Vec::new();
        loop {
            events.clear();
            let timeout = self
                .accept_muted_until
                .map(|deadline| deadline.saturating_duration_since(Instant::now()));
            let _ = self.poller.wait(&mut events, timeout);
            // Stop check first: whatever else this wakeup carries, teardown wins.
            // Dropping the connections here — on the thread that accepts — is
            // what makes the shutdown/accept race unable to leak a registration.
            if self.stop.load(Ordering::SeqCst) {
                for (_, conn) in self.conns.drain() {
                    let _ = self.poller.deregister(conn.stream.stream());
                    self.core.disconnect(conn.client);
                }
                return;
            }

            // 1. New responses: reorder per connection and queue the encodings.
            let mut flush: Vec<u64> = Vec::new();
            for event in &events {
                if event.token == WAKER {
                    self.waker.drain();
                }
            }
            let deliveries =
                std::mem::take(&mut *self.route.queue.lock().expect("response queue poisoned"));
            for (client, reply, response) in deliveries {
                let Some(&token) = self.by_client.get(&client) else {
                    continue; // client departed; the response is moot
                };
                let conn = self.conns.get_mut(&token).expect("client map out of sync");
                conn.held.insert(reply, response);
                while let Some(response) = conn.held.remove(&conn.next_emit) {
                    conn.stream.queue_frame(&response.encode());
                    conn.next_emit += 1;
                }
                if !flush.contains(&token) {
                    flush.push(token);
                }
            }

            // 2. Flush: coalesced — every response queued above leaves in as few
            // writes as the socket allows; writable events flush blocked residue.
            for event in &events {
                if event.token >= FIRST_CONN && event.writable && !flush.contains(&event.token) {
                    flush.push(event.token);
                }
            }
            for &token in &flush {
                self.flush_conn(token);
            }

            // 3. Reads. Fill every readable connection, then pop frames up to the
            // depth bound. Connections that free up depth by the flush above are
            // re-armed and their assembler residue processed *first*: those bytes
            // are already read, so no readiness event will announce them again.
            let mut batch: Vec<(ClientId, u64, Command)> = Vec::new();
            let mut readers: Vec<u64> = std::mem::take(&mut throttled);
            for event in &events {
                if event.token == LISTENER {
                    if event.readable {
                        self.accept_ready();
                    }
                } else if event.token >= FIRST_CONN && event.readable {
                    if let Some(conn) = self.conns.get_mut(&event.token) {
                        if conn.fill(&mut scratch) == FillOutcome::Closed {
                            conn.dead = true;
                        }
                        if !readers.contains(&event.token) {
                            readers.push(event.token);
                        }
                    }
                }
            }
            // A timed-out wait re-arms a muted listener once the backoff passed.
            if let Some(deadline) = self.accept_muted_until {
                if Instant::now() >= deadline {
                    self.accept_muted_until = None;
                    let _ = self
                        .poller
                        .reregister(&self.listener, LISTENER, Interest::READ);
                }
            }
            for token in readers {
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue;
                };
                while conn.in_flight() < PIPELINE_DEPTH as u64 {
                    let Some(frame) = conn.stream.next_frame() else {
                        break;
                    };
                    let reply = conn.submitted;
                    conn.submitted += 1;
                    match frame {
                        Frame::Payload(payload) => match Command::decode(&payload) {
                            Ok(command) => batch.push((conn.client, reply, command)),
                            Err(error) => {
                                self.core
                                    .respond_wire_error(conn.client, reply, error.to_string());
                            }
                        },
                        Frame::TooLarge(length) => {
                            let error = kpg_wire::WireError::FrameTooLarge {
                                length,
                                limit: self.frame_limit as u64,
                            };
                            self.core
                                .respond_wire_error(conn.client, reply, error.to_string());
                        }
                    }
                }
                let conn = self.conns.get_mut(&token).expect("conn present");
                if conn.dead && !conn.stream.has_pending_frames() {
                    self.close_conn(token);
                    continue;
                }
                if conn.in_flight() >= PIPELINE_DEPTH as u64 {
                    throttled.push(token);
                }
                self.update_interest(token);
            }

            // 4. One sequencer pass for everything this wakeup produced.
            if !batch.is_empty() {
                self.core.submit_batch(batch);
            }
        }
    }

    /// Accepts until the listener would block. A transient failure mutes the
    /// listener for [`ACCEPT_BACKOFF`] — the reactor-native form of the old
    /// accept-thread sleep: readiness suppression plus a wait timeout, so the
    /// reactor keeps serving existing connections while the listener cools off.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let client = self
                        .core
                        .register_client_routed(Arc::clone(&self.route) as Arc<dyn ResponseRoute>);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(&stream, token, Interest::READ)
                        .is_err()
                    {
                        self.core.disconnect(client);
                        continue;
                    }
                    self.by_client.insert(client, token);
                    self.conns.insert(
                        token,
                        Conn {
                            stream: FrameStream::new(stream, self.frame_limit),
                            client,
                            submitted: 0,
                            answered: 0,
                            next_emit: 0,
                            held: BTreeMap::new(),
                            armed: Interest::READ,
                            dead: false,
                        },
                    );
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => return,
                Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
                // Transient accept failures (a peer that reset before we accepted,
                // brief fd exhaustion) must not kill the accept path: a server
                // that runs but can never accept again fails silently.
                Err(_) => {
                    self.accept_muted_until = Some(Instant::now() + ACCEPT_BACKOFF);
                    let _ = self
                        .poller
                        .reregister(&self.listener, LISTENER, Interest::NONE);
                    return;
                }
            }
        }
    }

    /// Flushes a connection's queued responses, advancing its backpressure
    /// accounting; tears it down on a write error or a drained EOF.
    fn flush_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match conn.stream.flush() {
            Ok(progress) => {
                conn.answered += progress.frames_completed as u64;
                if conn.dead && !conn.stream.has_pending_frames() {
                    self.close_conn(token);
                } else {
                    self.update_interest(token);
                }
            }
            Err(_) => self.close_conn(token),
        }
    }

    /// Re-arms the poller with the interest the connection's state implies:
    /// read while under the depth bound, write while output is blocked.
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let desired = Interest {
            read: !conn.dead && conn.in_flight() < PIPELINE_DEPTH as u64,
            write: conn.stream.backlog() > 0,
        };
        if desired != conn.armed
            && self
                .poller
                .reregister(conn.stream.stream(), token, desired)
                .is_ok()
        {
            conn.armed = desired;
        }
    }

    /// Retires a connection: poller deregistration, engine disconnect (which
    /// uninstalls the queries the client owned), socket drop.
    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.stream());
            self.by_client.remove(&conn.client);
            self.core.disconnect(conn.client);
        }
    }
}

impl Conn {
    /// Drains the socket into the assembler; returns what the kernel reported.
    fn fill(&mut self, scratch: &mut [u8]) -> FillOutcome {
        self.stream.fill(scratch)
    }
}
