//! Response routing: how a completed command's answer travels back toward the
//! client that asked.
//!
//! The sequencer core does not know whether a client is an in-process test
//! handle or a socket owned by the reactor; it knows only that each registered
//! client has a [`ResponseRoute`]. Two implementations exist:
//!
//! * [`ChannelRoute`] — an mpsc channel, one per client. What
//!   [`ServerCore::register_client`](crate::ServerCore::register_client)
//!   creates; the embedding test (or the blocking [`Client`](crate::Client)
//!   handle's old thread-per-connection peer) blocks on the receiver.
//! * `QueueRoute` (in the server's reactor module) — one shared queue for every
//!   socket-backed client, plus a reactor waker rung when the queue goes
//!   non-empty, so the worker pool never blocks on socket writes and the
//!   reactor coalesces all responses that arrived since its last wakeup into
//!   one flush per connection.
//!
//! Delivery happens under the core's client-state lock, in completion order —
//! which (per the engine's aggregation rules) is log order, so each client's
//! responses are delivered in its request order no matter the route.

use kpg_sync::mpsc;
use kpg_wire::Response;

use crate::ClientId;

/// Where one client's responses go. Implementations must tolerate delivery
/// after the client has departed (drop the response) and must not block: a
/// route is invoked under the core's client-state lock.
pub trait ResponseRoute: Send + Sync {
    /// Delivers the response to `client`'s request number `reply`.
    fn deliver(&self, client: ClientId, reply: u64, response: Response);
}

/// The per-client channel route behind
/// [`ServerCore::register_client`](crate::ServerCore::register_client).
pub struct ChannelRoute {
    sender: mpsc::Sender<(u64, Response)>,
}

impl ChannelRoute {
    /// Wraps the sending half of a client's response channel.
    pub fn new(sender: mpsc::Sender<(u64, Response)>) -> ChannelRoute {
        ChannelRoute { sender }
    }
}

impl ResponseRoute for ChannelRoute {
    fn deliver(&self, _client: ClientId, reply: u64, response: Response) {
        // A send fails only if the receiver is gone — the client departed and
        // the response is moot.
        let _ = self.sender.send((reply, response));
    }
}

impl std::fmt::Debug for ChannelRoute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelRoute").finish_non_exhaustive()
    }
}
