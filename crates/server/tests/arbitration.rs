//! Sequencer arbitration, pinned deterministically at the `ServerCore` level (no
//! sockets, no races): the total log order decides every name conflict, the loser
//! fails cleanly, and disconnect cleanup can only touch what the departed client
//! owned.
//!
//! The headline scenario is the issue's regression: an `Uninstall` of an input with a
//! same-batch `Install` referencing it queued behind (and in front of) it. The manager
//! level of this is covered by `kpg_plan`'s `manager_model.rs`; here the *server's*
//! rule is pinned — arrival order at the sequencer is execution order, both outcomes
//! are clean errors for the loser, and the winner's state survives.

use kpg_sync::mpsc::Receiver;
use kpg_sync::Arc;
use std::time::Duration;

use kpg_plan::{Command, Plan, ReduceKind, Row, Value};
use kpg_server::{ClientId, ServerCore};
use kpg_wire::Response;

fn row(values: &[u64]) -> Row {
    Row::from(values.iter().map(|&v| Value::UInt(v)).collect::<Vec<_>>())
}

/// A core with a running engine plus registered pseudo-clients.
struct Harness {
    core: Arc<ServerCore>,
    engine: Option<kpg_sync::thread::JoinHandle<()>>,
    replies: Vec<(u64, Receiver<(u64, Response)>)>,
    next_reply: Vec<u64>,
}

impl Harness {
    fn new(workers: usize, clients: usize) -> Self {
        // History mode: these tests inspect the full command log.
        let core = Arc::new(ServerCore::with_history(workers));
        let engine = Some(core.start());
        let mut replies = Vec::new();
        for _ in 0..clients {
            let (client, receiver) = core.register_client();
            replies.push((client, receiver));
        }
        let next_reply = vec![0; clients];
        Harness {
            core,
            engine,
            replies,
            next_reply,
        }
    }

    fn client(&self, index: usize) -> ClientId {
        self.replies[index].0
    }

    /// Submits from client `index` and waits for the command's response.
    fn run(&mut self, index: usize, command: Command) -> Response {
        let reply = self.next_reply[index];
        self.next_reply[index] += 1;
        self.core.submit(self.client(index), reply, command);
        let (got_reply, response) = self.replies[index]
            .1
            .recv_timeout(Duration::from_secs(20))
            .expect("the engine answers");
        assert_eq!(got_reply, reply, "responses arrive in request order");
        response
    }

    fn plan_error_code(response: Response) -> String {
        match response {
            Response::PlanError { code, .. } => code,
            other => panic!("expected a PlanError, got {other:?}"),
        }
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        self.core.close();
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
    }
}

fn count_plan(source: &str) -> Plan {
    Plan::source(source).reduce(1, ReduceKind::Count)
}

fn install(name: &str, plan: Plan) -> Command {
    Command::Install {
        name: name.to_string(),
        plan,
        locals: vec![],
    }
}

fn uninstall(name: &str) -> Command {
    Command::Uninstall {
        name: name.to_string(),
    }
}

/// Install sequenced before the uninstall: the query wins, the input removal loses
/// with `input-in-use`, and the query keeps answering.
#[test]
fn uninstall_after_queued_install_loses_cleanly() {
    let mut harness = Harness::new(2, 2);
    assert_eq!(
        harness.run(
            0,
            Command::CreateInput {
                name: "x".to_string(),
                key_arity: Some(1),
            },
        ),
        Response::Ok
    );
    assert_eq!(
        harness.run(
            0,
            Command::Update {
                name: "x".to_string(),
                row: row(&[1, 2]),
                diff: 1,
            },
        ),
        Response::Ok
    );
    // Client 1's install arrives first, client 0's uninstall of the same input second.
    assert_eq!(harness.run(1, install("q", count_plan("x"))), Response::Ok);
    assert_eq!(
        Harness::plan_error_code(harness.run(0, uninstall("x"))),
        "input-in-use"
    );
    assert_eq!(
        harness.run(0, Command::AdvanceTime { epoch: 1 }),
        Response::Ok
    );
    match harness.run(
        1,
        Command::Query {
            name: "q".to_string(),
        },
    ) {
        Response::QueryResults { rows, diffs } => {
            // One group (source node 1), count 1: [key, count].
            assert_eq!(rows, vec![Row::from(vec![Value::UInt(1), Value::Int(1)])]);
            assert_eq!(diffs, vec![1]);
        }
        other => panic!("the surviving query answers, got {other:?}"),
    }
}

/// Uninstall sequenced before the queued install: the input removal wins, and the
/// install referencing it fails validation cleanly (no partial state).
#[test]
fn queued_install_after_uninstall_loses_cleanly() {
    let mut harness = Harness::new(2, 2);
    assert_eq!(
        harness.run(
            0,
            Command::CreateInput {
                name: "x".to_string(),
                key_arity: Some(1),
            },
        ),
        Response::Ok
    );
    assert_eq!(harness.run(0, uninstall("x")), Response::Ok);
    assert_eq!(
        Harness::plan_error_code(harness.run(1, install("q", count_plan("x")))),
        "invalid-plan"
    );
    // The loser left nothing behind: the name is reusable immediately.
    assert_eq!(
        harness.run(
            1,
            Command::CreateInput {
                name: "x".to_string(),
                key_arity: None,
            },
        ),
        Response::Ok
    );
    assert_eq!(harness.run(1, install("q", count_plan("x"))), Response::Ok);
}

/// One name, two kinds: a query named like an input. `Uninstall` retires the query
/// first (queries shadow inputs), the input only on the next uninstall.
#[test]
fn uninstall_retires_queries_before_inputs_of_the_same_name() {
    let mut harness = Harness::new(1, 1);
    assert_eq!(
        harness.run(
            0,
            Command::CreateInput {
                name: "n".to_string(),
                key_arity: None,
            },
        ),
        Response::Ok
    );
    assert_eq!(
        harness.run(0, install("n", Plan::source("n").distinct())),
        Response::Ok
    );
    // First uninstall: the query goes, the input stays (updates still accepted).
    assert_eq!(harness.run(0, uninstall("n")), Response::Ok);
    assert_eq!(
        Harness::plan_error_code(harness.run(
            0,
            Command::Query {
                name: "n".to_string(),
            },
        )),
        "unknown-query"
    );
    assert_eq!(
        harness.run(
            0,
            Command::Update {
                name: "n".to_string(),
                row: row(&[5]),
                diff: 1,
            },
        ),
        Response::Ok
    );
    // Second uninstall: now the input goes too.
    assert_eq!(harness.run(0, uninstall("n")), Response::Ok);
    assert_eq!(
        Harness::plan_error_code(harness.run(
            0,
            Command::Update {
                name: "n".to_string(),
                row: row(&[5]),
                diff: 1,
            },
        )),
        "unknown-input"
    );
}

/// The ownership regression behind "a disconnect uninstalls nothing it doesn't own":
/// a failed duplicate `Install` must not claim the name, so the loser's disconnect
/// leaves the winner's query untouched — while a name the loser did own is retired.
#[test]
fn disconnect_cleanup_cannot_steal_an_owned_name() {
    let mut harness = Harness::new(1, 2);
    assert_eq!(
        harness.run(
            0,
            Command::CreateInput {
                name: "x".to_string(),
                key_arity: None,
            },
        ),
        Response::Ok
    );
    assert_eq!(harness.run(0, install("q", count_plan("x"))), Response::Ok);
    assert_eq!(
        Harness::plan_error_code(harness.run(1, install("q", Plan::source("x").distinct()))),
        "duplicate-query"
    );
    assert_eq!(harness.run(1, install("r", count_plan("x"))), Response::Ok);

    let loser = harness.client(1);
    harness.core.disconnect(loser);
    // The cleanup is sequenced ahead of anything submitted after this point.
    let log = harness.core.command_log();
    assert!(
        log.iter()
            .any(|command| matches!(command, Command::Uninstall { name } if name == "r")),
        "the loser's own query is retired"
    );
    assert!(
        !log.iter()
            .any(|command| matches!(command, Command::Uninstall { name } if name == "q")),
        "the winner's query is not touched: {log:?}"
    );
    match harness.run(
        0,
        Command::Query {
            name: "q".to_string(),
        },
    ) {
        Response::QueryResults { .. } => {}
        other => panic!("the winner's query survives the loser's disconnect: {other:?}"),
    }
}

/// The stronger ownership regression: a *failed* install (not just a duplicate one)
/// must claim nothing — neither a name another client later installs successfully,
/// nor the name of a shared input — so the failed installer's disconnect removes
/// neither.
#[test]
fn failed_install_claims_nothing_for_disconnect_cleanup() {
    let mut harness = Harness::new(1, 2);
    assert_eq!(
        harness.run(
            0,
            Command::CreateInput {
                name: "edges".to_string(),
                key_arity: None,
            },
        ),
        Response::Ok
    );
    // Client 0: two failing installs — one on a fresh name ("q", unknown source) and
    // one on the shared input's own name ("edges", unknown source).
    assert_eq!(
        Harness::plan_error_code(harness.run(0, install("q", count_plan("missing")))),
        "invalid-plan"
    );
    assert_eq!(
        Harness::plan_error_code(harness.run(0, install("edges", count_plan("missing")))),
        "invalid-plan"
    );
    // Client 1 then takes "q" successfully.
    assert_eq!(
        harness.run(1, install("q", count_plan("edges"))),
        Response::Ok
    );

    let loser = harness.client(0);
    harness.core.disconnect(loser);
    let log = harness.core.command_log();
    assert!(
        !log.iter()
            .any(|command| matches!(command, Command::Uninstall { .. })),
        "failed installs own nothing, so the disconnect cleans nothing: {log:?}"
    );
    // Client 1's query and the shared input both survive.
    match harness.run(
        1,
        Command::Query {
            name: "q".to_string(),
        },
    ) {
        Response::QueryResults { .. } => {}
        other => panic!("client 1's query survives: {other:?}"),
    }
    assert_eq!(
        harness.run(
            1,
            Command::Update {
                name: "edges".to_string(),
                row: row(&[1, 2]),
                diff: 1,
            },
        ),
        Response::Ok
    );
}

/// An install still in flight when its client departs is retired either way the race
/// lands: by the disconnect cleanup (install completed first) or by the completing
/// deposit itself (client was already gone).
#[test]
fn in_flight_install_of_a_departed_client_is_retired() {
    let mut harness = Harness::new(1, 2);
    assert_eq!(
        harness.run(
            0,
            Command::CreateInput {
                name: "edges".to_string(),
                key_arity: None,
            },
        ),
        Response::Ok
    );
    // Submit WITHOUT waiting for the response, then disconnect immediately: the
    // disconnect races the install's completion, and both outcomes must retire it.
    let departing = harness.client(1);
    harness
        .core
        .submit(departing, 0, install("ghost", count_plan("edges")));
    harness.core.disconnect(departing);

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let response = harness.run(
            0,
            Command::Query {
                name: "ghost".to_string(),
            },
        );
        if matches!(
            &response,
            Response::PlanError { code, .. } if code == "unknown-query"
        ) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "the departed client's in-flight install was never retired: {response:?}"
        );
        kpg_sync::thread::sleep(Duration::from_millis(5));
    }
}

/// The default (non-history) core prunes log entries once every worker has consumed
/// them: a long-lived server holds O(in-flight) commands, not its traffic history.
#[test]
fn consumed_log_entries_are_pruned() {
    let core = Arc::new(ServerCore::new(2));
    let engine = core.start();
    let (client, responses) = core.register_client();
    let total = 200u64;
    core.submit(
        client,
        0,
        Command::CreateInput {
            name: "edges".to_string(),
            key_arity: None,
        },
    );
    for index in 0..total {
        core.submit(
            client,
            index + 1,
            Command::Update {
                name: "edges".to_string(),
                row: row(&[index, index + 1]),
                diff: 1,
            },
        );
    }
    for _ in 0..=total {
        responses
            .recv_timeout(Duration::from_secs(20))
            .expect("every command is acknowledged");
    }
    // After the last response, every worker has deposited everything; its next
    // next_command call records the final cursor and prunes. Poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while core.retained_log_len() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "{} consumed entries were never pruned",
            core.retained_log_len()
        );
        kpg_sync::thread::sleep(Duration::from_millis(5));
    }
    core.close();
    engine.join().expect("engine exits");
}
