//! Connection fan-out: the event-driven fabric's structural promise is that the
//! thread count is a function of the worker count, never the connection count —
//! one reactor thread multiplexes every socket. These tests pin that by counting
//! the process's kernel tasks (`/proc/self/task`) while holding idle
//! connections open: opening 10× more sockets must add exactly zero threads.
//!
//! The fast test holds ~128 idle connections; the `#[ignore]`d slow-lane test
//! holds 1000+ (bounded by the fd rlimit — client and server share this
//! process, so each connection costs two descriptors) and additionally proves
//! the held connections still work afterwards. Linux-only: thread counting
//! reads procfs.

#![cfg(target_os = "linux")]

use std::net::TcpStream;

use kpg_server::{serve, Client, ServerConfig};

/// Number of kernel tasks (threads) in this process right now.
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("read /proc/self/task")
        .count()
}

/// The soft fd rlimit, so the slow lane sizes itself to the environment.
fn fd_limit() -> usize {
    let limits = std::fs::read_to_string("/proc/self/limits").expect("read /proc/self/limits");
    limits
        .lines()
        .find(|line| line.starts_with("Max open files"))
        .and_then(|line| line.split_whitespace().nth(3))
        .and_then(|soft| soft.parse().ok())
        .unwrap_or(1024)
}

/// Opens `count` idle connections (accepted, registered, never written to).
fn open_idle(addr: std::net::SocketAddr, count: usize) -> Vec<TcpStream> {
    (0..count)
        .map(|index| {
            TcpStream::connect(addr).unwrap_or_else(|error| {
                panic!("connect idle connection {index}: {error}");
            })
        })
        .collect()
}

/// Waits until the reactor has drained the accept queue: with level-triggered
/// readiness the backlog is accepted within a few wakeups, so a short settle is
/// enough for the thread-count snapshot to be post-accept.
fn settle() {
    kpg_sync::thread::sleep(std::time::Duration::from_millis(200));
}

#[test]
fn thread_count_does_not_scale_with_connections() {
    let mut server = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind fanout server");
    let addr = server.local_addr();

    let first = open_idle(addr, 8);
    settle();
    let baseline = thread_count();

    let rest = open_idle(addr, 120);
    settle();
    let loaded = thread_count();
    assert_eq!(
        loaded, baseline,
        "adding 120 connections changed the thread count ({baseline} -> {loaded}): \
         the server is spawning per-connection threads"
    );

    // The idle connections are live sessions, not just accepted sockets: one of
    // them can run a command while the rest stay parked in the reactor.
    let mut client = Client::connect(addr).expect("connect active client");
    client
        .send(&kpg_plan::Command::CreateInput {
            name: "edges".into(),
            key_arity: None,
        })
        .expect("send");
    client.receive().expect("ack");

    drop(first);
    drop(rest);
    server.shutdown();
}

/// Slow lane: a thousand-plus idle connections through at most two poller
/// threads (reactor + engine-side plumbing — in practice exactly one reactor).
/// Sized to the fd rlimit: each held connection is two descriptors here.
#[test]
#[ignore = "1k+ idle connections; run in the slow CI lane"]
fn thousand_idle_connections_two_reactor_threads() {
    // Leave generous headroom for workers, WAL-less engine plumbing, and the
    // test harness itself.
    let target = (fd_limit().saturating_sub(128) / 2).min(10_000);
    assert!(
        target >= 1000,
        "fd rlimit too low to hold 1000 connections ({target} possible)"
    );

    let mut server = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind fanout server");
    let addr = server.local_addr();

    let first = open_idle(addr, 8);
    settle();
    let baseline = thread_count();

    let rest = open_idle(addr, target - 8);
    settle();
    settle();
    let loaded = thread_count();
    assert_eq!(
        loaded, baseline,
        "holding {target} connections changed the thread count ({baseline} -> {loaded})"
    );

    // The structural claim: the socket fabric is at most two threads (in
    // practice exactly one reactor; the engine sequencer is the other
    // non-worker server thread). The absolute census is 2 workers + reactor +
    // engine + the libtest harness — anything above 8 total means something is
    // spawning per connection.
    assert!(
        loaded <= 8,
        "{loaded} threads while holding {target} idle connections: \
         the socket fabric is not O(1) threads"
    );

    // And the server still serves through the crowd.
    let mut client = Client::connect(addr).expect("connect active client");
    client
        .send(&kpg_plan::Command::CreateInput {
            name: "edges".into(),
            key_arity: None,
        })
        .expect("send");
    client.receive().expect("ack");

    drop(first);
    drop(rest);
    server.shutdown();
}
