//! Chaos tests: the server survives a failing disk (`--features faults`).
//!
//! Every test scripts a churn workload against a durable loopback server while a
//! deterministic [`FaultPlan`] (scoped to the server's own directory, so parallel
//! tests never see each other's faults) fails some storage operation. The contract
//! under test, end to end:
//!
//! * **No panics.** Every submitted command is answered — with `Ok`, rows, or a
//!   typed error — and the server stays up.
//! * **Degraded read-only mode.** When the WAL (or checkpointing) fails past its
//!   retry budget, mutations are rejected with the `degraded-read-only` plan error
//!   while queries keep serving from memory; the background probe heals the server
//!   once writes succeed again.
//! * **Acked-prefix recovery.** A restart after the chaos recovers every epoch that
//!   was acknowledged durable, and invents nothing that was never submitted.

#![cfg(feature = "faults")]

use kpg_sync::atomic::{AtomicU64, Ordering};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use kpg_plan::{Plan, Row, Value};
use kpg_server::{serve, Client, ClientError, DurabilityConfig, Server, ServerConfig};
use kpg_store::io::faults::FaultPlan;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "kpg-server-faults-{tag}-{}-{unique}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn row(step: u64) -> Row {
    Row::from(vec![Value::UInt(step)])
}

/// A durable loopback server with a fast heal probe (tests poll for the heal).
fn durable_server(dir: &Path, checkpoint_every: u64, segment_bytes: u64) -> Server {
    let mut durability = DurabilityConfig::new(dir);
    durability.checkpoint_every = checkpoint_every;
    durability.segment_bytes = segment_bytes;
    durability.probe_interval = Duration::from_millis(5);
    serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            durability: Some(durability),
            ..ServerConfig::default()
        },
    )
    .expect("bind a durable loopback server")
}

/// Connects with bounded waits so a wedged server fails the test instead of
/// hanging it.
fn client(server: &Server) -> Client {
    Client::connect_timeout(server.local_addr(), Duration::from_secs(10))
        .expect("connect")
        .with_request_timeout(Some(Duration::from_secs(10)))
        .expect("set request timeout")
}

/// Polls the server's health until `ready` holds. Panics past the deadline.
fn await_health(server: &Server, what: &str, ready: impl Fn(kpg_server::HealthSnapshot) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !ready(server.health()) {
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; health: {:?}",
            server.health()
        );
        kpg_sync::thread::sleep(Duration::from_millis(5));
    }
}

fn is_degraded_error(error: &ClientError) -> bool {
    error.plan_code() == Some("degraded-read-only")
}

/// The rows of `query` as bare steps, panicking on any non-plan failure.
fn step_rows(client: &mut Client, query: &str) -> Vec<u64> {
    let rows = client.query(query).expect("query");
    rows.iter()
        .map(|(row, diff)| {
            assert_eq!(*diff, 1);
            match row.fields() {
                [Value::UInt(step)] => *step,
                other => panic!("unexpected row shape: {other:?}"),
            }
        })
        .collect()
}

/// The tentpole scenario, end to end over TCP: a permanently failing fsync tips the
/// server into degraded read-only mode (mutations rejected with the wire code,
/// queries still served), the probe heals it once the fault clears, and a restart
/// recovers every acknowledged epoch.
#[test]
fn wal_failure_degrades_to_read_only_heals_and_survives_restart() {
    let dir = temp_dir("degrade-heal");
    let server = {
        let server = durable_server(&dir, u64::MAX, 1 << 20);
        let mut client = client(&server);
        client.create_input("steps", None).expect("create input");
        client
            .install("tally", Plan::source("steps").distinct(), &[])
            .expect("install tally");
        for step in 1..=5u64 {
            client.update("steps", row(step), 1).expect("update");
            client.advance(step).expect("advance");
        }

        // The disk starts failing every fsync under the server's directory.
        let guard = FaultPlan::parse("fsync@1..=eio")
            .unwrap()
            .scoped(&dir)
            .install();
        // A plain update still stages (its durability was never promised)...
        client.update("steps", row(6), 1).expect("stage update 6");
        // ...but sealing the epoch cannot be acknowledged: past the retry budget
        // the advance is rejected and the server degrades.
        let error = client.advance(6).expect_err("advance must be rejected");
        assert!(is_degraded_error(&error), "got {error:?}");

        // Degraded: mutations of every kind are refused with the stable wire code...
        let error = client.update("steps", row(99), 1).expect_err("update");
        assert!(is_degraded_error(&error), "got {error:?}");
        let error = client.uninstall("tally").expect_err("uninstall");
        assert!(is_degraded_error(&error), "got {error:?}");
        // ...while queries keep serving from memory (epoch 6 never sealed, so the
        // staged update is not yet visible — exactly the settled prefix).
        assert_eq!(step_rows(&mut client, "tally"), vec![1, 2, 3, 4, 5]);
        let health = server.health();
        assert!(health.degraded);
        assert_eq!(health.degraded_transitions, 1);
        assert!(health.wal_failures >= 1);

        // The disk recovers; the probe notices and the server heals itself.
        drop(guard);
        await_health(&server, "the heal", |health| !health.degraded);
        assert!(server.health().heals >= 1);

        // Back to read-write: the re-advance seals epoch 6 with the staged update.
        client.advance(6).expect("advance after heal");
        assert_eq!(step_rows(&mut client, "tally"), vec![1, 2, 3, 4, 5, 6]);
        drop(client);
        server
    };
    drop(server); // clean shutdown (flushes the WAL)

    // Restart: everything acknowledged is back. (The clean client disconnect
    // durably uninstalled its query, so install a fresh reader over the
    // recovered input.)
    let server = durable_server(&dir, u64::MAX, 1 << 20);
    let mut client = client(&server);
    client
        .install("check", Plan::source("steps").distinct(), &[])
        .expect("install over recovered input");
    client.advance(7).expect("advance");
    assert_eq!(step_rows(&mut client, "check"), vec![1, 2, 3, 4, 5, 6]);
    drop(client);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoint failures route through the retry budget, surface as a consecutive
/// failure count, and degrade the server; because the WAL itself still works, the
/// probe heals it, and once the fault clears a later checkpoint succeeds and the
/// count resets. A clean shutdown then recovers everything.
#[test]
fn checkpoint_failures_degrade_count_and_reset() {
    let dir = temp_dir("ckpt-fail");
    let rows_before;
    {
        // Aggressive cadence: a checkpoint is cut every ~2 logged commands.
        let server = durable_server(&dir, 2, 1 << 20);
        let mut c = client(&server);
        c.create_input("steps", None).expect("create input");
        c.install("tally", Plan::source("steps").distinct(), &[])
            .expect("install tally");

        // Every manifest rename fails: checkpoints cannot commit, the WAL is fine.
        let guard = FaultPlan::parse("rename@1..=eio")
            .unwrap()
            .scoped(&dir)
            .install();
        let mut step = 0u64;
        let mut churn = |c: &mut Client, steps: u64, server: &Server| {
            let deadline = Instant::now() + Duration::from_secs(30);
            let mut done = 0u64;
            while done < steps {
                assert!(
                    Instant::now() < deadline,
                    "churn stalled: {:?}",
                    server.health()
                );
                step += 1;
                // The checkpoint thread may degrade the server between any two
                // commands; tolerate the rejection and retry after the probe heals.
                let sealed = c
                    .update("steps", row(step), 1)
                    .and_then(|()| c.advance(step));
                match sealed {
                    Ok(()) => done += 1,
                    Err(error) if is_degraded_error(&error) => {
                        step -= 1;
                        kpg_sync::thread::sleep(Duration::from_millis(5));
                    }
                    Err(error) => panic!("churn step {step} failed oddly: {error:?}"),
                }
            }
        };
        churn(&mut c, 6, &server);
        await_health(&server, "a counted checkpoint failure", |health| {
            health.checkpoint_failures >= 1
        });
        assert!(server.health().degraded_transitions >= 1);

        // Fault clears; further churn cuts a checkpoint that succeeds and resets
        // the consecutive-failure count.
        drop(guard);
        await_health(&server, "the heal", |health| !health.degraded);
        let reset = Instant::now() + Duration::from_secs(30);
        while server.health().checkpoint_failures != 0 {
            assert!(
                Instant::now() < reset,
                "count never reset: {:?}",
                server.health()
            );
            churn(&mut c, 1, &server);
        }
        rows_before = step_rows(&mut c, "tally");
        assert!(!rows_before.is_empty());
        drop(c);
    }

    let server = durable_server(&dir, 2, 1 << 20);
    let mut c = client(&server);
    c.install("check", Plan::source("steps").distinct(), &[])
        .expect("install over recovered input");
    c.advance(1_000_000).expect("advance");
    assert_eq!(step_rows(&mut c, "check"), rows_before);
    drop(c);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Failed WAL pruning must never degrade the server or lose state: the segments a
/// checkpoint could not remove are made inert by the manifest watermark, so a
/// restart recovers identically.
#[test]
fn prune_failures_leave_recovery_intact() {
    let dir = temp_dir("prune-fail");
    let rows_before;
    {
        // Tiny segments force rotation; frequent checkpoints trigger pruning.
        let server = durable_server(&dir, 4, 256);
        let mut c = client(&server);
        c.create_input("steps", None).expect("create input");
        c.install("tally", Plan::source("steps").distinct(), &[])
            .expect("install tally");
        let guard = FaultPlan::parse("remove@1..=eio")
            .unwrap()
            .scoped(&dir)
            .install();
        for step in 1..=16u64 {
            c.update("steps", row(step), 1).expect("update");
            c.advance(step).expect("advance");
        }
        // Pruning is not persistence: its failures are absorbed, never degrade.
        let health = server.health();
        assert!(
            !health.degraded,
            "prune failures must not degrade: {health:?}"
        );
        assert_eq!(health.degraded_transitions, 0);
        rows_before = step_rows(&mut c, "tally");
        assert_eq!(rows_before, (1..=16).collect::<Vec<_>>());
        drop(guard);
        drop(c);
    }

    let server = durable_server(&dir, 4, 256);
    let mut c = client(&server);
    c.install("check", Plan::source("steps").distinct(), &[])
        .expect("install over recovered input");
    c.advance(1_000_000).expect("advance");
    assert_eq!(step_rows(&mut c, "check"), rows_before);
    drop(c);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// One scripted churn run against the fault point `spec`, returning
/// `(updates_acked, max_acked_advance, sent)`. Every command must be *answered*
/// (`Ok` or the degraded rejection) — anything else panics the test.
fn churn_under_fault(dir: &Path, spec: &str, steps: u64) -> (Vec<u64>, u64, u64) {
    let server = durable_server(dir, u64::MAX, 1 << 20);
    let mut c = client(&server);
    c.create_input("steps", None).expect("create input");
    c.install("tally", Plan::source("steps").distinct(), &[])
        .expect("install tally");
    let guard = FaultPlan::parse(spec).unwrap().scoped(dir).install();
    let mut updates_acked = Vec::new();
    let mut max_acked_advance = 0u64;
    for step in 1..=steps {
        match c.update("steps", row(step), 1) {
            Ok(()) => updates_acked.push(step),
            Err(error) => assert!(is_degraded_error(&error), "update {step}: {error:?}"),
        }
        match c.advance(step) {
            Ok(()) => max_acked_advance = step,
            Err(error) => assert!(is_degraded_error(&error), "advance {step}: {error:?}"),
        }
    }
    drop(guard);
    // If the run degraded the server, it must heal now that the fault is gone.
    await_health(&server, "the heal", |health| !health.degraded);
    if server.health().degraded_transitions > 0 {
        assert!(server.health().heals >= 1);
    }
    // Queries answer regardless of what the disk did.
    let _ = step_rows(&mut c, "tally");
    drop(c);
    drop(server); // clean shutdown: flushes whatever is still staged
    (updates_acked, max_acked_advance, steps)
}

/// Restarts from `dir` and checks the recovery invariant against a churn record:
/// recovered rows ⊇ every update sealed by an acknowledged advance, and ⊆ the
/// updates that were ever acknowledged at all (nothing invented).
fn assert_recovers_acked_prefix(dir: &Path, updates_acked: &[u64], max_acked_advance: u64) {
    let server = durable_server(dir, u64::MAX, 1 << 20);
    let mut c = client(&server);
    c.install("check", Plan::source("steps").distinct(), &[])
        .expect("install over recovered input");
    c.advance(1_000_000).expect("advance");
    let rows = step_rows(&mut c, "check");
    for &step in updates_acked.iter().filter(|&&s| s <= max_acked_advance) {
        assert!(
            rows.contains(&step),
            "acked update {step} (sealed by acked advance {max_acked_advance}) lost; rows {rows:?}"
        );
    }
    for &step in &rows {
        assert!(
            updates_acked.contains(&step),
            "recovered row {step} was never acknowledged; acked {updates_acked:?}"
        );
    }
    drop(c);
    drop(server);
}

/// The smoke sweep: for every injectable op kind, a single transient fault at each
/// of its first occurrences is absorbed by the retry budget — every command still
/// acknowledges, nothing degrades permanently, and a restart recovers everything.
#[test]
fn transient_fault_sweep_is_absorbed_by_retries() {
    for kind in ["write", "fsync", "rename", "remove"] {
        for occurrence in 1..=2u64 {
            let spec = format!("{kind}@{occurrence}=eio");
            let dir = temp_dir(&format!("sweep-{kind}-{occurrence}"));
            let (updates_acked, max_acked_advance, steps) = churn_under_fault(&dir, &spec, 6);
            // A single transient fault sits inside the 3-attempt budget: every
            // step must have been acknowledged.
            assert_eq!(
                updates_acked.len() as u64,
                steps,
                "{spec}: transient fault must be retried, not surfaced"
            );
            assert_eq!(max_acked_advance, steps, "{spec}: every advance must ack");
            assert_recovers_acked_prefix(&dir, &updates_acked, max_acked_advance);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The long sweep (slow lane): permanent faults switched on at each successive
/// occurrence of the write and fsync paths. Whatever the fault point, the server
/// answers everything, degrades instead of panicking, heals when the fault clears,
/// and recovers the acknowledged prefix on restart.
#[test]
#[ignore]
fn permanent_fault_point_sweep_recovers_acked_prefix() {
    for kind in ["write", "fsync"] {
        for occurrence in 1..=12u64 {
            let spec = format!("{kind}@{occurrence}..=eio");
            let dir = temp_dir(&format!("perm-{kind}-{occurrence}"));
            let (updates_acked, max_acked_advance, _) = churn_under_fault(&dir, &spec, 8);
            assert_recovers_acked_prefix(&dir, &updates_acked, max_acked_advance);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
