//! Deterministic-schedule exploration of the server's five historical races.
//!
//! Each test runs its scenario under `kpg_sync::model::explore`, which serializes the
//! threads onto one runnable-at-a-time scheduler and explores interleavings — first
//! exhaustively (small bounds), then with PCT-style randomized priorities. A failing
//! schedule panics with a replayable decision trace (`KPG_MODEL_REPLAY_TRACE=...`).
//!
//! The five scenarios are the races this repo actually shipped fixes for, re-pinned
//! here as schedule-exhaustive invariants rather than timing-dependent stress tests:
//!
//! 1. *Sequencer arbitration*: concurrent same-name installs — exactly one winner,
//!    and ownership matches the log's arbitration order.
//! 2. *Install-completion ownership vs disconnect*: a client departing while its
//!    install is in flight never leaks an owned query.
//! 3. *Shutdown vs accept*: the connection-registration double-check in
//!    `spawn_session` — no connection survives a racing shutdown.
//! 4. *Group commit vs checkpoint/prune*: the WAL watermark protocol — a checkpoint
//!    never prunes records that are not yet durable.
//! 5. *Pipeline-depth backpressure*: `SessionFlow` bounds reader-ahead without
//!    deadlocking the session.
//!
//! Run with `cargo test -p kpg_server --features model --test model_races`.

#![cfg(feature = "model")]

use std::collections::HashSet;

use kpg_plan::{Command, Plan, PlanError, Response as PlanResponse};
use kpg_server::net::SessionFlow;
use kpg_server::ServerCore;
use kpg_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use kpg_sync::model::{explore, Config};
use kpg_sync::{mpsc, thread, Arc, Mutex};
use kpg_wire::Response;

/// A stub in place of the dataflow [`kpg_plan::Manager`]: tracks installed names and
/// fails duplicates, which is the only manager behavior the sequencing/ownership
/// protocol under test depends on. Deterministic in log order, like the real one.
fn stub_execute(
    installed: &mut HashSet<String>,
    command: &Command,
) -> Result<PlanResponse, PlanError> {
    match command {
        Command::Install { name, .. } => {
            if installed.insert(name.clone()) {
                Ok(PlanResponse::Installed { new_dataflows: 1 })
            } else {
                Err(PlanError::DuplicateQuery(name.clone()))
            }
        }
        Command::Uninstall { name } => Ok(PlanResponse::Uninstalled {
            existed: installed.remove(name),
        }),
        _ => Ok(PlanResponse::Done),
    }
}

fn install(name: &str) -> Command {
    Command::Install {
        name: name.to_string(),
        plan: Plan::source("edges"),
        locals: vec!["edges".to_string()],
    }
}

fn small_config() -> Config {
    Config {
        schedules: 64,
        exhaustive: Some(384),
        ..Config::default()
    }
}

/// Race 1: two clients install the same name concurrently. The log's append order is
/// the arbitration order — in *every* interleaving exactly one install succeeds, and
/// the ownership table credits exactly the winner.
#[test]
fn arbitration_order_is_total() {
    explore("arbitration_order", small_config(), || {
        let core = Arc::new(ServerCore::new(1));
        let (client_a, responses_a) = core.register_client();
        let (client_b, responses_b) = core.register_client();

        let worker = {
            let core = Arc::clone(&core);
            thread::spawn(move || {
                let mut installed = HashSet::new();
                core.model_worker_loop(0, |command| stub_execute(&mut installed, command));
            })
        };
        let submit_a = {
            let core = Arc::clone(&core);
            thread::spawn(move || core.submit(client_a, 0, install("q")))
        };
        let submit_b = {
            let core = Arc::clone(&core);
            thread::spawn(move || core.submit(client_b, 0, install("q")))
        };
        submit_a.join().unwrap();
        submit_b.join().unwrap();
        core.close();
        worker.join().unwrap();

        let response_a = responses_a.try_recv().expect("client A answered").1;
        let response_b = responses_b.try_recv().expect("client B answered").1;
        let a_won = matches!(response_a, Response::Ok);
        let b_won = matches!(response_b, Response::Ok);
        assert!(
            a_won != b_won,
            "exactly one same-name install may win: A={response_a:?} B={response_b:?}"
        );
        let winner = if a_won { client_a } else { client_b };
        assert_eq!(
            core.owner_of("q"),
            Some(winner),
            "ownership must credit the arbitration winner"
        );
    });
}

/// Race 2: a client disconnects while its install is in flight. Whether the
/// disconnect sequences before or after the install's completion, the departed
/// client must end up owning nothing — the completion-time ownership rule
/// (`apply_ownership`) retires an orphaned install on the spot.
#[test]
fn install_ownership_vs_disconnect_never_leaks() {
    explore("install_vs_disconnect", small_config(), || {
        let core = Arc::new(ServerCore::new(1));
        let (client, _responses) = core.register_client();

        let worker = {
            let core = Arc::clone(&core);
            thread::spawn(move || {
                let mut installed = HashSet::new();
                core.model_worker_loop(0, |command| stub_execute(&mut installed, command));
            })
        };
        let submitter = {
            let core = Arc::clone(&core);
            thread::spawn(move || core.submit(client, 0, install("q")))
        };
        let disconnector = {
            let core = Arc::clone(&core);
            thread::spawn(move || core.disconnect(client))
        };
        submitter.join().unwrap();
        disconnector.join().unwrap();
        core.close();
        worker.join().unwrap();

        assert_eq!(
            core.owner_of("q"),
            None,
            "a departed client may not keep ownership in any interleaving"
        );
    });
}

/// Race 3: the `spawn_session` registration double-check against `Server::shutdown`.
/// Modeled on the exact protocol in `net.rs`: the acceptor checks `stop`, registers
/// the connection, then re-checks `stop` and shuts the connection down itself if the
/// flag flipped in between — because shutdown's registry drain may already have run
/// over an empty map. Invariant: once shutdown returns and the session thread is
/// done, no registered connection is left open.
#[test]
fn shutdown_vs_accept_closes_every_connection() {
    explore("shutdown_vs_accept", small_config(), || {
        struct FakeConn {
            closed: AtomicBool,
        }
        impl FakeConn {
            fn shutdown(&self) {
                self.closed.store(true, Ordering::SeqCst);
            }
        }

        let stop = Arc::new(AtomicBool::new(false));
        let registry: Arc<Mutex<Vec<Arc<FakeConn>>>> = Arc::new(Mutex::new(Vec::new()));

        let session = {
            let stop = Arc::clone(&stop);
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                // Acceptor-side pre-check (the accept loop's `while !stop` test).
                if stop.load(Ordering::SeqCst) {
                    return None;
                }
                let conn = Arc::new(FakeConn {
                    closed: AtomicBool::new(false),
                });
                registry
                    .lock()
                    .expect("registry poisoned")
                    .push(Arc::clone(&conn));
                // The double-check: shutdown may have drained the registry between
                // the pre-check and the registration.
                if stop.load(Ordering::SeqCst) {
                    conn.shutdown();
                }
                Some(conn)
            })
        };
        let shutdown = {
            let stop = Arc::clone(&stop);
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                stop.store(true, Ordering::SeqCst);
                let drained: Vec<Arc<FakeConn>> =
                    std::mem::take(&mut *registry.lock().expect("registry poisoned"));
                for conn in drained {
                    conn.shutdown();
                }
            })
        };
        shutdown.join().unwrap();
        if let Some(conn) = session.join().unwrap() {
            assert!(
                conn.closed.load(Ordering::SeqCst),
                "a connection registered during shutdown must still be closed"
            );
        }
    });
}

/// Race 4: group commit vs checkpoint/prune. A protocol model of `engine.rs`'s
/// durability watermarks: the appender assigns WAL sequence numbers under the log
/// lock and makes an epoch's records *visible to workers only after* the group-commit
/// fsync (exactly `ServerCore::append`); the worker applies completions to the
/// tracker watermark; the checkpointer snapshots the watermark and prunes the WAL
/// below it. Invariant: no interleaving prunes (or checkpoints past) a record that
/// is not yet durable — the bug the historical checkpoint/truncation race shipped.
#[test]
fn group_commit_watermark_never_prunes_undurable_records() {
    explore("group_commit_vs_prune", small_config(), || {
        struct WalState {
            next_seq: u64,
            /// Highest sequence covered by a completed group-commit fsync.
            durable_up_to: Option<u64>,
        }
        let wal = Arc::new(Mutex::new(WalState {
            next_seq: 0,
            durable_up_to: None,
        }));
        let watermark = Arc::new(Mutex::new(None::<u64>));
        let (sequenced_tx, sequenced_rx) = mpsc::channel::<u64>();
        let (checkpoint_tx, checkpoint_rx) = mpsc::channel::<u64>();

        // The sequencer: two epochs of two records each. The epoch's records become
        // visible (are sent to the worker) only after `durable_up_to` covers them.
        let appender = {
            let wal = Arc::clone(&wal);
            thread::spawn(move || {
                for _epoch in 0..2u64 {
                    let mut epoch_records = Vec::new();
                    for _ in 0..2 {
                        let mut state = wal.lock().expect("wal poisoned");
                        let seq = state.next_seq;
                        state.next_seq += 1;
                        epoch_records.push(seq);
                    }
                    // Group commit: fsync the epoch, then publish its records.
                    wal.lock().expect("wal poisoned").durable_up_to =
                        Some(*epoch_records.last().expect("epoch nonempty"));
                    for seq in epoch_records {
                        sequenced_tx.send(seq).expect("worker lives");
                    }
                }
            })
        };
        // The worker: applies completions in order; an epoch boundary (here: the
        // second record) cuts a checkpoint job at the current watermark.
        let worker = {
            let watermark = Arc::clone(&watermark);
            thread::spawn(move || {
                while let Ok(seq) = sequenced_rx.recv() {
                    *watermark.lock().expect("watermark poisoned") = Some(seq);
                    if seq % 2 == 1 {
                        checkpoint_tx.send(seq).expect("checkpointer lives");
                    }
                }
            })
        };
        // The checkpointer: writes the checkpoint, then prunes the WAL below the
        // checkpoint's watermark — asserting durability first, which is the pinned
        // invariant.
        let checkpointer = {
            let wal = Arc::clone(&wal);
            thread::spawn(move || {
                while let Ok(checkpoint_watermark) = checkpoint_rx.recv() {
                    let state = wal.lock().expect("wal poisoned");
                    assert!(
                        state
                            .durable_up_to
                            .is_some_and(|d| d >= checkpoint_watermark),
                        "checkpoint at {checkpoint_watermark} covers records past \
                         durable_up_to {:?}: pruning would lose acknowledged data",
                        state.durable_up_to
                    );
                }
            })
        };
        appender.join().unwrap();
        worker.join().unwrap();
        checkpointer.join().unwrap();
    });
}

/// Race 5: pipeline-depth backpressure. The real [`SessionFlow`] between a reader
/// that stalls at `limit` outstanding requests and a writer that acknowledges them.
/// Invariants: in-flight never exceeds the limit, and every schedule drains — the
/// model's deadlock detector would flag a lost wakeup in `wait_below`/`note_written`
/// (the historical failure mode) on the spot.
#[test]
fn pipeline_backpressure_bounds_in_flight_and_drains() {
    explore("pipeline_backpressure", small_config(), || {
        const LIMIT: u64 = 2;
        const REQUESTS: u64 = 4;
        let flow = Arc::new(SessionFlow::new());
        let written = Arc::new(AtomicU64::new(0));
        let (work_tx, work_rx) = mpsc::channel::<u64>();

        let reader = {
            let flow = Arc::clone(&flow);
            let written = Arc::clone(&written);
            thread::spawn(move || {
                for reply in 0..REQUESTS {
                    flow.wait_below(reply, LIMIT);
                    let in_flight = (reply + 1).saturating_sub(written.load(Ordering::SeqCst));
                    assert!(
                        in_flight <= LIMIT,
                        "reader ran {in_flight} ahead of the writer (limit {LIMIT})"
                    );
                    work_tx.send(reply).expect("writer lives");
                }
            })
        };
        let writer = {
            let flow = Arc::clone(&flow);
            let written = Arc::clone(&written);
            thread::spawn(move || {
                while let Ok(_reply) = work_rx.recv() {
                    written.fetch_add(1, Ordering::SeqCst);
                    flow.note_written();
                }
                flow.release();
            })
        };
        reader.join().unwrap();
        writer.join().unwrap();
        assert_eq!(written.load(Ordering::SeqCst), REQUESTS);
    });
}

/// The long-exploration sweep for the slow CI lane: the same five scenarios under a
/// much larger schedule budget. `#[ignore]`d by default; run with
/// `cargo test -p kpg_server --features model -- --ignored`.
#[test]
#[ignore = "long exploration sweep; run in the slow CI lane"]
fn long_exploration_sweep() {
    let sweep = Config {
        schedules: 1024,
        exhaustive: Some(8192),
        change_points: 4,
        ..Config::default()
    };
    explore("sweep_arbitration", sweep, || {
        let core = Arc::new(ServerCore::new(1));
        let (client_a, responses_a) = core.register_client();
        let (client_b, responses_b) = core.register_client();
        let worker = {
            let core = Arc::clone(&core);
            thread::spawn(move || {
                let mut installed = HashSet::new();
                core.model_worker_loop(0, |command| stub_execute(&mut installed, command));
            })
        };
        let submit_a = {
            let core = Arc::clone(&core);
            thread::spawn(move || core.submit(client_a, 0, install("q")))
        };
        let submit_b = {
            let core = Arc::clone(&core);
            thread::spawn(move || core.submit(client_b, 0, install("q")))
        };
        submit_a.join().unwrap();
        submit_b.join().unwrap();
        core.disconnect(client_a);
        core.disconnect(client_b);
        core.close();
        worker.join().unwrap();
        let _ = responses_a.try_recv();
        let _ = responses_b.try_recv();
        assert_eq!(core.owner_of("q"), None, "every owner disconnected");
    });
}
