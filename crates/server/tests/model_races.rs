//! Deterministic-schedule exploration of the server's five historical races.
//!
//! Each test runs its scenario under `kpg_sync::model::explore`, which serializes the
//! threads onto one runnable-at-a-time scheduler and explores interleavings — first
//! exhaustively (small bounds), then with PCT-style randomized priorities. A failing
//! schedule panics with a replayable decision trace (`KPG_MODEL_REPLAY_TRACE=...`).
//!
//! The six scenarios are the races this repo actually shipped fixes for, re-pinned
//! here as schedule-exhaustive invariants rather than timing-dependent stress tests:
//!
//! 1. *Sequencer arbitration*: concurrent same-name installs — exactly one winner,
//!    and ownership matches the log's arbitration order.
//! 2. *Install-completion ownership vs disconnect*: a client departing while its
//!    install is in flight never leaks an owned query.
//! 3. *Shutdown vs accept*: the reactor's same-thread teardown — a connection
//!    accepted while the stop flag is being raised is still torn down, never leaked.
//! 4. *Group commit vs checkpoint/prune*: the WAL watermark protocol — a checkpoint
//!    never prunes records that are not yet durable.
//! 5. *Pipeline-depth backpressure*: read-interest suppression bounds in-flight
//!    depth without deadlocking the wakeup protocol.
//! 6. *Accept backoff*: a listener muted by a transient accept failure re-arms and
//!    accepts a connection whose readiness event fired while muted.
//!
//! The reactor-side protocols (3, 5, 6) model the `Waker` — a real pipe fd the
//! scheduler cannot see — as a [`Doorbell`], which has exactly the semantics the
//! reactor relies on: set-a-flag-and-wake, coalescing, no lost rings.
//!
//! Run with `cargo test -p kpg_server --features model --test model_races`.

#![cfg(feature = "model")]

use std::collections::HashSet;

use kpg_plan::{Command, Plan, PlanError, Response as PlanResponse};
use kpg_server::ServerCore;
use kpg_sync::atomic::{AtomicBool, Ordering};
use kpg_sync::model::{explore, Config};
use kpg_sync::{mpsc, thread, Arc, Doorbell, Mutex};
use kpg_wire::Response;

/// A stub in place of the dataflow [`kpg_plan::Manager`]: tracks installed names and
/// fails duplicates, which is the only manager behavior the sequencing/ownership
/// protocol under test depends on. Deterministic in log order, like the real one.
fn stub_execute(
    installed: &mut HashSet<String>,
    command: &Command,
) -> Result<PlanResponse, PlanError> {
    match command {
        Command::Install { name, .. } => {
            if installed.insert(name.clone()) {
                Ok(PlanResponse::Installed { new_dataflows: 1 })
            } else {
                Err(PlanError::DuplicateQuery(name.clone()))
            }
        }
        Command::Uninstall { name } => Ok(PlanResponse::Uninstalled {
            existed: installed.remove(name),
        }),
        _ => Ok(PlanResponse::Done),
    }
}

fn install(name: &str) -> Command {
    Command::Install {
        name: name.to_string(),
        plan: Plan::source("edges"),
        locals: vec!["edges".to_string()],
    }
}

fn small_config() -> Config {
    Config {
        schedules: 64,
        exhaustive: Some(384),
        ..Config::default()
    }
}

/// Race 1: two clients install the same name concurrently. The log's append order is
/// the arbitration order — in *every* interleaving exactly one install succeeds, and
/// the ownership table credits exactly the winner.
#[test]
fn arbitration_order_is_total() {
    explore("arbitration_order", small_config(), || {
        let core = Arc::new(ServerCore::new(1));
        let (client_a, responses_a) = core.register_client();
        let (client_b, responses_b) = core.register_client();

        let worker = {
            let core = Arc::clone(&core);
            thread::spawn(move || {
                let mut installed = HashSet::new();
                core.model_worker_loop(0, |command| stub_execute(&mut installed, command));
            })
        };
        let submit_a = {
            let core = Arc::clone(&core);
            thread::spawn(move || core.submit(client_a, 0, install("q")))
        };
        let submit_b = {
            let core = Arc::clone(&core);
            thread::spawn(move || core.submit(client_b, 0, install("q")))
        };
        submit_a.join().unwrap();
        submit_b.join().unwrap();
        core.close();
        worker.join().unwrap();

        let response_a = responses_a.try_recv().expect("client A answered").1;
        let response_b = responses_b.try_recv().expect("client B answered").1;
        let a_won = matches!(response_a, Response::Ok);
        let b_won = matches!(response_b, Response::Ok);
        assert!(
            a_won != b_won,
            "exactly one same-name install may win: A={response_a:?} B={response_b:?}"
        );
        let winner = if a_won { client_a } else { client_b };
        assert_eq!(
            core.owner_of("q"),
            Some(winner),
            "ownership must credit the arbitration winner"
        );
    });
}

/// Race 2: a client disconnects while its install is in flight. Whether the
/// disconnect sequences before or after the install's completion, the departed
/// client must end up owning nothing — the completion-time ownership rule
/// (`apply_ownership`) retires an orphaned install on the spot.
#[test]
fn install_ownership_vs_disconnect_never_leaks() {
    explore("install_vs_disconnect", small_config(), || {
        let core = Arc::new(ServerCore::new(1));
        let (client, _responses) = core.register_client();

        let worker = {
            let core = Arc::clone(&core);
            thread::spawn(move || {
                let mut installed = HashSet::new();
                core.model_worker_loop(0, |command| stub_execute(&mut installed, command));
            })
        };
        let submitter = {
            let core = Arc::clone(&core);
            thread::spawn(move || core.submit(client, 0, install("q")))
        };
        let disconnector = {
            let core = Arc::clone(&core);
            thread::spawn(move || core.disconnect(client))
        };
        submitter.join().unwrap();
        disconnector.join().unwrap();
        core.close();
        worker.join().unwrap();

        assert_eq!(
            core.owner_of("q"),
            None,
            "a departed client may not keep ownership in any interleaving"
        );
    });
}

/// Race 3: shutdown vs accept, as the reactor runs it. Accepting and tearing down
/// happen on the *same* thread: the reactor drains the kernel's accept queue on a
/// listener-readiness ring, and checks the stop flag at the top of every wakeup.
/// `Server::shutdown` sets the flag, rings the waker, and joins. The old
/// thread-per-connection design needed a registration double-check here; the
/// reactor makes the race unlosable by construction — which this model proves
/// across every interleaving: after shutdown joins the reactor, every connection
/// the reactor ever accepted is closed, even one accepted in the same wakeup the
/// flag was raised.
#[test]
fn shutdown_vs_accept_closes_every_connection() {
    explore("shutdown_vs_accept", small_config(), || {
        struct FakeConn {
            closed: AtomicBool,
        }

        let stop = Arc::new(AtomicBool::new(false));
        let waker = Arc::new(Doorbell::new());
        // The kernel's accept queue: readiness (a waker ring) says "look here".
        let accept_queue: Arc<Mutex<Vec<Arc<FakeConn>>>> = Arc::new(Mutex::new(Vec::new()));

        let reactor = {
            let stop = Arc::clone(&stop);
            let waker = Arc::clone(&waker);
            let accept_queue = Arc::clone(&accept_queue);
            thread::spawn(move || {
                let mut registered: Vec<Arc<FakeConn>> = Vec::new();
                loop {
                    let seen = waker.epoch();
                    // Stop check first: teardown wins over whatever else the
                    // wakeup carries, and it runs on this thread, after any
                    // accept this same iteration could have done.
                    if stop.load(Ordering::SeqCst) {
                        for conn in &registered {
                            conn.closed.store(true, Ordering::SeqCst);
                        }
                        return registered;
                    }
                    registered.append(&mut accept_queue.lock().expect("accept queue poisoned"));
                    waker.wait(seen);
                }
            })
        };
        let client = {
            let waker = Arc::clone(&waker);
            let accept_queue = Arc::clone(&accept_queue);
            thread::spawn(move || {
                let conn = Arc::new(FakeConn {
                    closed: AtomicBool::new(false),
                });
                accept_queue
                    .lock()
                    .expect("accept queue poisoned")
                    .push(Arc::clone(&conn));
                waker.ring();
                conn
            })
        };
        let shutdown = {
            let stop = Arc::clone(&stop);
            let waker = Arc::clone(&waker);
            thread::spawn(move || {
                stop.store(true, Ordering::SeqCst);
                waker.ring();
            })
        };
        let conn = client.join().unwrap();
        shutdown.join().unwrap();
        let registered = reactor.join().unwrap();
        if registered.iter().any(|other| Arc::ptr_eq(other, &conn)) {
            assert!(
                conn.closed.load(Ordering::SeqCst),
                "a connection accepted during shutdown must still be torn down"
            );
        }
        // A connection never accepted is the kernel's to reset — but the reactor
        // must not have exited with it registered and open.
        assert!(
            registered
                .iter()
                .all(|other| other.closed.load(Ordering::SeqCst)),
            "the reactor exited with an open registered connection"
        );
    });
}

/// Race 4: group commit vs checkpoint/prune. A protocol model of `engine.rs`'s
/// durability watermarks: the appender assigns WAL sequence numbers under the log
/// lock and makes an epoch's records *visible to workers only after* the group-commit
/// fsync (exactly `ServerCore::append`); the worker applies completions to the
/// tracker watermark; the checkpointer snapshots the watermark and prunes the WAL
/// below it. Invariant: no interleaving prunes (or checkpoints past) a record that
/// is not yet durable — the bug the historical checkpoint/truncation race shipped.
#[test]
fn group_commit_watermark_never_prunes_undurable_records() {
    explore("group_commit_vs_prune", small_config(), || {
        struct WalState {
            next_seq: u64,
            /// Highest sequence covered by a completed group-commit fsync.
            durable_up_to: Option<u64>,
        }
        let wal = Arc::new(Mutex::new(WalState {
            next_seq: 0,
            durable_up_to: None,
        }));
        let watermark = Arc::new(Mutex::new(None::<u64>));
        let (sequenced_tx, sequenced_rx) = mpsc::channel::<u64>();
        let (checkpoint_tx, checkpoint_rx) = mpsc::channel::<u64>();

        // The sequencer: two epochs of two records each. The epoch's records become
        // visible (are sent to the worker) only after `durable_up_to` covers them.
        let appender = {
            let wal = Arc::clone(&wal);
            thread::spawn(move || {
                for _epoch in 0..2u64 {
                    let mut epoch_records = Vec::new();
                    for _ in 0..2 {
                        let mut state = wal.lock().expect("wal poisoned");
                        let seq = state.next_seq;
                        state.next_seq += 1;
                        epoch_records.push(seq);
                    }
                    // Group commit: fsync the epoch, then publish its records.
                    wal.lock().expect("wal poisoned").durable_up_to =
                        Some(*epoch_records.last().expect("epoch nonempty"));
                    for seq in epoch_records {
                        sequenced_tx.send(seq).expect("worker lives");
                    }
                }
            })
        };
        // The worker: applies completions in order; an epoch boundary (here: the
        // second record) cuts a checkpoint job at the current watermark.
        let worker = {
            let watermark = Arc::clone(&watermark);
            thread::spawn(move || {
                while let Ok(seq) = sequenced_rx.recv() {
                    *watermark.lock().expect("watermark poisoned") = Some(seq);
                    if seq % 2 == 1 {
                        checkpoint_tx.send(seq).expect("checkpointer lives");
                    }
                }
            })
        };
        // The checkpointer: writes the checkpoint, then prunes the WAL below the
        // checkpoint's watermark — asserting durability first, which is the pinned
        // invariant.
        let checkpointer = {
            let wal = Arc::clone(&wal);
            thread::spawn(move || {
                while let Ok(checkpoint_watermark) = checkpoint_rx.recv() {
                    let state = wal.lock().expect("wal poisoned");
                    assert!(
                        state
                            .durable_up_to
                            .is_some_and(|d| d >= checkpoint_watermark),
                        "checkpoint at {checkpoint_watermark} covers records past \
                         durable_up_to {:?}: pruning would lose acknowledged data",
                        state.durable_up_to
                    );
                }
            })
        };
        appender.join().unwrap();
        worker.join().unwrap();
        checkpointer.join().unwrap();
    });
}

/// Race 5: pipeline-depth backpressure, reactor-style. The old design parked a
/// reader thread; the reactor instead *suppresses read interest* at the depth
/// bound and re-processes assembler residue when responses flush. The protocol
/// under test: the reactor submits frames only while `in_flight < LIMIT`,
/// otherwise parks on its waker; workers deliver responses to the shared queue
/// and ring. Invariants: in-flight never exceeds the limit, and every schedule
/// drains all requests — a lost wakeup between "queue response" and "ring" (the
/// historical failure mode) would park the reactor forever and be reported as a
/// deadlock by the model.
#[test]
fn pipeline_backpressure_bounds_in_flight_and_drains() {
    explore("pipeline_backpressure", small_config(), || {
        const LIMIT: u64 = 2;
        const REQUESTS: u64 = 4;
        let waker = Arc::new(Doorbell::new());
        let responses: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let (work_tx, work_rx) = mpsc::channel::<u64>();

        // The worker pool: executes a command, delivers the response, rings.
        let worker = {
            let waker = Arc::clone(&waker);
            let responses = Arc::clone(&responses);
            thread::spawn(move || {
                while let Ok(reply) = work_rx.recv() {
                    responses.lock().expect("queue poisoned").push(reply);
                    waker.ring();
                }
            })
        };
        // The reactor: REQUESTS frames already sit in the assembler (bytes read
        // long ago — no readiness event will ever announce them again), so
        // progress past the depth bound *must* come from response wakeups.
        let mut next_frame = 0u64;
        let mut answered = 0u64;
        loop {
            let seen = waker.epoch();
            answered += responses.lock().expect("queue poisoned").drain(..).count() as u64;
            let in_flight = next_frame - answered;
            assert!(
                in_flight <= LIMIT,
                "reactor ran {in_flight} commands ahead (limit {LIMIT})"
            );
            while next_frame < REQUESTS && next_frame - answered < LIMIT {
                work_tx.send(next_frame).expect("worker lives");
                next_frame += 1;
            }
            if answered == REQUESTS {
                break;
            }
            waker.wait(seen);
        }
        drop(work_tx);
        worker.join().unwrap();
        assert_eq!(answered, REQUESTS);
    });
}

/// Race 6: accept backoff, reactor-style. A transient accept failure mutes the
/// listener's readiness interest — so a connection arriving during the backoff
/// produces *no* event — and a wait timeout re-arms it. Invariant: the muted
/// window never strands the connection (the re-arm re-checks the accept queue,
/// exactly like the real reactor's level-triggered re-registration), under every
/// schedule including stop-during-backoff.
#[test]
fn accept_backoff_rearms_without_stranding_connections() {
    explore("accept_backoff", small_config(), || {
        use std::time::Duration;

        let waker = Arc::new(Doorbell::new());
        let accept_queue: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));

        // A connection arrives while the listener is muted: it goes into the
        // kernel queue but rings nothing (interest is suppressed).
        let client = {
            let accept_queue = Arc::clone(&accept_queue);
            thread::spawn(move || {
                accept_queue.lock().expect("accept queue poisoned").push(7);
            })
        };
        let stopper = {
            let stop = Arc::clone(&stop);
            let waker = Arc::clone(&waker);
            thread::spawn(move || {
                stop.store(true, Ordering::SeqCst);
                waker.ring();
            })
        };

        // The reactor, starting in the muted state (a transient accept failure
        // just happened): waits with a timeout, re-arms, drains the queue.
        let mut accepted: Vec<u64> = Vec::new();
        let mut muted = true;
        loop {
            let seen = waker.epoch();
            if muted {
                // Under the model, the timeout fires once nothing else runs —
                // "the backoff elapsed".
                let _ = waker.wait_timeout(seen, Duration::from_millis(1));
                muted = false;
                // Re-arm: level-triggered registration re-reports a nonempty
                // accept queue, modeled as an immediate re-check.
                accepted.append(&mut accept_queue.lock().expect("accept queue poisoned"));
                continue;
            }
            if stop.load(Ordering::SeqCst) {
                break;
            }
            accepted.append(&mut accept_queue.lock().expect("accept queue poisoned"));
            waker.wait(seen);
        }
        client.join().unwrap();
        stopper.join().unwrap();
        // However the schedule fell, nothing is stranded: every connection is
        // either accepted or still visibly queued for the (stopped) kernel to
        // reset — the muted window itself lost nothing.
        let queued = accept_queue.lock().expect("accept queue poisoned").len();
        assert_eq!(
            accepted.len() + queued,
            1,
            "the backoff window lost a connection"
        );
    });
}

/// The long-exploration sweep for the slow CI lane: the same five scenarios under a
/// much larger schedule budget. `#[ignore]`d by default; run with
/// `cargo test -p kpg_server --features model -- --ignored`.
#[test]
#[ignore = "long exploration sweep; run in the slow CI lane"]
fn long_exploration_sweep() {
    let sweep = Config {
        schedules: 1024,
        exhaustive: Some(8192),
        change_points: 4,
        ..Config::default()
    };
    explore("sweep_arbitration", sweep, || {
        let core = Arc::new(ServerCore::new(1));
        let (client_a, responses_a) = core.register_client();
        let (client_b, responses_b) = core.register_client();
        let worker = {
            let core = Arc::clone(&core);
            thread::spawn(move || {
                let mut installed = HashSet::new();
                core.model_worker_loop(0, |command| stub_execute(&mut installed, command));
            })
        };
        let submit_a = {
            let core = Arc::clone(&core);
            thread::spawn(move || core.submit(client_a, 0, install("q")))
        };
        let submit_b = {
            let core = Arc::clone(&core);
            thread::spawn(move || core.submit(client_b, 0, install("q")))
        };
        submit_a.join().unwrap();
        submit_b.join().unwrap();
        core.disconnect(client_a);
        core.disconnect(client_b);
        core.close();
        worker.join().unwrap();
        let _ = responses_a.try_recv();
        let _ = responses_b.try_recv();
        assert_eq!(core.owner_of("q"), None, "every owner disconnected");
    });
}
