//! Durability integration tests: crash recovery over real server directories.
//!
//! Four failure families, each checked against the recovery contract — a restarted
//! server answers exactly as a server that executed some *prefix* of the acknowledged
//! command log, and a cleanly shut down server recovers everything:
//!
//! * clean shutdown / restart (in-process, through [`serve`]),
//! * `kill -9` mid-churn (a real child process, SIGKILL racing the epoch loop),
//! * the checkpoint/WAL-truncation race (manifest committed, stale segments live),
//! * torn WAL tails (the segment cut or bit-flipped at byte granularity).
//!
//! One consequence of the ownership model shows up throughout: a client that
//! disconnects *cleanly* uninstalls its queries, and a durable server logs those
//! uninstalls — so after a graceful shutdown the queries are durably gone (and the
//! tests verify that), while after a SIGKILL the installs survive unowned.

use kpg_sync::atomic::{AtomicU64, Ordering};
use kpg_sync::Arc;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command as ProcessCommand, Stdio};
use std::time::Duration;

use kpg_plan::{Command, Plan, ReduceKind, Row, Value};
use kpg_server::{serve, Client, ClientError, DurabilityConfig, Server, ServerConfig, ServerCore};
use kpg_wire::Response;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "kpg-recovery-{tag}-{}-{unique}",
        std::process::id()
    ))
}

fn row(values: &[u64]) -> Row {
    Row::from(values.iter().map(|&v| Value::UInt(v)).collect::<Vec<_>>())
}

fn durable_server(dir: &Path, checkpoint_every: u64, segment_bytes: u64) -> Server {
    let mut durability = DurabilityConfig::new(dir);
    durability.checkpoint_every = checkpoint_every;
    durability.segment_bytes = segment_bytes;
    serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            durability: Some(durability),
            ..ServerConfig::default()
        },
    )
    .expect("bind a durable loopback server")
}

/// Clean shutdown and restart: the recovered inputs answer exactly as before, accept
/// new updates, and the disconnecting client's uninstalls were themselves durable.
/// Small segments and an aggressive checkpoint cadence force rotation, background
/// checkpoints, and pruning along the way.
#[test]
fn clean_shutdown_restart_answers_identically() {
    let dir = temp_dir("clean");
    let mut server = durable_server(&dir, 4, 256);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.create_input("edges", Some(1)).expect("create input");
    client
        .install(
            "deg",
            Plan::source("edges").reduce(1, ReduceKind::Count),
            &[],
        )
        .expect("install deg");
    client
        .install("pairs", Plan::source("edges").distinct(), &[])
        .expect("install pairs");
    for epoch in 1u64..=6 {
        for i in 0..5u64 {
            client
                .update("edges", row(&[epoch % 3, epoch * 10 + i]), 1)
                .expect("update");
        }
        client.advance(epoch).expect("advance");
    }
    let deg_before = client.query("deg").expect("query deg");
    let pairs_before = client.query("pairs").expect("query pairs");
    assert!(!deg_before.is_empty());
    drop(client);
    server.shutdown();

    let mut server = durable_server(&dir, 4, 256);
    let mut client = Client::connect(server.local_addr()).expect("reconnect");
    // The client's clean disconnect uninstalled its queries, and that was logged too:
    // a recovered server must not resurrect them.
    for name in ["deg", "pairs"] {
        assert!(
            matches!(
                client.query(name),
                Err(ClientError::Plan { ref code, .. }) if code == "unknown-query"
            ),
            "{name} was durably uninstalled by the disconnect"
        );
    }
    // The *input* and its sealed history recovered in full: reinstalling the same
    // plans over it reproduces the pre-shutdown answers exactly.
    client
        .install(
            "deg",
            Plan::source("edges").reduce(1, ReduceKind::Count),
            &[],
        )
        .expect("reinstall deg");
    client
        .install("pairs", Plan::source("edges").distinct(), &[])
        .expect("reinstall pairs");
    assert_eq!(client.query("deg").expect("recovered deg"), deg_before);
    assert_eq!(
        client.query("pairs").expect("recovered pairs"),
        pairs_before
    );

    // The recovered input is live: new updates land and change the answers.
    client
        .update("edges", row(&[7, 777]), 1)
        .expect("new update");
    client.advance(7).expect("advance past recovery");
    assert_ne!(
        client.query("deg").expect("deg after new epoch"),
        deg_before
    );
    assert_eq!(
        client.query("pairs").expect("pairs after").len(),
        pairs_before.len() + 1
    );
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawns the standalone `kpg_server` binary on an ephemeral port with `dir` as its
/// durable directory and returns the child plus the address it printed.
fn spawn_server_process(dir: &Path, checkpoint_every: u64) -> (Child, std::net::SocketAddr) {
    let mut child = ProcessCommand::new(env!("CARGO_BIN_EXE_kpg_server"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--durable-dir",
            dir.to_str().expect("utf-8 temp path"),
            "--checkpoint-every",
            &checkpoint_every.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn kpg_server");
    let stdout = child.stdout.take().expect("child stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read the listening line");
    let addr = line
        .strip_prefix("kpg_server listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .parse()
        .expect("parse the listening address");
    (child, addr)
}

/// Runs one step of the step-tagged churn protocol: epoch `k` appends row `[k]` and
/// seals. The recovered visible state is therefore readable as a contiguous `1..=E`
/// prefix.
fn churn_step(client: &mut Client, step: u64) -> Result<(), ClientError> {
    client.update("steps", row(&[step]), 1)?;
    client.advance(step)
}

/// Asserts a "tally" answer is `[1..=len]` for some `floor <= len <= ceiling` — a
/// contiguous prefix covering at least every acknowledged epoch.
fn assert_step_prefix(rows: &[(Row, isize)], floor: u64, ceiling: u64) {
    let len = rows.len() as u64;
    assert!(
        (floor..=ceiling).contains(&len),
        "recovered {len} epochs, acknowledged {floor}, sent {ceiling}"
    );
    for (index, (r, diff)) in rows.iter().enumerate() {
        assert_eq!(*diff, 1, "distinct rows have unit multiplicity");
        assert_eq!(
            r,
            &row(&[index as u64 + 1]),
            "epochs form a contiguous prefix"
        );
    }
}

/// `kill -9` mid-churn: a real server process is SIGKILLed while epochs race through
/// it; the restarted process must answer with a contiguous epoch prefix that includes
/// everything acknowledged before the kill — and keep serving from there.
#[test]
fn kill_nine_mid_churn_recovers_every_acked_epoch() {
    let dir = temp_dir("kill9");
    let (mut child, addr) = spawn_server_process(&dir, 16);
    let mut client = Client::connect(addr).expect("connect to child");
    client.create_input("steps", None).expect("create input");
    client
        .install("tally", Plan::source("steps").distinct(), &[])
        .expect("install tally");

    // A known-durable prefix, then churn racing the killer thread: SIGKILL lands at
    // an arbitrary point in the epoch loop. Every completed `churn_step` was
    // acknowledged, hence fsynced, hence must survive.
    let mut acked = 0u64;
    let mut sent = 0u64;
    for step in 1..=40u64 {
        churn_step(&mut client, step).expect("pre-kill step");
        acked = step;
        sent = step;
    }
    let killer = kpg_sync::thread::spawn(move || {
        kpg_sync::thread::sleep(Duration::from_millis(30));
        child.kill().expect("SIGKILL the server");
        let _ = child.wait();
    });
    for step in 41..=100_000u64 {
        sent = step;
        match churn_step(&mut client, step) {
            Ok(()) => acked = step,
            // The kill landed: the socket died somewhere between send and ack.
            Err(_) => break,
        }
    }
    killer.join().expect("killer thread");
    drop(client);

    let (mut child, addr) = spawn_server_process(&dir, 16);
    let mut client = Client::connect(addr).expect("connect after restart");
    let rows = client.query("tally").expect("query recovered tally");
    assert_step_prefix(&rows, acked, sent);

    // The recovered server is a working server: churn continues where the log ended.
    let next = rows.len() as u64 + 1;
    churn_step(&mut client, next).expect("churn after recovery");
    let rows = client.query("tally").expect("query after new epoch");
    assert_eq!(rows.len() as u64, next);
    drop(client);
    child.kill().expect("tear down the second child");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// CI slow lane: repeated SIGKILL cycles at checkpoint-forcing scale — every restart
/// recovers a contiguous prefix no shorter than the previous round's acked epochs.
#[test]
#[ignore = "slow: repeated kill -9 cycles; run in the CI recovery lane"]
fn repeated_kill_nine_cycles_never_lose_acked_epochs() {
    let dir = temp_dir("kill9-slow");
    let mut resume_from = 0u64;
    for round in 0..5u32 {
        let (child, addr) = spawn_server_process(&dir, 64);
        let mut client = Client::connect(addr).expect("connect");
        if round == 0 {
            client.create_input("steps", None).expect("create input");
            client
                .install("tally", Plan::source("steps").distinct(), &[])
                .expect("install tally");
        } else {
            let rows = client.query("tally").expect("query recovered tally");
            assert_step_prefix(&rows, resume_from, u64::MAX);
            resume_from = rows.len() as u64;
        }
        let mut acked = resume_from;
        let mut killed = false;
        let mut child = child;
        for step in resume_from + 1..=resume_from + 400 {
            if step == resume_from + 350 && !killed {
                child.kill().expect("SIGKILL mid-churn");
                killed = true;
            }
            match churn_step(&mut client, step) {
                Ok(()) => acked = step,
                Err(_) => break,
            }
        }
        let _ = child.wait();
        resume_from = acked;
        drop(client);
    }
    let (mut child, addr) = spawn_server_process(&dir, 64);
    let mut client = Client::connect(addr).expect("final connect");
    let rows = client.query("tally").expect("final tally");
    assert_step_prefix(&rows, resume_from, u64::MAX);
    drop(client);
    child.kill().expect("tear down");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGTERM is a *graceful* shutdown: the process exits 0 after flushing the WAL and
/// writing a final checkpoint, and a restart recovers everything — including updates
/// of the still-open epoch that only the shutdown flush made durable.
#[cfg(unix)]
#[test]
fn sigterm_shuts_down_gracefully_and_preserves_open_updates() {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGTERM: i32 = 15;

    let dir = temp_dir("sigterm");
    let (mut child, addr) = spawn_server_process(&dir, 1_000_000);
    let mut client = Client::connect(addr).expect("connect");
    client.create_input("steps", None).expect("create input");
    for step in 1..=10u64 {
        churn_step(&mut client, step).expect("churn step");
    }
    // Open-epoch updates: acknowledged but not yet sealed by an advance. A SIGKILL
    // here could lose them (they are only group-committed at the next epoch); a
    // graceful SIGTERM must not.
    client.update("steps", row(&[11]), 1).expect("open update");
    drop(client);

    // SAFETY: `kill` is declared with libc's actual unix signature and is called
    // with a pid we own — `child` was spawned above and has not been waited on yet,
    // so the pid cannot have been recycled. Sending SIGTERM to it mutates no state
    // in this process.
    assert_eq!(
        unsafe { kill(child.id() as i32, SIGTERM) },
        0,
        "deliver SIGTERM"
    );
    let status = child.wait().expect("wait for graceful exit");
    assert!(
        status.success(),
        "graceful shutdown exits cleanly: {status:?}"
    );
    assert!(
        dir.join(kpg_store::MANIFEST_NAME).exists(),
        "the final checkpoint committed a manifest"
    );

    let (mut child, addr) = spawn_server_process(&dir, 1_000_000);
    let mut client = Client::connect(addr).expect("connect after restart");
    client
        .install("tally", Plan::source("steps").distinct(), &[])
        .expect("install over the recovered input");
    // Seal the recovered open epoch: the flushed update must appear.
    client.advance(11).expect("seal the recovered open epoch");
    let rows = client.query("tally").expect("query");
    assert_step_prefix(&rows, 11, 11);
    drop(client);
    child.kill().expect("tear down");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Drives a [`ServerCore`] directly (no TCP, no client disconnect): runs `commands`,
/// waits for every acknowledgement, closes the core *without* a final checkpoint —
/// leaving the directory exactly as a crash after the last group commit would: all
/// WAL segments, no manifest, and the installs never uninstalled.
fn run_core_without_checkpoint(dir: &Path, segment_bytes: u64, commands: &[Command]) {
    let mut durability = DurabilityConfig::new(dir);
    durability.checkpoint_every = u64::MAX;
    durability.segment_bytes = segment_bytes;
    let core = Arc::new(ServerCore::durable(1, false, durability).expect("open a durable core"));
    let engine = core.start();
    core.await_replayed();
    let (client, responses) = core.register_client();
    for (reply, command) in commands.iter().enumerate() {
        core.submit(client, reply as u64, command.clone());
    }
    for index in 0..commands.len() {
        let (_, response) = responses.recv().expect("engine response");
        assert!(
            matches!(response, Response::Ok),
            "command {index} was not acknowledged: {response:?}"
        );
    }
    // No disconnect: a disconnect would uninstall the owned queries, and this helper
    // exists precisely to leave them installed, as a crash would.
    core.close();
    engine.join().expect("engine drained");
}

/// Recovers `dir` through the full server path and returns the settled answer of
/// `tally`, or `None` if the recovered prefix ends before the install survived.
fn recover_and_query(dir: &Path) -> Option<Vec<(Row, isize)>> {
    let mut server = durable_server(dir, u64::MAX, 1 << 20);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let answer = match client.query("tally") {
        Ok(rows) => Some(rows),
        Err(ClientError::Plan { ref code, .. }) if code == "unknown-query" => None,
        Err(other) => panic!("recovery produced an unexpected error: {other:?}"),
    };
    drop(client);
    server.shutdown();
    answer
}

/// The step-tagged churn log used by the torn-tail and race tests: create, install,
/// then `epochs` update/advance pairs.
fn step_commands(epochs: u64) -> Vec<Command> {
    let mut commands = vec![
        Command::CreateInput {
            name: "steps".to_string(),
            key_arity: None,
        },
        Command::Install {
            name: "tally".to_string(),
            plan: Plan::source("steps").distinct(),
            locals: Vec::new(),
        },
    ];
    for step in 1..=epochs {
        commands.push(Command::Update {
            name: "steps".to_string(),
            row: row(&[step]),
            diff: 1,
        });
        commands.push(Command::AdvanceTime { epoch: step });
    }
    commands
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("create copy target");
    for entry in std::fs::read_dir(from).expect("read source dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), to.join(entry.file_name())).expect("copy file");
    }
}

/// The checkpoint/WAL-truncation race: a crash *between* the manifest rename and the
/// segment deletion leaves both the new checkpoint and the stale segments on disk.
/// Recovery from that state, from the WAL alone, and from the pruned state must all
/// answer identically — and a leftover manifest temp file must be ignored.
#[test]
fn checkpoint_truncation_race_recovers_from_either_state() {
    // Tiny segments: the 26-command log spans many, so pruning genuinely deletes.
    let wal_only = temp_dir("race-wal");
    run_core_without_checkpoint(&wal_only, 128, &step_commands(12));

    let reference_dir = temp_dir("race-ref");
    copy_dir(&wal_only, &reference_dir);
    let reference = recover_and_query(&reference_dir).expect("recover from the WAL alone");
    assert_step_prefix(&reference, 12, 12);

    // Produce the checkpointed state in a copy: recover + clean shutdown writes the
    // manifest and prunes — then graft the manifest and run files back next to the
    // *unpruned* segments, reconstructing the mid-race layout.
    let pruned = temp_dir("race-pruned");
    copy_dir(&wal_only, &pruned);
    let segments_before = std::fs::read_dir(&pruned)
        .expect("read dir")
        .filter(|e| {
            e.as_ref()
                .map(|e| e.file_name().to_string_lossy().starts_with("wal-"))
                .unwrap_or(false)
        })
        .count();
    {
        let mut server = durable_server(&pruned, u64::MAX, 128);
        server.shutdown();
    }
    let segments_after = std::fs::read_dir(&pruned)
        .expect("read dir")
        .filter(|e| {
            e.as_ref()
                .map(|e| e.file_name().to_string_lossy().starts_with("wal-"))
                .unwrap_or(false)
        })
        .count();
    assert!(
        segments_after < segments_before,
        "the final checkpoint prunes sealed segments ({segments_before} -> {segments_after})"
    );

    let mid_race = temp_dir("race-mid");
    copy_dir(&wal_only, &mid_race);
    for entry in std::fs::read_dir(&pruned).expect("read pruned dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name();
        let name_str = name.to_string_lossy().into_owned();
        if name_str == kpg_store::MANIFEST_NAME || name_str.ends_with(".run") {
            std::fs::copy(entry.path(), mid_race.join(&name)).expect("graft checkpoint");
        }
    }
    assert_eq!(
        recover_and_query(&mid_race).expect("recover mid-race"),
        reference,
        "manifest + stale segments recover identically"
    );
    assert_eq!(
        recover_and_query(&pruned).expect("recover post-prune"),
        reference,
        "the pruned state recovers identically"
    );

    // A crash *before* the rename leaves only a temp file: it must be ignored.
    let pre_rename = temp_dir("race-tmp");
    copy_dir(&wal_only, &pre_rename);
    std::fs::write(
        pre_rename.join(format!("{}.tmp", kpg_store::MANIFEST_NAME)),
        b"half-written manifest bytes",
    )
    .expect("plant a temp manifest");
    assert_eq!(
        recover_and_query(&pre_rename).expect("recover past the temp file"),
        reference,
        "an uncommitted manifest temp file is inert"
    );

    for dir in [&wal_only, &reference_dir, &pruned, &mid_race, &pre_rename] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// The boundaries of every WAL record in `segment`, decoded from the framing alone:
/// `ends[i]` is the end of the `i`-th record, so truncating at `ends[i]` keeps
/// exactly `i + 1` complete records.
fn record_ends(segment: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut offset = 0usize;
    while offset + 8 <= segment.len() {
        let len =
            u32::from_le_bytes(segment[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        offset += 8 + len;
        assert!(offset <= segment.len(), "the clean log has no torn tail");
        ends.push(offset);
    }
    ends
}

/// What a recovered server must answer when exactly `records` complete WAL records
/// survive, under the [`step_commands`] log: `None` before the install lands,
/// otherwise the epochs sealed by the surviving `AdvanceTime`s.
fn expected_prefix_answer(commands: &[Command], records: usize) -> Option<Vec<(Row, isize)>> {
    if records < 2 {
        return None;
    }
    let sealed = commands[..records]
        .iter()
        .filter(|command| matches!(command, Command::AdvanceTime { .. }))
        .count() as u64;
    Some((1..=sealed).map(|step| (row(&[step]), 1)).collect())
}

/// Torn writes: the WAL segment truncated at every byte of its last two records and
/// at every earlier record boundary, then the final record bit-flipped at every byte.
/// Recovery must never panic and must land on exactly the longest valid record
/// prefix.
#[test]
fn torn_wal_tails_recover_the_longest_valid_prefix() {
    let base = temp_dir("torn-base");
    let commands = step_commands(4);
    run_core_without_checkpoint(&base, 8 << 20, &commands);
    let segment_name = "wal-0000000000000000.log";
    let segment = std::fs::read(base.join(segment_name)).expect("read the sealed segment");
    let ends = record_ends(&segment);
    assert_eq!(ends.len(), commands.len(), "one WAL record per command");

    // Every byte of the last two records covers cuts inside the length prefix, the
    // CRC, the sequence number, and the payload; earlier boundaries cover whole-record
    // prefixes (including the empty log).
    let tail_start = ends[ends.len() - 3];
    let mut cuts: Vec<usize> = (tail_start..=segment.len()).collect();
    cuts.extend(ends.iter().copied());
    cuts.push(0);
    cuts.sort_unstable();
    cuts.dedup();
    for cut in cuts {
        let dir = temp_dir("torn-cut");
        std::fs::create_dir_all(&dir).expect("create torn dir");
        std::fs::write(dir.join(segment_name), &segment[..cut]).expect("write torn segment");
        let surviving = ends.iter().filter(|&&end| end <= cut).count();
        assert_eq!(
            recover_and_query(&dir),
            expected_prefix_answer(&commands, surviving),
            "truncation at byte {cut} ({surviving} surviving records)"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Bit flips anywhere in the last record invalidate exactly that record: the CRC
    // (or the framing bounds) rejects it and recovery ends one record earlier.
    let last_start = ends[ends.len() - 2];
    for position in last_start..segment.len() {
        let dir = temp_dir("torn-flip");
        std::fs::create_dir_all(&dir).expect("create flip dir");
        let mut corrupted = segment.clone();
        corrupted[position] ^= 0x40;
        std::fs::write(dir.join(segment_name), &corrupted).expect("write flipped segment");
        assert_eq!(
            recover_and_query(&dir),
            expected_prefix_answer(&commands, ends.len() - 1),
            "bit flip at byte {position}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base);
}
