//! Socket-level session tests: concurrent clients over a loopback server, checked
//! against the determinism contract — the server's answers equal a direct
//! single-`Manager` replay of its merged command log — plus disconnect ownership and
//! wire-error resynchronization on a real TCP stream.

use std::collections::HashMap;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use kpg_dataflow::{execute, Config};
use kpg_plan::{Command, Manager, Plan, ReduceKind, Response as PlanResponse, Row, Value};
use kpg_server::{serve, Client, ClientError, Server, ServerConfig};
use kpg_wire::{read_frame, write_frame, Frame, Response, WireCodec};

fn row(values: &[u64]) -> Row {
    Row::from(values.iter().map(|&v| Value::UInt(v)).collect::<Vec<_>>())
}

fn local_server(workers: usize) -> Server {
    serve(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            // These tests replay the merged log, so keep the full history.
            retain_log: true,
            ..ServerConfig::default()
        },
    )
    .expect("bind a loopback server")
}

/// Replays `commands` — the server's merged log — on a single fresh `Manager`,
/// returning the answer of every `Query` in log order.
fn direct_replay(commands: Vec<Command>) -> Vec<(String, Vec<(Row, isize)>)> {
    let mut results = execute(Config::new(1), move |worker| {
        let mut manager = Manager::new();
        let mut answers = Vec::new();
        for command in commands.clone() {
            if let Command::Query { name } = &command {
                manager.settle(worker);
                let result = manager.execute(worker, command.clone());
                if let Ok(PlanResponse::Rows(rows)) = result {
                    answers.push((name.clone(), rows));
                }
            } else {
                // Failures are part of the replay (arbitration may have let some
                // commands lose); the manager's state is unchanged by them.
                let _ = manager.execute(worker, command);
            }
        }
        answers
    });
    results.remove(0)
}

/// Two clients interleaving installs, updates, and queries on a shared input: the
/// settled answers must equal a single-`Manager` replay of the merged command log.
#[test]
fn concurrent_clients_match_a_direct_replay_of_the_merged_log() {
    let mut server = local_server(2);
    let addr = server.local_addr();

    let mut setup = Client::connect(addr).expect("connect setup client");
    setup.create_input("edges", Some(1)).expect("create input");

    let writer = |queries: Vec<(&'static str, Plan)>, updates: Vec<(u64, u64)>| {
        let mut client = Client::connect(addr).expect("connect session client");
        move || {
            for (name, plan) in queries {
                client.install(name, plan, &[]).expect("install");
            }
            // Pipeline the updates: send the batch, then collect one Ok per frame.
            let mut sent = 0usize;
            for (src, dst) in updates {
                client
                    .send(&Command::Update {
                        name: "edges".to_string(),
                        row: row(&[src, dst]),
                        diff: 1,
                    })
                    .expect("send update");
                sent += 1;
            }
            for _ in 0..sent {
                assert_eq!(client.receive().expect("update ack"), Response::Ok);
            }
            client
        }
    };

    // Disjoint update sets; both land in the shared epoch-0 batch, so any interleave
    // is equivalent — what makes the concurrent phase deterministic up to log order.
    let updates_a: Vec<(u64, u64)> = (0..120).map(|i| (i % 20, (i * 7) % 30)).collect();
    let updates_b: Vec<(u64, u64)> = (0..120).map(|i| (40 + i % 15, (i * 11) % 30)).collect();
    let thread_a = kpg_sync::thread::spawn(writer(
        vec![(
            "degrees",
            Plan::source("edges").reduce(1, ReduceKind::Count),
        )],
        updates_a,
    ));
    let thread_b = kpg_sync::thread::spawn(writer(
        vec![
            (
                "dst-degrees",
                Plan::source("edges")
                    .map(vec![kpg_plan::Expr::col(1), kpg_plan::Expr::col(0)])
                    .reduce(1, ReduceKind::Count),
            ),
            ("pairs", Plan::source("edges").distinct()),
        ],
        updates_b,
    ));
    let mut client_a = thread_a.join().expect("client A thread");
    let thread_b_client = thread_b.join().expect("client B thread");
    drop(thread_b_client); // B departs; its queries were installed but not queried yet.

    // B owned "dst-degrees" and "pairs": they retire with it. Wait for the cleanup
    // to land before the deterministic tail phase.
    wait_until(|| {
        matches!(
            client_a.query("pairs"),
            Err(ClientError::Plan { ref code, .. }) if code == "unknown-query"
        )
    });

    setup.advance(1).expect("advance");
    let degrees = client_a.query("degrees").expect("query degrees");
    assert!(!degrees.is_empty());

    // The merged log, replayed on one Manager, answers every query identically.
    let log = server.core().command_log();
    assert!(log
        .iter()
        .any(|command| matches!(command, Command::Uninstall { name } if name == "dst-degrees")));
    let replayed: HashMap<String, Vec<(Row, isize)>> = direct_replay(log).into_iter().collect();
    assert_eq!(replayed.get("degrees"), Some(&degrees));

    server.shutdown();
}

/// A departing client takes its own queries with it — and nothing it doesn't own:
/// not another client's query whose name it failed to claim, not the shared input.
#[test]
fn disconnect_uninstalls_only_what_the_client_owns() {
    let mut server = local_server(1);
    let addr = server.local_addr();

    let mut alice = Client::connect(addr).expect("connect alice");
    alice.create_input("edges", Some(1)).expect("create input");
    for (src, dst) in [(1u64, 2u64), (2, 3), (3, 4)] {
        alice.update("edges", row(&[src, dst]), 1).expect("update");
    }
    alice
        .install(
            "shared-name",
            Plan::source("edges").reduce(1, ReduceKind::Count),
            &[],
        )
        .expect("install alice's query");
    alice.advance(1).expect("advance");
    let before = alice.query("shared-name").expect("query");
    assert_eq!(before.len(), 3);

    let mut bob = Client::connect(addr).expect("connect bob");
    // Bob tries to take the same name: rejected, and crucially the failed install
    // must not let Bob's disconnect uninstall Alice's query.
    let duplicate = bob.install("shared-name", Plan::source("edges").distinct(), &[]);
    assert_eq!(
        duplicate
            .err()
            .and_then(|e| e.plan_code().map(String::from)),
        Some("duplicate-query".to_string())
    );
    bob.install("bobs-query", Plan::source("edges").distinct(), &[])
        .expect("install bob's query");
    assert_eq!(bob.query("bobs-query").expect("bob queries").len(), 3);
    drop(bob);

    // Bob's query goes; Alice's query and the shared input stay.
    wait_until(|| {
        matches!(
            alice.query("bobs-query"),
            Err(ClientError::Plan { ref code, .. }) if code == "unknown-query"
        )
    });
    assert_eq!(
        alice.query("shared-name").expect("alice still served"),
        before
    );
    alice
        .update("edges", row(&[9, 9]), 1)
        .expect("input still live");
    alice.advance(2).expect("advance");
    assert_eq!(alice.query("shared-name").expect("query").len(), 4);

    server.shutdown();
}

/// Wire-level garbage on a real socket: the server answers `WireError` for the bad
/// frame (oversized or undecodable) and the connection keeps working — the next
/// frames get their real responses, in order.
#[test]
fn wire_errors_resync_the_tcp_stream() {
    let mut server = serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            frame_limit: 1024,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect raw");

    // 1: an undecodable payload. 2: an oversized frame (over the server's 1 KiB
    // limit). 3: a valid command. One response per frame, in order.
    write_frame(&mut stream, &[0xFF, 0xAA, 0x55]).expect("send garbage");
    write_frame(&mut stream, &vec![0u8; 4096]).expect("send oversized");
    write_frame(
        &mut stream,
        &Command::CreateInput {
            name: "edges".to_string(),
            key_arity: None,
        }
        .encode(),
    )
    .expect("send valid command");

    let mut read_response = || -> Response {
        match read_frame(&mut stream, 1 << 20).expect("read response") {
            Some(Frame::Payload(payload)) => Response::decode(&payload).expect("decode response"),
            other => panic!("expected a response frame, got {other:?}"),
        }
    };
    assert!(matches!(read_response(), Response::WireError { .. }));
    let oversized = read_response();
    match &oversized {
        Response::WireError { message } => {
            assert!(message.contains("4096"), "mentions the length: {message}");
        }
        other => panic!("expected WireError for the oversized frame, got {other:?}"),
    }
    assert_eq!(read_response(), Response::Ok);

    server.shutdown();
}

/// A client that pipelines far past the server's in-flight cap without reading a
/// single response must neither deadlock nor lose a reply: the server's reader stalls
/// (TCP backpressure) instead of buffering unboundedly, and once the client drains,
/// every command has exactly one in-order response.
#[test]
fn deep_pipelining_hits_backpressure_not_unbounded_buffering() {
    let mut server = local_server(1);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.create_input("edges", None).expect("create input");

    let total = 4_000u64;
    for index in 0..total {
        client
            .send(&Command::Update {
                name: "edges".to_string(),
                row: row(&[index % 97, index % 89]),
                diff: 1,
            })
            .expect("pipelined send");
    }
    for index in 0..total {
        assert_eq!(
            client
                .receive()
                .unwrap_or_else(|e| panic!("response {index}: {e}")),
            Response::Ok
        );
    }
    // The session is still fully usable afterwards.
    client.advance(1).expect("advance");
    client
        .install(
            "deg",
            Plan::source("edges").reduce(1, ReduceKind::Count),
            &[],
        )
        .expect("install");
    server.shutdown();
}

/// Polls `condition` (e.g. "the disconnect cleanup has executed") with a deadline.
fn wait_until(mut condition: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if condition() {
            return;
        }
        assert!(Instant::now() < deadline, "condition not reached in time");
        kpg_sync::thread::sleep(Duration::from_millis(10));
    }
}
