//! Little-endian primitive framing shared by the WAL, run, and manifest formats.
//!
//! Readers are *total*: they return `None` on truncation instead of panicking, which
//! is what lets recovery code treat any undecodable suffix as a torn tail.

/// Appends a `u32` little-endian.
pub fn put_u32(bytes: &mut Vec<u8>, value: u32) {
    bytes.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(bytes: &mut Vec<u8>, value: u64) {
    bytes.extend_from_slice(&value.to_le_bytes());
}

/// Appends a length-prefixed byte string.
pub fn put_bytes(bytes: &mut Vec<u8>, payload: &[u8]) {
    put_u32(bytes, payload.len() as u32);
    bytes.extend_from_slice(payload);
}

/// Reads a `u32` little-endian at `*pos`, advancing it.
pub fn get_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let slice = bytes.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes(slice.try_into().expect("4-byte slice")))
}

/// Reads a `u64` little-endian at `*pos`, advancing it.
pub fn get_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let slice = bytes.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes(slice.try_into().expect("8-byte slice")))
}

/// Reads a length-prefixed byte string at `*pos`, advancing it.
pub fn get_bytes(bytes: &[u8], pos: &mut usize) -> Option<Vec<u8>> {
    let length = get_u32(bytes, pos)? as usize;
    let slice = bytes.get(*pos..*pos + length)?;
    *pos += length;
    Some(slice.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_rejects_truncation() {
        let mut buffer = Vec::new();
        put_u32(&mut buffer, 7);
        put_u64(&mut buffer, u64::MAX - 3);
        put_bytes(&mut buffer, b"payload");
        let mut pos = 0;
        assert_eq!(get_u32(&buffer, &mut pos), Some(7));
        assert_eq!(get_u64(&buffer, &mut pos), Some(u64::MAX - 3));
        assert_eq!(get_bytes(&buffer, &mut pos), Some(b"payload".to_vec()));
        assert_eq!(pos, buffer.len());
        for cut in 0..buffer.len() {
            let mut pos = 0;
            let short = &buffer[..cut];
            let decoded = (
                get_u32(short, &mut pos),
                get_u64(short, &mut pos),
                get_bytes(short, &mut pos),
            );
            assert!(
                decoded.2.is_none(),
                "truncation at {cut} still decoded fully: {decoded:?}"
            );
        }
    }
}
