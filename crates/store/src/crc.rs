//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), in tree.
//!
//! Every durable frame this crate writes — WAL records, run-file blocks and indices,
//! the manifest — carries a CRC32 of its payload, so torn or bit-flipped tails are
//! *detected* and recovery can truncate to the longest valid prefix instead of
//! replaying garbage. The table is computed at compile time; no dependency, no
//! runtime initialization.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut index = 0;
    while index < 256 {
        let mut crc = index as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[index] = crc;
        index += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for byte in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ *byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Standard check vectors for CRC-32/ISO-HDLC.
    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let payload = b"a record that must arrive intact".to_vec();
        let reference = crc32(&payload);
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut corrupt = payload.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&corrupt),
                    reference,
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }
}
