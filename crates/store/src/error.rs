//! Typed storage failures and the bounded retry/backoff policy.
//!
//! Runtime I/O paths used to `.expect(...)` their way past disk errors; this module
//! gives them vocabulary instead. Every failure is classified as either
//! [`FaultClass::Transient`] (worth a bounded number of retries with doubling
//! backoff — a generic `EIO`, an interrupted call) or [`FaultClass::Fatal`]
//! (retrying cannot help: the disk is full, the data is corrupt, the path is gone).
//! [`RetryPolicy::run`] drives a fallible operation through that classification and
//! hands back a [`StoreError`] carrying the operation name, the class, and how many
//! attempts were burned — which is exactly what the server needs to decide between
//! "try again later" and "enter degraded read-only mode".

use std::fmt;
use std::io;
use std::time::Duration;

/// How a storage failure should be treated by retry logic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// Plausibly temporary; a bounded retry with backoff may clear it.
    Transient,
    /// Retrying cannot help: resource exhaustion, corruption, or a missing or
    /// unwritable path. Escalate immediately.
    Fatal,
}

/// Classifies an I/O error. Disk-full (`ENOSPC`/`EDQUOT`), read-only filesystems,
/// corruption (`InvalidData`), missing paths, and permission failures are
/// [`FaultClass::Fatal`]; everything else — including the generic `EIO` a dying disk
/// produces — is [`FaultClass::Transient`] and worth a bounded retry.
pub fn classify(error: &io::Error) -> FaultClass {
    match error.kind() {
        io::ErrorKind::StorageFull
        | io::ErrorKind::QuotaExceeded
        | io::ErrorKind::ReadOnlyFilesystem
        | io::ErrorKind::InvalidData
        | io::ErrorKind::NotFound
        | io::ErrorKind::PermissionDenied
        | io::ErrorKind::Unsupported => FaultClass::Fatal,
        _ => match error.raw_os_error() {
            // ENOSPC / EROFS surfaced under an unmapped kind on older platforms.
            Some(28 | 30) => FaultClass::Fatal,
            _ => FaultClass::Transient,
        },
    }
}

/// A storage operation that failed past its retry budget.
#[derive(Debug)]
pub struct StoreError {
    /// What was being attempted, e.g. `"WAL group commit"`.
    pub op: &'static str,
    /// The classification of the final error.
    pub class: FaultClass,
    /// How many attempts were made (≥ 1).
    pub attempts: u32,
    /// The final underlying error.
    pub source: io::Error,
}

impl fmt::Display for StoreError {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        let class = match self.class {
            FaultClass::Transient => "transient",
            FaultClass::Fatal => "fatal",
        };
        write!(
            formatter,
            "{} failed after {} attempt{} ({class}): {}",
            self.op,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.source
        )
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// A bounded retry policy: up to `attempts` tries, sleeping `initial_backoff` after
/// the first failure and doubling (capped at `max_backoff`) between subsequent ones.
/// Fatal errors ([`classify`]) are never retried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts, including the first (values below 1 behave as 1).
    pub attempts: u32,
    /// Sleep before the first retry.
    pub initial_backoff: Duration,
    /// Backoff ceiling for the doubling schedule.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no sleeping).
    pub const fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Runs `attempt` until it succeeds, fails fatally, or exhausts the budget.
    /// Transient failures sleep the current backoff (through the sync facade, so the
    /// model scheduler sees them) before the next try.
    pub fn run<T>(
        &self,
        op: &'static str,
        mut attempt: impl FnMut() -> io::Result<T>,
    ) -> Result<T, StoreError> {
        let allowed = self.attempts.max(1);
        let mut backoff = self.initial_backoff;
        let mut tried = 0;
        loop {
            tried += 1;
            match attempt() {
                Ok(value) => return Ok(value),
                Err(source) => {
                    let class = classify(&source);
                    if class == FaultClass::Fatal || tried >= allowed {
                        return Err(StoreError {
                            op,
                            class,
                            attempts: tried,
                            source,
                        });
                    }
                    if !backoff.is_zero() {
                        kpg_sync::thread::sleep(backoff);
                        backoff = (backoff * 2).min(self.max_backoff);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    #[test]
    fn classification_separates_exhaustion_from_generic_io() {
        assert_eq!(
            classify(&io::Error::new(io::ErrorKind::StorageFull, "full")),
            FaultClass::Fatal
        );
        assert_eq!(
            classify(&io::Error::new(io::ErrorKind::InvalidData, "corrupt")),
            FaultClass::Fatal
        );
        assert_eq!(
            classify(&io::Error::from_raw_os_error(28)),
            FaultClass::Fatal
        );
        assert_eq!(classify(&io::Error::other("eio")), FaultClass::Transient);
        assert_eq!(
            classify(&io::Error::new(io::ErrorKind::TimedOut, "slow disk")),
            FaultClass::Transient
        );
    }

    #[test]
    fn transient_failures_use_the_whole_budget() {
        let mut calls = 0;
        let result: Result<(), _> = quick(3).run("op", || {
            calls += 1;
            Err(io::Error::other("eio"))
        });
        let error = result.unwrap_err();
        assert_eq!(calls, 3);
        assert_eq!(error.attempts, 3);
        assert_eq!(error.class, FaultClass::Transient);
    }

    #[test]
    fn a_late_success_is_a_success() {
        let mut calls = 0;
        let result = quick(3).run("op", || {
            calls += 1;
            if calls < 3 {
                Err(io::Error::other("eio"))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(result.unwrap(), 3);
    }

    #[test]
    fn fatal_failures_escalate_immediately() {
        let mut calls = 0;
        let result: Result<(), _> = quick(5).run("op", || {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::StorageFull, "full"))
        });
        let error = result.unwrap_err();
        assert_eq!(calls, 1);
        assert_eq!(error.attempts, 1);
        assert_eq!(error.class, FaultClass::Fatal);
        assert!(error.to_string().contains("after 1 attempt (fatal)"));
    }
}
