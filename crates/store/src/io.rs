//! The storage I/O seam: every file operation the durability layer performs goes
//! through this module instead of `std::fs` directly.
//!
//! In normal builds the functions here are `#[inline]` passthroughs — the only
//! additions over raw `std::fs` are the blocking annotations the sync facade wants
//! around fsyncs. Under `--features faults` the same seam becomes a deterministic
//! fault injector: a [`faults::FaultPlan`] — installed programmatically by tests or
//! from the `KPG_FAULT_PLAN` environment variable, mirroring the `KPG_MODEL_*`
//! replay knobs — decides per operation whether to fail the Nth fsync, short-write
//! K bytes, report `ENOSPC` after a cumulative write budget, fail a rename, or
//! error a read. Plans count operations deterministically, can be scoped to a path
//! prefix (so parallel tests never see each other's faults), and can trace every
//! decision to stderr so any failure is replayable from its printed plan.
//!
//! Instrumented operations: open, read, write (including `set_len`), fsync
//! (`sync_data`/`sync_all`/directory sync), rename, and file removal. Directory
//! *listing* and creation are deliberately uninstrumented — they feed recovery-time
//! enumeration whose failures are indistinguishable from an unreadable store.

use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The classes of instrumented file operation, as counted by fault plans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Opening or creating a file.
    Open,
    /// Reading bytes (or a whole file).
    Read,
    /// Writing bytes, including truncation via `set_len`.
    Write,
    /// `fsync`/`fdatasync` of a file or directory.
    Fsync,
    /// Renaming a file (the manifest commit point).
    Rename,
    /// Removing a file (WAL pruning, superseded checkpoint cleanup).
    Remove,
}

/// Every [`OpKind`], in counting order.
pub const OP_KINDS: [OpKind; 6] = [
    OpKind::Open,
    OpKind::Read,
    OpKind::Write,
    OpKind::Fsync,
    OpKind::Rename,
    OpKind::Remove,
];

impl OpKind {
    /// The spelling used by plan grammar and traces.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Open => "open",
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Fsync => "fsync",
            OpKind::Rename => "rename",
            OpKind::Remove => "remove",
        }
    }

    #[cfg(feature = "faults")]
    fn index(self) -> usize {
        self as usize
    }

    /// Parses a plan-grammar label; inverse of [`OpKind::label`].
    pub fn parse(text: &str) -> Option<OpKind> {
        OP_KINDS.into_iter().find(|kind| kind.label() == text)
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, formatter: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        formatter.write_str(self.label())
    }
}

/// A file handle whose operations route through the seam. Wraps `std::fs::File`,
/// remembering its path so injected faults can be filtered and traced per file.
pub struct File {
    inner: fs::File,
    path: PathBuf,
}

impl File {
    fn wrap(inner: fs::File, path: &Path) -> File {
        File {
            inner,
            path: path.to_path_buf(),
        }
    }

    /// The path this handle was opened with.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `fdatasync`: data (and size) durable, non-size metadata maybe not.
    pub fn sync_data(&self) -> io::Result<()> {
        kpg_sync::blocking::annotate("fsync");
        check(OpKind::Fsync, &self.path)?;
        self.inner.sync_data()
    }

    /// `fsync`: data and all metadata durable.
    pub fn sync_all(&self) -> io::Result<()> {
        kpg_sync::blocking::annotate("fsync");
        check(OpKind::Fsync, &self.path)?;
        self.inner.sync_all()
    }

    /// Truncates (or extends) the file. Counts as a write for fault purposes.
    pub fn set_len(&self, len: u64) -> io::Result<()> {
        check(OpKind::Write, &self.path)?;
        self.inner.set_len(len)
    }
}

impl Read for File {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        check(OpKind::Read, &self.path)?;
        self.inner.read(buf)
    }
}

impl Write for File {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        #[cfg(feature = "faults")]
        match faults::check_write(&self.path, buf.len() as u64) {
            faults::WriteVerdict::Full => {}
            faults::WriteVerdict::Short(keep) => {
                // A deterministic torn write: persist a prefix, then report failure.
                let keep = usize::try_from(keep).unwrap_or(usize::MAX).min(buf.len());
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                }
                return Err(faults::injected_error(
                    OpKind::Write,
                    &faults::FaultEffect::Short(keep as u64),
                ));
            }
            faults::WriteVerdict::Fail(error) => return Err(error),
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Seek for File {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
}

/// Creates `path` (truncating any existing file) for writing.
#[inline]
pub fn create(path: impl AsRef<Path>) -> io::Result<File> {
    let path = path.as_ref();
    check(OpKind::Open, path)?;
    Ok(File::wrap(fs::File::create(path)?, path))
}

/// Opens `path` read-only.
#[inline]
pub fn open_read(path: impl AsRef<Path>) -> io::Result<File> {
    let path = path.as_ref();
    check(OpKind::Open, path)?;
    Ok(File::wrap(fs::File::open(path)?, path))
}

/// Opens `path` for appending (must exist).
#[inline]
pub fn open_append(path: impl AsRef<Path>) -> io::Result<File> {
    let path = path.as_ref();
    check(OpKind::Open, path)?;
    let file = fs::OpenOptions::new().append(true).open(path)?;
    Ok(File::wrap(file, path))
}

/// Opens `path` for positional writing without truncation (must exist).
#[inline]
pub fn open_write(path: impl AsRef<Path>) -> io::Result<File> {
    let path = path.as_ref();
    check(OpKind::Open, path)?;
    let file = fs::OpenOptions::new().write(true).open(path)?;
    Ok(File::wrap(file, path))
}

/// Reads the whole of `path`, as one counted read operation.
#[inline]
pub fn read(path: impl AsRef<Path>) -> io::Result<Vec<u8>> {
    let path = path.as_ref();
    check(OpKind::Read, path)?;
    fs::read(path)
}

/// Renames `from` to `to` (the manifest's atomic commit point).
#[inline]
pub fn rename(from: impl AsRef<Path>, to: impl AsRef<Path>) -> io::Result<()> {
    check(OpKind::Rename, from.as_ref())?;
    fs::rename(from, to)
}

/// Removes the file at `path`.
#[inline]
pub fn remove_file(path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    check(OpKind::Remove, path)?;
    fs::remove_file(path)
}

/// Fsyncs a directory, making created/renamed/removed names under it durable. Some
/// filesystems refuse to open directories for writing; read-only suffices for fsync
/// on the platforms we target.
#[inline]
pub fn sync_dir(dir: impl AsRef<Path>) -> io::Result<()> {
    let dir = dir.as_ref();
    kpg_sync::blocking::annotate("fsync");
    check(OpKind::Fsync, dir)?;
    fs::File::open(dir)?.sync_all()
}

#[cfg(feature = "faults")]
#[inline]
fn check(kind: OpKind, path: &Path) -> io::Result<()> {
    faults::check(kind, path)
}

#[cfg(not(feature = "faults"))]
#[inline(always)]
fn check(_kind: OpKind, _path: &Path) -> io::Result<()> {
    Ok(())
}

/// The deterministic fault injector behind the seam (only with `--features faults`).
///
/// A [`FaultPlan`] is a list of [`FaultSpec`]s plus an optional cumulative write
/// budget, an optional path-prefix scope, and a trace flag. The textual grammar —
/// accepted by [`FaultPlan::parse`] and round-tripped by its `Display` — is a
/// semicolon-separated list of items:
///
/// ```text
/// item    := KIND [ '%' SUBSTR ] '@' RANGE '=' EFFECT
///          | 'budget:' BYTES
///          | 'trace'
/// KIND    := open | read | write | fsync | rename | remove
/// RANGE   := N          (exactly the Nth matching operation, 1-based)
///          | N..        (the Nth and every later one — a permanent fault)
///          | N..M       (half-open: occurrences N, N+1, …, M-1)
/// EFFECT  := eio | enospc | short:K
/// ```
///
/// `fsync@3=eio` fails only the third fsync; `fsync%wal-@1..=eio` fails every fsync
/// of a path containing `wal-`; `write@2=short:7` persists 7 bytes of the second
/// write then errors; `budget:4096` makes cumulative writes past 4 KiB fail with
/// `ENOSPC` (and stay failing — a full disk does not drain itself). Specs with a
/// `%` filter keep their own occurrence counter; unfiltered specs share the plan's
/// per-kind counter. The first matching spec wins.
///
/// Plans installed via [`FaultPlan::install`] are active until their [`FaultGuard`]
/// drops; multiple plans may be active (each counts independently; the first
/// injecting plan wins). `KPG_FAULT_PLAN` installs a process-wide plan at first use,
/// `KPG_FAULT_SCOPE` confines it to a path prefix, and `KPG_FAULT_TRACE=1` turns on
/// decision tracing (with or without a plan), each line shaped like
/// `[kpg-fault] fsync#3 /path/wal-0.log -> eio`.
#[cfg(feature = "faults")]
pub mod faults {
    use super::{OpKind, OP_KINDS};
    use std::fmt;
    use std::io;
    use std::path::{Path, PathBuf};

    use kpg_sync::{Mutex, OnceLock, PoisonError};

    /// What an injected fault does to its operation.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum FaultEffect {
        /// A generic I/O error (transient class).
        Eio,
        /// `ENOSPC` (fatal class).
        Enospc,
        /// For writes: persist this many bytes, then fail. On other kinds this
        /// degenerates to an I/O error.
        Short(u64),
    }

    impl fmt::Display for FaultEffect {
        fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                FaultEffect::Eio => formatter.write_str("eio"),
                FaultEffect::Enospc => formatter.write_str("enospc"),
                FaultEffect::Short(keep) => write!(formatter, "short:{keep}"),
            }
        }
    }

    /// One injection rule; see the module docs for the grammar.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct FaultSpec {
        /// The operation kind this rule matches.
        pub kind: OpKind,
        /// Optional path substring filter. Filtered specs count their own matches.
        pub filter: Option<String>,
        /// First matching occurrence to inject (1-based).
        pub from: u64,
        /// One past the last occurrence to inject; `None` = permanent.
        pub to: Option<u64>,
        /// What to do to matched operations.
        pub effect: FaultEffect,
    }

    impl fmt::Display for FaultSpec {
        fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(formatter, "{}", self.kind)?;
            if let Some(filter) = &self.filter {
                write!(formatter, "%{filter}")?;
            }
            match self.to {
                Some(to) if to == self.from + 1 => write!(formatter, "@{}", self.from)?,
                Some(to) => write!(formatter, "@{}..{to}", self.from)?,
                None => write!(formatter, "@{}..", self.from)?,
            }
            write!(formatter, "={}", self.effect)
        }
    }

    /// A deterministic injection plan; see the module docs for semantics.
    #[derive(Clone, Debug, Default, PartialEq, Eq)]
    pub struct FaultPlan {
        /// The injection rules, first match wins.
        pub specs: Vec<FaultSpec>,
        /// Only operations on paths starting with this prefix are visible.
        pub scope: Option<PathBuf>,
        /// Cumulative write-byte budget; writes past it fail `ENOSPC`, permanently.
        pub write_budget: Option<u64>,
        /// Trace every visible operation's decision to stderr.
        pub trace: bool,
    }

    impl FaultPlan {
        /// A plan that injects nothing (useful scoped + traced, to enumerate the
        /// fault points of a run, or as a base for builder methods).
        pub fn new() -> FaultPlan {
            FaultPlan::default()
        }

        /// Parses the textual grammar (see the module docs). Errors name the
        /// offending item.
        pub fn parse(text: &str) -> Result<FaultPlan, String> {
            let mut plan = FaultPlan::new();
            for item in text.split(';') {
                let item = item.trim();
                if item.is_empty() {
                    continue;
                }
                if item == "trace" {
                    plan.trace = true;
                    continue;
                }
                if let Some(bytes) = item.strip_prefix("budget:") {
                    plan.write_budget = Some(
                        bytes
                            .parse()
                            .map_err(|_| format!("bad budget in {item:?}"))?,
                    );
                    continue;
                }
                let (head, effect) = item
                    .split_once('=')
                    .ok_or_else(|| format!("missing '=' in {item:?}"))?;
                let effect = match effect {
                    "eio" => FaultEffect::Eio,
                    "enospc" => FaultEffect::Enospc,
                    other => match other.strip_prefix("short:") {
                        Some(keep) => FaultEffect::Short(
                            keep.parse()
                                .map_err(|_| format!("bad short length in {item:?}"))?,
                        ),
                        None => return Err(format!("unknown effect {other:?} in {item:?}")),
                    },
                };
                let (kind_part, range) = head
                    .split_once('@')
                    .ok_or_else(|| format!("missing '@' in {item:?}"))?;
                let (kind_text, filter) = match kind_part.split_once('%') {
                    Some((kind, filter)) => (kind, Some(filter.to_string())),
                    None => (kind_part, None),
                };
                let kind = OpKind::parse(kind_text)
                    .ok_or_else(|| format!("unknown op kind {kind_text:?} in {item:?}"))?;
                let parse_count = |text: &str| {
                    text.parse::<u64>()
                        .map_err(|_| format!("bad occurrence in {item:?}"))
                };
                let (from, to) = match range.split_once("..") {
                    None => {
                        let exact = parse_count(range)?;
                        (exact, Some(exact + 1))
                    }
                    Some((from, "")) => (parse_count(from)?, None),
                    Some((from, to)) => (parse_count(from)?, Some(parse_count(to)?)),
                };
                if from == 0 {
                    return Err(format!("occurrences are 1-based in {item:?}"));
                }
                plan.specs.push(FaultSpec {
                    kind,
                    filter,
                    from,
                    to,
                    effect,
                });
            }
            Ok(plan)
        }

        /// Restricts the plan to operations under `prefix`.
        #[must_use]
        pub fn scoped(mut self, prefix: impl Into<PathBuf>) -> FaultPlan {
            self.scope = Some(prefix.into());
            self
        }

        /// Turns on decision tracing.
        #[must_use]
        pub fn traced(mut self) -> FaultPlan {
            self.trace = true;
            self
        }

        /// Sets the cumulative write budget.
        #[must_use]
        pub fn with_write_budget(mut self, bytes: u64) -> FaultPlan {
            self.write_budget = Some(bytes);
            self
        }

        /// Activates the plan until the returned guard drops.
        pub fn install(self) -> FaultGuard {
            let mut registry = lock_registry();
            let id = registry.next_id;
            registry.next_id += 1;
            let spec_counts = vec![0; self.specs.len()];
            registry.plans.push(ActivePlan {
                id,
                plan: self,
                kind_counts: [0; OP_KINDS.len()],
                spec_counts,
                written: 0,
            });
            FaultGuard { id }
        }
    }

    impl fmt::Display for FaultPlan {
        fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
            let mut first = true;
            let mut separator = |formatter: &mut fmt::Formatter<'_>| {
                if first {
                    first = false;
                    Ok(())
                } else {
                    formatter.write_str(";")
                }
            };
            for spec in &self.specs {
                separator(formatter)?;
                write!(formatter, "{spec}")?;
            }
            if let Some(budget) = self.write_budget {
                separator(formatter)?;
                write!(formatter, "budget:{budget}")?;
            }
            if self.trace {
                separator(formatter)?;
                formatter.write_str("trace")?;
            }
            Ok(())
        }
    }

    /// Keeps its plan active; dropping it deactivates the plan. Also exposes the
    /// plan's deterministic operation counters, which tests use to enumerate the
    /// fault points of a scripted run.
    pub struct FaultGuard {
        id: u64,
    }

    impl FaultGuard {
        /// How many operations of `kind` this plan has seen (in scope).
        pub fn op_count(&self, kind: OpKind) -> u64 {
            lock_registry()
                .plans
                .iter()
                .find(|plan| plan.id == self.id)
                .map_or(0, |plan| plan.kind_counts[kind.index()])
        }

        /// Every kind's count, in [`OP_KINDS`] order.
        pub fn op_counts(&self) -> [(OpKind, u64); OP_KINDS.len()] {
            let mut counts = [(OpKind::Open, 0); OP_KINDS.len()];
            for (slot, kind) in counts.iter_mut().zip(OP_KINDS) {
                *slot = (kind, self.op_count(kind));
            }
            counts
        }

        /// Cumulative bytes accepted against the write budget.
        pub fn written(&self) -> u64 {
            lock_registry()
                .plans
                .iter()
                .find(|plan| plan.id == self.id)
                .map_or(0, |plan| plan.written)
        }
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            lock_registry().plans.retain(|plan| plan.id != self.id);
        }
    }

    struct ActivePlan {
        id: u64,
        plan: FaultPlan,
        kind_counts: [u64; OP_KINDS.len()],
        spec_counts: Vec<u64>,
        written: u64,
    }

    struct Registry {
        plans: Vec<ActivePlan>,
        next_id: u64,
    }

    fn lock_registry() -> kpg_sync::MutexGuard<'static, Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY
            .get_or_init(|| {
                let mut plans = Vec::new();
                if let Some(mut plan) = plan_from_env() {
                    if let Ok(scope) = std::env::var("KPG_FAULT_SCOPE") {
                        if !scope.is_empty() {
                            plan.scope = Some(PathBuf::from(scope));
                        }
                    }
                    plans.push(ActivePlan {
                        id: 0,
                        kind_counts: [0; OP_KINDS.len()],
                        spec_counts: vec![0; plan.specs.len()],
                        written: 0,
                        plan,
                    });
                }
                Mutex::new(Registry { plans, next_id: 1 })
            })
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn plan_from_env() -> Option<FaultPlan> {
        let text = std::env::var("KPG_FAULT_PLAN").unwrap_or_default();
        let trace = std::env::var("KPG_FAULT_TRACE").is_ok_and(|value| value != "0");
        if text.trim().is_empty() {
            // Trace-only mode still installs a plan so every operation is logged.
            return trace.then(|| FaultPlan::new().traced());
        }
        match FaultPlan::parse(&text) {
            Ok(mut plan) => {
                plan.trace |= trace;
                Some(plan)
            }
            Err(message) => panic!("KPG_FAULT_PLAN: {message}"),
        }
    }

    /// The verdict for one write call.
    pub(crate) enum WriteVerdict {
        /// Let the write through whole.
        Full,
        /// Persist this many bytes, then fail.
        Short(u64),
        /// Fail outright with this error.
        Fail(io::Error),
    }

    pub(crate) fn injected_error(kind: OpKind, effect: &FaultEffect) -> io::Error {
        match effect {
            FaultEffect::Eio => io::Error::other(format!("kpg-fault: injected eio on {kind}")),
            FaultEffect::Enospc => io::Error::new(
                io::ErrorKind::StorageFull,
                format!("kpg-fault: injected enospc on {kind}"),
            ),
            FaultEffect::Short(keep) => io::Error::other(format!(
                "kpg-fault: injected short write ({keep} bytes kept) on {kind}"
            )),
        }
    }

    pub(crate) fn check(kind: OpKind, path: &Path) -> io::Result<()> {
        match decide(kind, path, 0) {
            None => Ok(()),
            Some(effect) => Err(injected_error(kind, &effect)),
        }
    }

    pub(crate) fn check_write(path: &Path, len: u64) -> WriteVerdict {
        match decide(OpKind::Write, path, len) {
            None => WriteVerdict::Full,
            Some(FaultEffect::Short(keep)) => WriteVerdict::Short(keep),
            Some(effect) => WriteVerdict::Fail(injected_error(OpKind::Write, &effect)),
        }
    }

    /// Counts the operation against every in-scope plan and returns the first
    /// plan's first matching effect, if any.
    fn decide(kind: OpKind, path: &Path, write_len: u64) -> Option<FaultEffect> {
        let mut registry = lock_registry();
        let mut verdict = None;
        for active in &mut registry.plans {
            if let Some(scope) = &active.plan.scope {
                if !path.starts_with(scope) {
                    continue;
                }
            }
            active.kind_counts[kind.index()] += 1;
            let occurrence = active.kind_counts[kind.index()];
            let mut hit = None;
            if kind == OpKind::Write {
                if let Some(budget) = active.plan.write_budget {
                    if active.written.saturating_add(write_len) > budget {
                        hit = Some(FaultEffect::Enospc);
                    } else {
                        active.written += write_len;
                    }
                }
            }
            if hit.is_none() {
                for (index, spec) in active.plan.specs.iter().enumerate() {
                    if spec.kind != kind {
                        continue;
                    }
                    let count = match &spec.filter {
                        Some(filter) => {
                            if !path.to_string_lossy().contains(filter.as_str()) {
                                continue;
                            }
                            active.spec_counts[index] += 1;
                            active.spec_counts[index]
                        }
                        None => occurrence,
                    };
                    if count >= spec.from && spec.to.is_none_or(|to| count < to) {
                        hit = Some(spec.effect.clone());
                        break;
                    }
                }
            }
            if active.plan.trace {
                match &hit {
                    None => eprintln!("[kpg-fault] {kind}#{occurrence} {} -> ok", path.display()),
                    Some(effect) => eprintln!(
                        "[kpg-fault] {kind}#{occurrence} {} -> {effect}",
                        path.display()
                    ),
                }
            }
            if verdict.is_none() {
                verdict = hit;
            }
        }
        verdict
    }
}
