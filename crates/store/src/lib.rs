//! Durable storage primitives for the query server and the trace spine.
//!
//! The paper's interactive service keeps every arrangement in memory and forgets
//! everything on exit. This crate supplies the three on-disk building blocks that fix
//! that, in the memtable/SSTable/WAL discipline of classic LSM designs (the spine is
//! already an in-memory LSM):
//!
//! * [`wal`] — a segmented **write-ahead log** of opaque records framed with a length
//!   prefix and a CRC32, appended via a `SchemaBatch`-style last-writes [`WalBatch`]
//!   and recovered with a *torn-tail-tolerant* total decoder that truncates at the
//!   first corrupt record. The server appends its wire-encoded command log here.
//! * [`run`] — immutable **sorted-run files**: CRC-framed blocks of sorted entries
//!   whose boundaries align with key boundaries, plus a sparse first-entry index, so
//!   a reader can binary-search to a block and stream from there. Checkpoints and
//!   spilled spine layers share this format.
//! * [`manifest`] — the **checkpoint manifest**, committed by temp-file + rename so
//!   the rename is the commit point: recovery that finds a manifest trusts it and
//!   replays only the WAL records past its watermark; a crash between manifest write
//!   and WAL pruning recovers identically from either state.
//!
//! The crate is dependency-free and byte-oriented: callers bring their own encodings
//! (the server uses the wire codec, the trace uses `StoreData`), this crate owns
//! framing, checksums, segmentation, and atomic commit.
//!
//! Two cross-cutting modules harden all three against a disk that fails rather than
//! merely crashes: every file operation routes through the [`io`] seam (a zero-cost
//! passthrough normally; a deterministic, plan-driven fault injector under
//! `--features faults`), and failures are classified and retried through
//! [`error`]'s [`FaultClass`]/[`RetryPolicy`] vocabulary instead of panicking.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bytes;
pub mod crc;
pub mod error;
pub mod io;
pub mod manifest;
pub mod run;
pub mod wal;

pub use crc::crc32;
pub use error::{classify, FaultClass, RetryPolicy, StoreError};
pub use io::OpKind;
pub use manifest::{Manifest, MANIFEST_NAME};
pub use run::{RunMeta, RunReader, RunWriter};
pub use wal::{Wal, WalBatch};
