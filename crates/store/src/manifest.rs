//! The checkpoint manifest: the atomic commit point of a checkpoint.
//!
//! A manifest names everything a recovery needs: the checkpointed epoch, the WAL
//! watermark (the highest WAL sequence the checkpoint reflects — recovery replays
//! only records past it), and a list of tagged, opaque records the caller uses to
//! describe its checkpoint files (the server stores input definitions, installed
//! plans, and run-file names).
//!
//! Commit is temp-file + rename: the manifest is fully written and fsynced as
//! `MANIFEST.tmp`, then renamed over `MANIFEST`, then the directory is fsynced. The
//! rename *is* the checkpoint — a crash before it leaves the previous manifest (or
//! none) in force and the new run files as ignorable garbage; a crash after it but
//! before old WAL segments are pruned merely leaves extra WAL prefix that recovery
//! skips via the watermark. Either side of the race recovers to the same state,
//! which is exactly the property the checkpoint/truncation race test pins.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use crate::bytes::{get_bytes, get_u32, get_u64, put_bytes, put_u32, put_u64};
use crate::crc::crc32;

const MAGIC: &[u8; 8] = b"KPGMAN01";

/// The manifest file name within a durable directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";

/// A committed (or in-construction) checkpoint description.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// The epoch the checkpoint seals: recovered state answers queries as of this
    /// epoch before the WAL tail is replayed.
    pub epoch: u64,
    /// The highest WAL sequence number reflected in the checkpoint. Recovery replays
    /// only WAL records with sequence numbers strictly above this.
    pub wal_watermark: u64,
    /// Caller-defined records: a short ASCII tag and an opaque payload each.
    pub records: Vec<(String, Vec<u8>)>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(MAGIC);
        put_u64(&mut body, self.epoch);
        put_u64(&mut body, self.wal_watermark);
        put_u32(&mut body, self.records.len() as u32);
        for (tag, payload) in &self.records {
            put_bytes(&mut body, tag.as_bytes());
            put_bytes(&mut body, payload);
        }
        let crc = crc32(&body);
        put_u32(&mut body, crc);
        body
    }

    fn decode(bytes: &[u8]) -> Option<Manifest> {
        if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
            return None;
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let expected = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte crc"));
        if crc32(body) != expected {
            return None;
        }
        let mut pos = MAGIC.len();
        let epoch = get_u64(body, &mut pos)?;
        let wal_watermark = get_u64(body, &mut pos)?;
        let count = get_u32(body, &mut pos)?;
        let mut records = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let tag = String::from_utf8(get_bytes(body, &mut pos)?).ok()?;
            let payload = get_bytes(body, &mut pos)?;
            records.push((tag, payload));
        }
        Some(Manifest {
            epoch,
            wal_watermark,
            records,
        })
    }

    /// Atomically installs this manifest as `dir`'s current one: write + fsync the
    /// temp file, rename over [`MANIFEST_NAME`], fsync the directory.
    pub fn commit(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let tmp = dir.join(MANIFEST_TMP);
        let mut file = crate::io::create(&tmp)?;
        file.write_all(&self.encode())?;
        file.sync_all()?;
        drop(file);
        crate::io::rename(&tmp, dir.join(MANIFEST_NAME))?;
        crate::io::sync_dir(dir)
    }

    /// Loads `dir`'s committed manifest. `Ok(None)` if none was ever committed; an
    /// error if one exists but is unreadable (a committed manifest is written
    /// atomically, so damage here is disk corruption, not a torn write). A leftover
    /// `MANIFEST.tmp` from a crashed commit is ignored and removed.
    pub fn load(dir: impl AsRef<Path>) -> io::Result<Option<Manifest>> {
        let dir = dir.as_ref();
        let _ = fs::remove_file(dir.join(MANIFEST_TMP));
        let path = dir.join(MANIFEST_NAME);
        let bytes = match crate::io::read(&path) {
            Ok(bytes) => bytes,
            Err(error) if error.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(error) => return Err(error),
        };
        Manifest::decode(&bytes)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: manifest corrupt", path.display()),
                )
            })
            .map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        use kpg_sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "kpg-manifest-{tag}-{}-{unique}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Manifest {
        Manifest {
            epoch: 42,
            wal_watermark: 1234,
            records: vec![
                ("input".to_string(), b"edges".to_vec()),
                ("install".to_string(), vec![1, 2, 3, 255]),
            ],
        }
    }

    #[test]
    fn commit_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        assert_eq!(Manifest::load(&dir).unwrap(), None);
        sample().commit(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(sample()));
        // Re-commit replaces atomically.
        let mut second = sample();
        second.epoch = 43;
        second.commit(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap().unwrap().epoch, 43);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The rename is the commit point: a crash that left only a (possibly torn)
    /// temp file recovers as "no checkpoint"; a crash after the rename recovers the
    /// new checkpoint even with the temp file still present.
    #[test]
    fn temp_file_is_not_a_commit() {
        let dir = temp_dir("tmp");
        // Torn temp file only: not a checkpoint.
        fs::write(dir.join(MANIFEST_TMP), b"KPGMAN01 torn gar").unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), None);
        assert!(!dir.join(MANIFEST_TMP).exists(), "stale temp not cleaned");
        // Committed manifest + stale temp: the committed one wins.
        sample().commit(&dir).unwrap();
        fs::write(dir.join(MANIFEST_TMP), b"half-written next checkpoint").unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(sample()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damage_to_a_committed_manifest_is_an_error() {
        let dir = temp_dir("damage");
        sample().commit(&dir).unwrap();
        let path = dir.join(MANIFEST_NAME);
        let mut bytes = fs::read(&path).unwrap();
        let middle = bytes.len() / 2;
        bytes[middle] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        assert!(Manifest::load(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
